"""Shared machinery for the per-figure/table benchmarks."""

from __future__ import annotations

import os
import time
from typing import Callable, List, Sequence, Tuple

from repro.baselines import PlainSWScan, QGramIndex, dison_engine, torch_engine
from repro.bench.datasets import build_dataset
from repro.bench.workloads import sample_queries
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import (
    CostModel,
    EDRCost,
    ERPCost,
    LevenshteinCost,
    NetEDRCost,
    NetERPCost,
    SURSCost,
)
from repro.network.graph import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: datasets per run mode (the paper uses all four everywhere)
DATASETS_QUICK = ["beijing"]
DATASETS_FULL = ["beijing", "porto", "singapore", "sanfran"]
#: similarity functions per run mode (paper: all six)
FUNCTIONS_QUICK = ["EDR", "SURS", "Lev"]
FUNCTIONS_FULL = ["EDR", "ERP", "SURS", "Lev", "NetEDR", "NetERP"]

#: default query length — the paper uses 60 on trajectories averaging ~100;
#: our scaled trips average ~40, so 15 keeps the same ratio.
DEFAULT_QUERY_LENGTH = 15
DEFAULT_NUM_QUERIES = 4 if not FULL else 10


def dataset_names() -> List[str]:
    return DATASETS_FULL if FULL else DATASETS_QUICK


def function_names() -> List[str]:
    return FUNCTIONS_FULL if FULL else FUNCTIONS_QUICK


def make_cost_model(name: str, graph: RoadNetwork) -> CostModel:
    """The §6.1 cost-model settings, scaled to the synthetic networks."""
    if name == "Lev":
        return LevenshteinCost()
    if name == "EDR":
        # Paper: eps = 0.001 (degrees) on city-scale coordinates — roughly a
        # city block; our grids use ~100 m blocks.
        return EDRCost(graph, epsilon=80.0)
    if name == "ERP":
        # Paper: eta = 1e-4 * median nearest-neighbor distance.
        return ERPCost(graph, eta=1e-4 * graph.median_edge_weight())
    if name == "NetEDR":
        return NetEDRCost(graph)  # eps = median edge weight (paper default)
    if name == "NetERP":
        # Paper: G_del = 2M (meters-scale datasets); ours are ~100x smaller.
        return NetERPCost(graph, g_del=2_000.0)  # eta = median edge weight
    if name == "SURS":
        return SURSCost(graph)
    raise KeyError(f"unknown similarity function {name!r}")


def load_workload(
    profile: str,
    function: str,
    *,
    scale: float,
    query_length: int = DEFAULT_QUERY_LENGTH,
    num_queries: int = DEFAULT_NUM_QUERIES,
) -> Tuple[RoadNetwork, TrajectoryDataset, CostModel, List[List[int]]]:
    """Dataset + cost model + query workload for one experiment cell."""
    costs_probe = make_cost_model(function, build_dataset(profile, scale=scale)[0])
    representation = costs_probe.representation
    graph, dataset = build_dataset(profile, scale=scale, representation=representation)
    costs = make_cost_model(function, graph)
    queries = sample_queries(dataset, num_queries, query_length, seed=777)
    return graph, dataset, costs, queries


# ---------------------------------------------------------------------------
# Method registry (the Fig. 6 legend)
# ---------------------------------------------------------------------------


class Method:
    """A competitor: builds once, answers `query(q, tau)` repeatedly."""

    def __init__(self, name: str, build: Callable, query: Callable) -> None:
        self.name = name
        self._build = build
        self._query = query
        self._state = None

    def build(self, dataset: TrajectoryDataset, costs: CostModel) -> float:
        t0 = time.perf_counter()
        self._state = self._build(dataset, costs)
        return time.perf_counter() - t0

    def query(self, query: Sequence[int], tau: float):
        return self._query(self._state, query, tau)


def method_registry(*, include_plain_sw: bool = True, include_qgram: bool = True) -> List[Method]:
    """OSF-BT / OSF-SW / DISON-BT / DISON-SW / Torch-BT / Torch-SW /
    Plain-SW / q-gram, matching the Fig. 6 legend."""
    methods = [
        Method(
            "OSF-BT",
            lambda ds, c: SubtrajectorySearch(ds, c, verification="trie"),
            lambda e, q, tau: e.query(q, tau=tau).matches,
        ),
        Method(
            "OSF-SW",
            lambda ds, c: SubtrajectorySearch(ds, c, verification="sw"),
            lambda e, q, tau: e.query(q, tau=tau).matches,
        ),
        Method(
            "DISON-BT",
            lambda ds, c: dison_engine(ds, c, verification="trie"),
            lambda e, q, tau: e.query(q, tau=tau).matches,
        ),
        Method(
            "DISON-SW",
            lambda ds, c: dison_engine(ds, c, verification="sw"),
            lambda e, q, tau: e.query(q, tau=tau).matches,
        ),
        Method(
            "Torch-BT",
            lambda ds, c: torch_engine(ds, c, verification="trie"),
            lambda e, q, tau: e.query(q, tau=tau).matches,
        ),
        Method(
            "Torch-SW",
            lambda ds, c: torch_engine(ds, c, verification="sw"),
            lambda e, q, tau: e.query(q, tau=tau).matches,
        ),
    ]
    if include_plain_sw:
        # Paper semantics (App. A): best match per trajectory.
        methods.append(
            Method(
                "Plain-SW",
                lambda ds, c: PlainSWScan(ds, c, semantics="best"),
                lambda s, q, tau: s.query(q, tau),
            )
        )
    if include_qgram:
        methods.append(
            Method(
                "q-gram",
                lambda ds, c: QGramIndex(ds, c, q=3),
                lambda s, q, tau: s.query(q, tau),
            )
        )
    return methods


def supports(method: Method, costs: CostModel) -> bool:
    """q-gram only applies to unit-cost models (§6.1)."""
    if method.name == "q-gram":
        return isinstance(costs, (LevenshteinCost, EDRCost, NetEDRCost))
    return True


def avg_query_seconds(
    method: Method, queries: Sequence[Sequence[int]], taus: Sequence[float]
) -> float:
    t0 = time.perf_counter()
    for q, tau in zip(queries, taus):
        method.query(q, tau)
    return (time.perf_counter() - t0) / len(queries)


def taus_for(
    costs: CostModel, queries: Sequence[Sequence[int]], tau_ratio: float
) -> List[float]:
    from repro.core.filtering import tau_from_ratio

    return [tau_from_ratio(q, costs, tau_ratio) for q in queries]
