"""Ablation — tau-subsequence selector (§3.2, Propositions 3-4).

Compares the greedy 2-approximation against the exact optimum and the
baseline selectors on candidate counts:

- on unit-cost models (EDR) greedy must EQUAL exact (Proposition 4);
- greedy is always within 2x of exact (Proposition 3);
- prefix (DISON) and all (Torch) generate progressively more candidates.
"""

from _helpers import load_workload, taus_for

from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch

SELECTORS = ["greedy", "exact", "prefix", "all"]
TAU_RATIOS = [0.1, 0.2, 0.3]


def test_ablation_selector_candidates(benchmark, recorder, bench_scale):
    _, dataset, costs, queries = load_workload(
        "beijing", "EDR", scale=bench_scale, query_length=10
    )
    engines = {
        s: SubtrajectorySearch(dataset, costs, selector=s) for s in SELECTORS
    }
    measured = {s: [] for s in SELECTORS}
    for ratio in TAU_RATIOS:
        taus = taus_for(costs, queries, ratio)
        for s in SELECTORS:
            measured[s].append(
                sum(
                    len(engines[s].candidates(q, tau=t))
                    for q, t in zip(queries, taus)
                )
            )
    table = SeriesTable(
        "selector",
        [f"tau={r}" for r in TAU_RATIOS],
        title="Ablation: candidate count per tau-subsequence selector",
    )
    for s in SELECTORS:
        table.add_row(s, measured[s])
    table.print()

    for i in range(len(TAU_RATIOS)):
        # Proposition 4: unit-cost -> greedy is exactly optimal.
        assert measured["greedy"][i] == measured["exact"][i]
        # Proposition 3 holds a fortiori.
        assert measured["greedy"][i] <= 2 * measured["exact"][i]
        # The baseline selectors are no better than greedy.
        assert measured["greedy"][i] <= measured["prefix"][i]
        assert measured["greedy"][i] <= measured["all"][i]

    # On a continuous-cost model greedy may lose to exact, but by < 2x.
    _, erp_ds, erp_costs, erp_queries = load_workload(
        "beijing", "ERP", scale=bench_scale, query_length=10
    )
    g = SubtrajectorySearch(erp_ds, erp_costs, selector="greedy")
    e = SubtrajectorySearch(erp_ds, erp_costs, selector="exact")
    taus = taus_for(erp_costs, erp_queries, 0.2)
    for q, t in zip(erp_queries, taus):
        n_g = len(g.candidates(q, tau=t))
        n_e = len(e.candidates(q, tau=t))
        assert n_g <= 2 * n_e

    recorder.record(
        "ablation_selector",
        {"tau_ratios": TAU_RATIOS, "candidates": measured, "scale": bench_scale},
        expectation="greedy == exact on unit costs (Prop. 4); "
        "greedy <= prefix <= all",
    )

    taus = taus_for(costs, queries, 0.2)
    benchmark(lambda: engines["greedy"].candidates(queries[0], tau=taus[0]))
