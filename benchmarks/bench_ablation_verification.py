"""Ablation — verification design choices (§5, Table 5 rationale).

Dissects OSF-BT into its ingredients: trie caching, early termination, and
the DP backend.  All variants must return identical results; the timings
quantify each ingredient's contribution (the paper justifies BT and early
termination via the UPR/CMR counters; this bench shows the wall-clock
effect directly).
"""

import time

from _helpers import load_workload, taus_for

from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import SubtrajectorySearch

VARIANTS = [
    ("BT (trie+ET)", dict(verification="trie", early_termination=True)),
    ("local+ET (no trie)", dict(verification="local", early_termination=True)),
    ("trie, no ET", dict(verification="trie", early_termination=False)),
    ("local, no ET", dict(verification="local", early_termination=False)),
    ("SW oracle", dict(verification="sw")),
    # The unlabeled variants above run the array-native default
    # (dp_backend="numpy"); this row isolates the DP-backend ingredient
    # (see bench_verification_hotpath.py for the dedicated comparison).
    ("BT python DP", dict(verification="trie", dp_backend="python")),
]
TAU_RATIOS = [0.1, 0.2, 0.3]


def test_ablation_verification_variants(benchmark, recorder, bench_scale):
    _, dataset, costs, queries = load_workload("beijing", "EDR", scale=bench_scale)
    table = SeriesTable(
        "variant",
        [f"tau={r}" for r in TAU_RATIOS],
        title="Ablation: verification variants (beijing / EDR)",
    )
    measured = {}
    reference_keys = None
    for name, kwargs in VARIANTS:
        engine = SubtrajectorySearch(dataset, costs, **kwargs)
        series = []
        all_keys = []
        for ratio in TAU_RATIOS:
            taus = taus_for(costs, queries, ratio)
            t0 = time.perf_counter()
            keys = [
                tuple((m.trajectory_id, m.start, m.end) for m in engine.query(q, tau=t).matches)
                for q, t in zip(queries, taus)
            ]
            series.append((time.perf_counter() - t0) / len(queries))
            all_keys.append(keys)
        if reference_keys is None:
            reference_keys = all_keys
        else:
            assert all_keys == reference_keys, f"{name} changed the results"
        table.add_row(name, series, formatter=format_seconds)
        measured[name] = series
    table.print()

    # The full BT stack beats the SW oracle and the no-ET variants.
    assert measured["BT (trie+ET)"][-1] < measured["SW oracle"][-1]
    assert measured["BT (trie+ET)"][-1] < measured["local, no ET"][-1]

    recorder.record(
        "ablation_verification",
        {"tau_ratios": TAU_RATIOS, "seconds": measured, "scale": bench_scale},
        expectation="each ingredient (locality, ET, trie) contributes; "
        "results identical across variants",
    )

    engine = SubtrajectorySearch(dataset, costs)
    taus = taus_for(costs, queries, 0.2)
    benchmark(lambda: engine.query(queries[0], tau=taus[0]))
