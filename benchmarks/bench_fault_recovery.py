"""Fault recovery — availability and latency under a seeded kill-loop.

Not a paper figure: the paper assumes a healthy single process; this
benchmark measures the fault-tolerance layer built around the processes
backend (ISSUE 8).  A deterministic :class:`~repro.faultinject.FaultPlan`
kill-loop murders shard workers at seeded query ordinals while a serial
client replays a fixed workload, and we account for every request:

- *queries lost*: strict-mode queries that raised.  Respawn-and-retry
  happens inside the query path, so the expectation is **zero** — every
  kill is absorbed by the same request that trips over it.
- *recovery latency*: the extra wall-clock paid by exactly the queries
  that absorbed a kill (respawn + engine rebuild + journal replay +
  retry), vs the undisturbed median.
- *p99 under chaos*: the overall latency distribution shifts only in the
  tail — the non-victim queries must stay near the undisturbed baseline.

Answers stay element-for-element identical to an undisturbed engine, kills
included.
"""

import time

from _helpers import load_workload

from repro.bench.harness import SeriesTable
from repro.bench.workloads import sample_queries
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.faultinject import FaultPlan

TAU_RATIO = 0.3
QUERY_LENGTH = 12
NUM_QUERIES = 40
NUM_SHARDS = 4
KILLS = 6
KILL_EVERY = 4
SEED = 1234


def _match_keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def _replay(engine, requests):
    """Serial replay; per-query seconds, answers, and strict failures."""
    latencies, answers, lost = [], [], 0
    for q in requests:
        t0 = time.perf_counter()
        try:
            answers.append(_match_keys(engine.query(q, tau_ratio=TAU_RATIO)))
        except Exception:
            answers.append(None)
            lost += 1
        latencies.append(time.perf_counter() - t0)
    return latencies, answers, lost


def test_fault_recovery(benchmark, recorder, bench_scale):
    graph, dataset, costs, _ = load_workload("small", "EDR", scale=bench_scale)
    requests = sample_queries(dataset, NUM_QUERIES, QUERY_LENGTH, seed=SEED)
    plan = FaultPlan.kill_loop(
        seed=SEED, num_shards=NUM_SHARDS, kills=KILLS, every=KILL_EVERY
    )
    # Kill ordinals count a shard's *requests*, and each absorbed kill's
    # retry consumes one extra ordinal — so the i-th kill on a shard
    # (ordinal o, zero-based i) fires at global query index o - i.  The
    # victim request indices are therefore known up front.
    kill_queries = sorted(
        {
            o - i
            for s in range(NUM_SHARDS)
            for i, o in enumerate(sorted(plan.kill_ordinals(s)))
        }
    )
    assert len(plan.rules) == KILLS
    assert max(kill_queries) <= NUM_QUERIES, "workload shorter than the plan"

    with PartitionedSubtrajectorySearch(
        dataset, costs, num_shards=NUM_SHARDS, backend="processes"
    ) as undisturbed:
        base_lat, base_answers, base_lost = _replay(undisturbed, requests)
    assert base_lost == 0

    with PartitionedSubtrajectorySearch(
        dataset,
        costs,
        num_shards=NUM_SHARDS,
        backend="processes",
        fault_plan=plan,
        respawn_backoff=0.01,
        respawn_backoff_cap=0.1,
    ) as engine:
        chaos_lat, chaos_answers, chaos_lost = _replay(engine, requests)
        restarts = engine.restarts_total()

    victim_lat = [chaos_lat[k - 1] for k in kill_queries]
    calm_lat = [
        s for i, s in enumerate(chaos_lat, start=1) if i not in kill_queries
    ]
    base_sorted = sorted(base_lat)
    chaos_sorted = sorted(chaos_lat)
    base_p50 = _quantile(base_sorted, 0.50)
    stats = {
        "base_p50_ms": 1e3 * base_p50,
        "base_p99_ms": 1e3 * _quantile(base_sorted, 0.99),
        "chaos_p50_ms": 1e3 * _quantile(chaos_sorted, 0.50),
        "chaos_p99_ms": 1e3 * _quantile(chaos_sorted, 0.99),
        "recovery_ms": [1e3 * s for s in victim_lat],
        "mean_recovery_ms": 1e3 * sum(victim_lat) / len(victim_lat),
    }

    table = SeriesTable(
        "series",
        ["p50", "p99"],
        title=(
            f"Fault recovery (small / EDR, {NUM_SHARDS} shards): latency "
            f"under a seeded {KILLS}-kill loop "
            f"(mean recovery {stats['mean_recovery_ms']:.1f} ms, "
            f"{chaos_lost} queries lost)"
        ),
    )
    table.add_row(
        "undisturbed ms",
        [stats["base_p50_ms"], stats["base_p99_ms"]],
        formatter=lambda v: f"{v:.2f}",
    )
    table.add_row(
        "kill-loop ms",
        [stats["chaos_p50_ms"], stats["chaos_p99_ms"]],
        formatter=lambda v: f"{v:.2f}",
    )
    table.print()

    # Availability: no request is ever lost — each kill is absorbed by
    # respawn-and-retry inside the request that hits it — and every
    # answer (victims included) is bit-identical to the undisturbed run.
    assert chaos_lost == 0
    assert chaos_answers == base_answers
    assert restarts == KILLS
    # Non-victim queries pay no chaos tax beyond jitter: their median
    # stays within 5x of the undisturbed median (generous — CI boxes are
    # noisy; the real signal is the victim/calm separation recorded).
    calm_p50 = _quantile(sorted(calm_lat), 0.50)
    assert calm_p50 <= 5.0 * base_p50 + 0.005

    recorder.record(
        "fault_recovery",
        {
            **stats,
            "queries": NUM_QUERIES,
            "kills": KILLS,
            "queries_lost": chaos_lost,
            "restarts": restarts,
            "shards": NUM_SHARDS,
            "seed": SEED,
            "scale": bench_scale,
        },
        expectation=(
            "0 queries lost under the kill-loop; answers bit-identical to "
            "the undisturbed run; one restart per scheduled kill"
        ),
    )
