"""Figure 4 — travel-time estimation accuracy (relative MSE vs tau_ratio)
across similarity functions, on sparse corridor queries.

Paper shape: curves start at 100% (tau -> 0 degenerates to exact match),
dip below 100% in a mid band — similarity search pools more samples when
exact matches are sparse — and rise again once dissimilar subtrajectories
pollute the estimate.  SURS is among the best performers.

The corridor workload (repro.bench.corridors) reconstructs the real-data
property this depends on: few exact travelers per query path, many
slightly-detoured ones with shared travel-time context.
"""

import math

from repro.apps.travel_time import TravelTimeEstimator, relative_mse
from repro.bench.corridors import build_corridor_workload
from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import EDRCost, LevenshteinCost, SURSCost

TAU_RATIOS = [0.02, 0.05, 0.1, 0.15, 0.2]
NONWED_FUNCTIONS = ["dtw", "lcss", "lors", "lcrs"]
CORRIDOR_LENGTH = (20, 28)
SEED = 3


def test_fig04_travel_time_rmse(benchmark, recorder):
    vertex_w = build_corridor_workload(seed=SEED, corridor_length=CORRIDOR_LENGTH)
    edge_w = build_corridor_workload(
        seed=SEED, corridor_length=CORRIDOR_LENGTH, representation="edge"
    )
    graph = vertex_w.graph
    vqueries = vertex_w.corridors
    equeries = [edge_w.graph.path_to_edges(c) for c in edge_w.corridors]

    measured = {}
    wed_models = [
        ("Lev", LevenshteinCost(), vertex_w.dataset, vqueries),
        ("EDR", EDRCost(graph, epsilon=80.0), vertex_w.dataset, vqueries),
        ("SURS", SURSCost(edge_w.graph), edge_w.dataset, equeries),
    ]
    for name, costs, ds, queries in wed_models:
        estimator = TravelTimeEstimator(ds, engine=SubtrajectorySearch(ds, costs))
        measured[name] = [
            relative_mse(estimator, queries, tau_ratio=r) for r in TAU_RATIOS
        ]
    for function in NONWED_FUNCTIONS:
        edge_based = function in ("lcss", "lors", "lcrs")
        ds = edge_w.dataset if edge_based else vertex_w.dataset
        queries = equeries if edge_based else vqueries
        estimator = TravelTimeEstimator(ds, function=function)
        measured[function.upper()] = [
            relative_mse(estimator, queries, tau_ratio=r) for r in TAU_RATIOS
        ]

    table = SeriesTable(
        "function",
        [f"tau={r}" for r in TAU_RATIOS],
        title="Fig. 4: relative MSE (%) of travel-time estimation vs tau_ratio",
    )
    for name, series in measured.items():
        table.add_row(
            name, series, formatter=lambda v: "nan" if math.isnan(v) else f"{v:.1f}"
        )
    table.print()

    # Shape assertions.
    for name, series in measured.items():
        assert not math.isnan(series[0])
        assert series[0] == pytest_approx_100(series[0])
    # SURS (the paper's best) must beat exact matching somewhere in the band.
    assert min(measured["SURS"]) < 100.0

    best = {
        name: min((v for v in series if not math.isnan(v)), default=math.nan)
        for name, series in measured.items()
    }
    recorder.record(
        "fig04_travel_time",
        {"tau_ratios": TAU_RATIOS, "relative_mse": measured, "best": best},
        expectation="curves start at 100%, SURS dips below 100% in a mid "
        "band (paper best: SURS 89%)",
    )

    costs = SURSCost(edge_w.graph)
    estimator = TravelTimeEstimator(
        edge_w.dataset, engine=SubtrajectorySearch(edge_w.dataset, costs)
    )
    benchmark(lambda: estimator.estimate(equeries[0], tau_ratio=0.1))


def pytest_approx_100(value: float) -> float:
    """Series must start at exactly 100% (tau too small for any non-exact
    match) — tolerate tiny float wiggle."""
    assert abs(value - 100.0) < 1e-6
    return value
