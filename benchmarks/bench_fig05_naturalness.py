"""Figure 5 — naturalness of alternative routes vs result cardinality.

Paper shape: cardinality grows with tau_ratio; WED instances with
non-spatial costs suggest routes with high naturalness; LORS (and LCSS)
score lower because they reward shared segments without penalizing
detours.

The corridor workload supplies genuine alternatives: every corridor has
many travelers on one-detour variants that share the corridor's origin and
destination.
"""

import math

from repro.apps.route_suggestion import (
    distances_to_target,
    route_naturalness,
    suggest_routes,
)
from repro.bench.corridors import build_corridor_workload
from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import EDRCost, LevenshteinCost, SURSCost
from repro.distance.nonwed import lors_best_match

TAU_RATIOS = [0.0, 0.1, 0.2, 0.3]
SEED = 7
CORRIDOR_LENGTH = (14, 20)


def _routes_from_matches(graph, dataset, query, matches, *, edge_rep):
    origin, destination = query[0], query[-1]
    routes = set()
    for m in matches:
        symbols = dataset.symbols(m.trajectory_id)[m.start : m.end + 1]
        vpath = (
            tuple(graph.edges_to_path(list(symbols)))
            if edge_rep
            else tuple(symbols)
        )
        if vpath[0] == origin and vpath[-1] == destination:
            routes.add(vpath)
    return routes


def _score(graph, queries, routes_per_query):
    counts, scores = [], []
    for query, routes in zip(queries, routes_per_query):
        counts.append(len(routes))
        if routes:
            dist = distances_to_target(graph, query[-1])
            scores.extend(
                route_naturalness(graph, r, dist_to_dest=dist) for r in routes
            )
    cardinality = sum(counts) / len(counts)
    naturalness = sum(scores) / len(scores) if scores else math.nan
    return cardinality, naturalness


def test_fig05_route_naturalness(benchmark, recorder):
    vertex_w = build_corridor_workload(
        seed=SEED, corridor_length=CORRIDOR_LENGTH
    )
    edge_w = build_corridor_workload(
        seed=SEED, corridor_length=CORRIDOR_LENGTH, representation="edge"
    )
    graph = vertex_w.graph
    vqueries = vertex_w.corridors
    equeries = [edge_w.graph.path_to_edges(c) for c in edge_w.corridors]

    measured = {}
    wed_setups = [
        ("Lev", LevenshteinCost(), vertex_w.dataset, vqueries, False),
        ("EDR", EDRCost(graph, epsilon=80.0), vertex_w.dataset, vqueries, False),
        ("SURS", SURSCost(edge_w.graph), edge_w.dataset, equeries, True),
    ]
    for name, costs, ds, queries, edge_rep in wed_setups:
        engine = SubtrajectorySearch(ds, costs)
        card_series, nat_series = [], []
        for ratio in TAU_RATIOS:
            routes_per_query = []
            for vq, q in zip(vqueries, queries):
                matches = engine.query(q, tau_ratio=ratio).matches
                routes_per_query.append(
                    _routes_from_matches(graph, ds, vq, matches, edge_rep=edge_rep)
                )
            card, nat = _score(graph, vqueries, routes_per_query)
            card_series.append(card)
            nat_series.append(nat)
        measured[name] = (card_series, nat_series)

    # LORS via brute-force scan (no efficient subtrajectory search, §6.2.1).
    weights = [e.weight for e in edge_w.graph.edges]
    card_series, nat_series = [], []
    for ratio in TAU_RATIOS:
        routes_per_query = []
        for vq, q in zip(vqueries, equeries):
            qweight = sum(weights[e] for e in q)
            routes = set()
            for tid in range(len(edge_w.dataset)):
                data = edge_w.dataset.symbols(tid)
                s, t, shared = lors_best_match(data, q, lambda e: weights[e])
                if t < s or shared < (1.0 - ratio) * qweight:
                    continue
                vpath = tuple(edge_w.graph.edges_to_path(list(data[s : t + 1])))
                if vpath[0] == vq[0] and vpath[-1] == vq[-1]:
                    routes.add(vpath)
            routes_per_query.append(routes)
        card, nat = _score(graph, vqueries, routes_per_query)
        card_series.append(card)
        nat_series.append(nat)
    measured["LORS"] = (card_series, nat_series)

    card_table = SeriesTable(
        "function",
        [f"tau={r}" for r in TAU_RATIOS],
        title="Fig. 5: avg cardinality of suggested routes",
    )
    nat_table = SeriesTable(
        "function",
        [f"tau={r}" for r in TAU_RATIOS],
        title="Fig. 5: avg naturalness of suggested routes",
    )
    for name, (card, nat) in measured.items():
        card_table.add_row(name, card, formatter=lambda v: f"{v:.2f}")
        nat_table.add_row(
            name, nat, formatter=lambda v: "nan" if math.isnan(v) else f"{v:.3f}"
        )
    card_table.print()
    nat_table.print()

    # Shape: cardinality grows with tau for WED instances and finds real
    # alternatives (> 1 route per query at the widest threshold).
    for name in ("Lev", "EDR", "SURS"):
        card, nat = measured[name]
        assert card[-1] >= card[0]
        assert card[-1] > 1.0
        # WED suggestions stay highly natural (paper: ~0.72-0.79 band on
        # Beijing; our grid shortest-path corridors score near 1).
        assert nat[-1] > 0.8

    recorder.record(
        "fig05_naturalness",
        {
            "tau_ratios": TAU_RATIOS,
            "cardinality": {k: v[0] for k, v in measured.items()},
            "naturalness": {k: v[1] for k, v in measured.items()},
        },
        expectation="cardinality grows with tau; WED instances keep high "
        "naturalness; LORS does not penalize detours",
    )

    engine = SubtrajectorySearch(vertex_w.dataset, LevenshteinCost())
    benchmark(
        lambda: suggest_routes(engine, vertex_w.dataset, vqueries[0], tau_ratio=0.2)
    )
