"""Figure 6 — query processing time vs tau_ratio, all methods.

Paper shape: OSF-BT is fastest everywhere; BT verification beats SW;
OSF < DISON < Torch in filter quality; Plain-SW is orders of magnitude
slower; gaps grow with tau_ratio.
"""

import pytest
from _helpers import (
    avg_query_seconds,
    dataset_names,
    function_names,
    load_workload,
    method_registry,
    supports,
    taus_for,
)

from repro.bench.harness import SeriesTable, format_seconds

TAU_RATIOS = [0.1, 0.2, 0.3]


@pytest.mark.parametrize("profile", dataset_names())
@pytest.mark.parametrize("function", function_names())
def test_fig06_vary_tau(profile, function, benchmark, recorder, bench_scale):
    graph, dataset, costs, queries = load_workload(
        profile, function, scale=bench_scale
    )
    methods = method_registry()
    table = SeriesTable(
        "method",
        [f"tau={r}" for r in TAU_RATIOS],
        title=f"Fig. 6 ({profile} / {function}): avg query time vs tau_ratio",
    )
    measured = {}
    for method in methods:
        if not supports(method, costs):
            continue
        method.build(dataset, costs)
        series = []
        for ratio in TAU_RATIOS:
            taus = taus_for(costs, queries, ratio)
            series.append(avg_query_seconds(method, queries, taus))
        table.add_row(method.name, series, formatter=format_seconds)
        measured[method.name] = series
    table.print()

    # Shape assertions (paper: OSF-BT wins; Torch generates the most
    # candidates so Torch-BT >= OSF-BT).
    for i, _ in enumerate(TAU_RATIOS):
        assert measured["OSF-BT"][i] <= measured["Torch-BT"][i] * 1.5
    if "Plain-SW" in measured:
        assert measured["Plain-SW"][-1] > measured["OSF-BT"][-1]

    recorder.record(
        f"fig06_{profile}_{function}",
        {"tau_ratios": TAU_RATIOS, "seconds": measured, "scale": bench_scale},
        expectation="OSF-BT fastest; *-BT <= *-SW; Plain-SW slowest; "
        "time grows with tau_ratio",
    )

    osf = [m for m in methods if m.name == "OSF-BT"][0]
    taus = taus_for(costs, queries, 0.1)
    benchmark(lambda: osf.query(queries[0], taus[0]))
