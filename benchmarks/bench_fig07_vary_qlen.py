"""Figure 7 — query processing time vs query length |Q|.

Paper shape: OSF-BT always fastest; every method's time grows with |Q|
(verification cost is proportional to |Q| and tau grows with |Q| under the
ratio parameterization).
"""

import pytest
from _helpers import (
    avg_query_seconds,
    dataset_names,
    function_names,
    load_workload,
    method_registry,
    supports,
    taus_for,
)

from repro.bench.harness import SeriesTable, format_seconds

# Paper sweeps |Q| in {20, 40, 60, 80} on avg-length-100 trajectories; our
# scaled trips average ~40, so sweep 1/4 of that grid.
QUERY_LENGTHS = [5, 10, 15, 20]
TAU_RATIO = 0.1


@pytest.mark.parametrize("profile", dataset_names())
@pytest.mark.parametrize("function", function_names())
def test_fig07_vary_query_length(profile, function, benchmark, recorder, bench_scale):
    measured = {}
    methods = method_registry()
    workloads = {}
    for length in QUERY_LENGTHS:
        workloads[length] = load_workload(
            profile, function, scale=bench_scale, query_length=length
        )
    table = SeriesTable(
        "method",
        [f"|Q|={n}" for n in QUERY_LENGTHS],
        title=f"Fig. 7 ({profile} / {function}): avg query time vs |Q|",
    )
    _, dataset, costs, _ = workloads[QUERY_LENGTHS[0]]
    for method in methods:
        if not supports(method, costs):
            continue
        method.build(dataset, costs)
        series = []
        for length in QUERY_LENGTHS:
            _, _, _, queries = workloads[length]
            taus = taus_for(costs, queries, TAU_RATIO)
            series.append(avg_query_seconds(method, queries, taus))
        table.add_row(method.name, series, formatter=format_seconds)
        measured[method.name] = series
    table.print()

    # Shape: OSF-BT beats the SW verifiers at the longest queries.
    assert measured["OSF-BT"][-1] <= measured["OSF-SW"][-1]
    assert measured["OSF-BT"][-1] <= measured["Torch-SW"][-1]

    recorder.record(
        f"fig07_{profile}_{function}",
        {"query_lengths": QUERY_LENGTHS, "seconds": measured, "scale": bench_scale},
        expectation="OSF-BT fastest at every |Q|; times grow with |Q|",
    )

    osf = [m for m in methods if m.name == "OSF-BT"][0]
    _, _, costs, queries = workloads[QUERY_LENGTHS[-1]]
    taus = taus_for(costs, queries, TAU_RATIO)
    benchmark(lambda: osf.query(queries[0], taus[0]))
