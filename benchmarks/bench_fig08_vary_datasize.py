"""Figure 8 — query processing time vs dataset size (25/50/75/100%).

Paper shape: every method scales roughly linearly in |T|; OSF-BT is
consistently the fastest at all sizes.
"""

import pytest
from _helpers import (
    avg_query_seconds,
    dataset_names,
    function_names,
    load_workload,
    method_registry,
    supports,
    taus_for,
)

from repro.bench.harness import SeriesTable, format_seconds

FRACTIONS = [0.25, 0.5, 0.75, 1.0]
TAU_RATIO = 0.1


@pytest.mark.parametrize("profile", dataset_names())
@pytest.mark.parametrize("function", function_names())
def test_fig08_vary_dataset_size(profile, function, benchmark, recorder, bench_scale):
    methods = method_registry()
    measured = {m.name: [] for m in methods}
    # Queries are sampled from the full dataset so they stay fixed across
    # fractions (the paper's setup).
    _, full_dataset, full_costs, queries = load_workload(
        profile, function, scale=bench_scale
    )
    for fraction in FRACTIONS:
        graph, dataset, costs, _ = load_workload(
            profile, function, scale=bench_scale * fraction
        )
        taus = taus_for(costs, queries, TAU_RATIO)
        for method in methods:
            if not supports(method, costs):
                measured.pop(method.name, None)
                continue
            method.build(dataset, costs)
            measured[method.name].append(avg_query_seconds(method, queries, taus))
    table = SeriesTable(
        "method",
        [f"{int(f * 100)}%" for f in FRACTIONS],
        title=f"Fig. 8 ({profile} / {function}): avg query time vs |T|",
    )
    for name, series in measured.items():
        table.add_row(name, series, formatter=format_seconds)
    table.print()

    # Shape: larger datasets are slower for the scan baseline (monotone up
    # to noise) and OSF-BT stays fastest at full size.
    if "Plain-SW" in measured:
        assert measured["Plain-SW"][-1] > measured["Plain-SW"][0] * 1.5
        assert measured["OSF-BT"][-1] < measured["Plain-SW"][-1]
    assert measured["OSF-BT"][-1] <= measured["Torch-SW"][-1]

    recorder.record(
        f"fig08_{profile}_{function}",
        {"fractions": FRACTIONS, "seconds": measured, "scale": bench_scale},
        expectation="linear scaling in |T|; OSF-BT consistently fastest",
    )

    osf = [m for m in methods if m.name == "OSF-BT"][0]
    taus = taus_for(full_costs, queries, TAU_RATIO)
    osf.build(full_dataset, full_costs)
    benchmark(lambda: osf.query(queries[0], taus[0]))
