"""Figure 8 — query processing time vs dataset size (25/50/75/100%).

Paper shape: every method scales roughly linearly in |T|; OSF-BT is
consistently the fastest at all sizes.

This file also carries the *index-tier* size sweep
(``test_fig08_frozen_index_scale_sweep``): dict vs frozen index up to
|T| = 10^5 trajectories at full scale — the gap between reproduction
scale and production scale (ROADMAP §2).  The committed full-scale
artifact lives at ``BENCH_frozen_index.json``.
"""

import random
import time

import pytest
from _helpers import (
    avg_query_seconds,
    dataset_names,
    function_names,
    load_workload,
    method_registry,
    supports,
    taus_for,
)

from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import SubtrajectorySearch
from repro.core.frozen import FrozenInvertedIndex
from repro.core.invindex import InvertedIndex
from repro.distance.costs import LevenshteinCost
from repro.network.generators import grid_city
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory

FRACTIONS = [0.25, 0.5, 0.75, 1.0]
TAU_RATIO = 0.1

# Index-tier sweep sizes: |T| at REPRO_BENCH_SCALE=1.0.  TripGenerator's
# Dijkstra routing is far too slow to mint 10^5 trips, so the sweep uses
# cheap seeded random walks — the index tier only cares about symbol
# statistics, not route realism.
SWEEP_SIZES = [1_000, 10_000, 100_000]


def _random_walk_dataset(num_trajectories: int, seed: int) -> TrajectoryDataset:
    graph = grid_city(40, 40, seed=seed)
    rng = random.Random(seed)
    num_vertices = graph.num_vertices
    dataset = TrajectoryDataset(graph, "vertex")
    for _ in range(num_trajectories):
        v = rng.randrange(num_vertices)
        path = [v]
        for _ in range(rng.randint(10, 40)):
            succ = graph.successors(v)
            if not succ:
                break
            v = succ[rng.randrange(len(succ))]
            path.append(v)
        dataset.add(Trajectory(path))
    return dataset


def test_fig08_frozen_index_scale_sweep(benchmark, recorder, bench_scale, tmp_path):
    """Dict vs frozen index as |T| grows to 10^5 (at full scale).

    Asserts the two acceptance facts of the frozen tier: the packed
    file stays <= 0.5x the dict index's in-memory bytes at every size,
    and opening the file is O(1) — cold-open latency does not grow with
    the index (only the header is read; sections are mmap views).
    """
    sizes = [max(10, int(n * bench_scale)) for n in SWEEP_SIZES]
    cells = []
    for size in sizes:
        dataset = _random_walk_dataset(size, seed=97)
        dict_index = InvertedIndex(dataset)
        dict_bytes = dict_index.memory_bytes()
        t0 = time.perf_counter()
        frozen = FrozenInvertedIndex.freeze(dataset)
        path = tmp_path / f"sweep-{size}.reproidx"
        file_bytes = frozen.save(path)
        freeze_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        opened = FrozenInvertedIndex.open(path)
        open_seconds = time.perf_counter() - t0
        assert opened.num_postings == dict_index.num_postings
        cells.append(
            {
                "trajectories": size,
                "postings": dict_index.num_postings,
                "dict_build_seconds": dict_index.build_seconds,
                "dict_bytes": dict_bytes,
                "freeze_seconds": freeze_seconds,
                "file_bytes": file_bytes,
                "bytes_ratio": file_bytes / dict_bytes,
                "cold_open_seconds": open_seconds,
            }
        )

    table = SeriesTable(
        "|T|",
        ["postings", "dict MB", "file MB", "ratio", "freeze s", "open ms"],
        title="Index tier vs |T|: dict RSS vs frozen file, cold-open latency",
    )
    for cell in cells:
        table.add_row(
            str(cell["trajectories"]),
            [
                cell["postings"],
                f"{cell['dict_bytes'] / 1e6:.2f}",
                f"{cell['file_bytes'] / 1e6:.2f}",
                f"{cell['bytes_ratio']:.3f}",
                f"{cell['freeze_seconds']:.2f}",
                f"{cell['cold_open_seconds'] * 1e3:.2f}",
            ],
        )
    table.print()

    # The packed file beats half the dict footprint at every size.
    assert all(c["bytes_ratio"] <= 0.5 for c in cells)
    # O(1) open: a 100x larger index must not open meaningfully slower —
    # generous absolute + relative bounds so CI noise cannot trip it.
    assert cells[-1]["cold_open_seconds"] < max(
        0.05, 50 * cells[0]["cold_open_seconds"]
    )

    # Query parity at the smallest size (the big sizes prove scale, the
    # hypothesis suite proves bit-identity exhaustively).
    dataset = _random_walk_dataset(sizes[0], seed=97)
    query = list(dataset.symbols(0))[:8]
    ref = SubtrajectorySearch(dataset, LevenshteinCost()).query(query, tau=2.0)
    got = SubtrajectorySearch(
        dataset,
        LevenshteinCost(),
        index_backend="frozen",
        index_path=str(tmp_path / f"sweep-{sizes[0]}.reproidx"),
    ).query(query, tau=2.0)
    assert got.matches == ref.matches
    assert got.verification == ref.verification

    recorder.record(
        "frozen_index_scale",
        {"sizes": sizes, "cells": cells, "scale": bench_scale},
        expectation="frozen file <= 0.5x dict RSS at every |T|; "
        "cold open O(1); answers bit-identical",
    )
    benchmark(lambda: FrozenInvertedIndex.open(tmp_path / f"sweep-{sizes[-1]}.reproidx"))


@pytest.mark.parametrize("profile", dataset_names())
@pytest.mark.parametrize("function", function_names())
def test_fig08_vary_dataset_size(profile, function, benchmark, recorder, bench_scale):
    methods = method_registry()
    measured = {m.name: [] for m in methods}
    # Queries are sampled from the full dataset so they stay fixed across
    # fractions (the paper's setup).
    _, full_dataset, full_costs, queries = load_workload(
        profile, function, scale=bench_scale
    )
    for fraction in FRACTIONS:
        graph, dataset, costs, _ = load_workload(
            profile, function, scale=bench_scale * fraction
        )
        taus = taus_for(costs, queries, TAU_RATIO)
        for method in methods:
            if not supports(method, costs):
                measured.pop(method.name, None)
                continue
            method.build(dataset, costs)
            measured[method.name].append(avg_query_seconds(method, queries, taus))
    table = SeriesTable(
        "method",
        [f"{int(f * 100)}%" for f in FRACTIONS],
        title=f"Fig. 8 ({profile} / {function}): avg query time vs |T|",
    )
    for name, series in measured.items():
        table.add_row(name, series, formatter=format_seconds)
    table.print()

    # Shape: larger datasets are slower for the scan baseline (monotone up
    # to noise) and OSF-BT stays fastest at full size.
    if "Plain-SW" in measured:
        assert measured["Plain-SW"][-1] > measured["Plain-SW"][0] * 1.5
        assert measured["OSF-BT"][-1] < measured["Plain-SW"][-1]
    assert measured["OSF-BT"][-1] <= measured["Torch-SW"][-1]

    recorder.record(
        f"fig08_{profile}_{function}",
        {"fractions": FRACTIONS, "seconds": measured, "scale": bench_scale},
        expectation="linear scaling in |T|; OSF-BT consistently fastest",
    )

    osf = [m for m in methods if m.name == "OSF-BT"][0]
    taus = taus_for(full_costs, queries, TAU_RATIO)
    osf.build(full_dataset, full_costs)
    benchmark(lambda: osf.query(queries[0], taus[0]))
