"""Figure 9 — vs subtrajectory-enumeration baselines (DITA, ERP-index),
varying tau_ratio on a small dataset fraction.

Paper shape: OSF-BT outperforms DITA and ERP-index by about two orders of
magnitude, and the enumeration baselines' candidate sets are 105x (DITA)
and 14x (ERP-index) OSF's on average.

Scale note: the wall-clock gap vs ERP-index requires the paper's tens of
millions of enumerated subtrajectories; at laptop scale the coordinate-sum
filter is cheap enough to be competitive.  We therefore assert the
robust, scale-independent parts — DITA loses outright, and the
enumeration baselines' candidate counts *grow much faster with tau* than
OSF's — and record the full timing series for EXPERIMENTS.md.
"""

import time

import pytest
from _helpers import load_workload, taus_for

from repro.baselines import DITAIndex, ERPIndex
from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import SubtrajectorySearch

TAU_RATIOS = [0.05, 0.1, 0.2, 0.3]


@pytest.mark.parametrize("function", ["EDR", "ERP"])
def test_fig09_enumeration_baselines_vary_tau(function, benchmark, recorder):
    # The paper uses 5,000-trajectory fractions; "small" mirrors that.
    graph, dataset, costs, queries = load_workload(
        "small", function, scale=1.0, query_length=10, num_queries=3
    )
    engine = SubtrajectorySearch(dataset, costs)
    if function == "EDR":
        enum_index = DITAIndex(dataset, costs, max_subtrajectories=5_000_000)
        enum_name = "DITA"
        enum_candidates = enum_index.candidates
    else:
        enum_index = ERPIndex(dataset, costs, max_subtrajectories=5_000_000)
        enum_name = "ERP-index"
        enum_candidates = enum_index.candidates

    times = {"OSF-BT": [], enum_name: []}
    cands = {"OSF-BT": [], enum_name: []}
    for ratio in TAU_RATIOS:
        taus = taus_for(costs, queries, ratio)
        t0 = time.perf_counter()
        for q, tau in zip(queries, taus):
            engine.query(q, tau=tau)
        times["OSF-BT"].append((time.perf_counter() - t0) / len(queries))
        cands["OSF-BT"].append(
            sum(len(engine.candidates(q, tau=t)) for q, t in zip(queries, taus))
        )
        t0 = time.perf_counter()
        for q, tau in zip(queries, taus):
            enum_index.query(q, tau)
        times[enum_name].append((time.perf_counter() - t0) / len(queries))
        cands[enum_name].append(
            sum(len(enum_candidates(q, t)) for q, t in zip(queries, taus))
        )

    table = SeriesTable(
        "method",
        [f"tau={r}" for r in TAU_RATIOS],
        title=f"Fig. 9 (small / {function}): OSF vs {enum_name}, vary tau_ratio",
    )
    for name in times:
        table.add_row(f"{name} time", times[name], formatter=format_seconds)
        table.add_row(f"{name} cands", cands[name])
    table.print()

    if function == "EDR":
        # DITA: the paper's outright loss reproduces directly.
        for i in range(len(TAU_RATIOS)):
            assert times["OSF-BT"][i] < times[enum_name][i]
            assert cands["OSF-BT"][i] < cands[enum_name][i]
    else:
        # ERP-index: candidate growth with tau is much steeper than OSF's
        # (the sum lower bound deteriorates), even where absolute counts
        # stay small at this scale.
        osf_growth = (cands["OSF-BT"][-1] + 1) / (cands["OSF-BT"][0] + 1)
        enum_growth = (cands[enum_name][-1] + 1) / (cands[enum_name][0] + 1)
        assert enum_growth > osf_growth
    # Enumeration index is orders of magnitude bigger than the postings.
    assert enum_index.num_subtrajectories > engine.index.num_postings * 5

    recorder.record(
        f"fig09_small_{function}",
        {
            "tau_ratios": TAU_RATIOS,
            "seconds": times,
            "candidates": cands,
            "enum_entries": enum_index.num_subtrajectories,
            "postings": engine.index.num_postings,
        },
        expectation="OSF beats DITA outright; ERP-index candidates grow "
        "steeply with tau; enumeration index explodes in size",
    )

    taus = taus_for(costs, queries, 0.1)
    benchmark(lambda: engine.query(queries[0], tau=taus[0]))
