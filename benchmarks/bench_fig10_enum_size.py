"""Figure 10 — vs DITA / ERP-index, varying the number of indexed
trajectories (the paper indexes 5k/10k/15k; we scale down).

Paper shape: all methods grow roughly linearly in the indexed count; OSF
stays far below DITA; the enumeration indexes carry orders of magnitude
more entries than the postings index at every size (which is why the
paper cannot index the full datasets with them at all).
"""

import time

import pytest
from _helpers import make_cost_model, taus_for

from repro.baselines import DITAIndex, ERPIndex
from repro.bench.datasets import build_dataset
from repro.bench.harness import SeriesTable, format_seconds
from repro.bench.workloads import sample_queries
from repro.core.engine import SubtrajectorySearch

FRACTIONS = [0.4, 0.7, 1.0]
TAU_RATIO = 0.1


@pytest.mark.parametrize("function", ["EDR", "ERP"])
def test_fig10_enumeration_baselines_vary_size(function, benchmark, recorder):
    enum_name = "DITA" if function == "EDR" else "ERP-index"
    times = {"OSF-BT": [], enum_name: []}
    entries = {"postings": [], enum_name: []}
    queries = None
    for fraction in FRACTIONS:
        graph, dataset = build_dataset("small", scale=fraction)
        costs = make_cost_model(function, graph)
        if queries is None:
            queries = sample_queries(dataset, 3, 10, seed=11)
        taus = taus_for(costs, queries, TAU_RATIO)
        engine = SubtrajectorySearch(dataset, costs)
        index = (
            DITAIndex(dataset, costs, max_subtrajectories=5_000_000)
            if function == "EDR"
            else ERPIndex(dataset, costs, max_subtrajectories=5_000_000)
        )
        t0 = time.perf_counter()
        for q, tau in zip(queries, taus):
            engine.query(q, tau=tau)
        times["OSF-BT"].append((time.perf_counter() - t0) / len(queries))
        t0 = time.perf_counter()
        for q, tau in zip(queries, taus):
            index.query(q, tau)
        times[enum_name].append((time.perf_counter() - t0) / len(queries))
        entries["postings"].append(engine.index.num_postings)
        entries[enum_name].append(index.num_subtrajectories)

    table = SeriesTable(
        "series",
        [f"{int(f * 100)}%" for f in FRACTIONS],
        title=f"Fig. 10 (small / {function}): OSF vs {enum_name}, vary #traj",
    )
    for name, series in times.items():
        table.add_row(f"{name} time", series, formatter=format_seconds)
    for name, series in entries.items():
        table.add_row(f"{name} entries", series)
    table.print()

    if function == "EDR":
        for i in range(len(FRACTIONS)):
            assert times["OSF-BT"][i] < times[enum_name][i]
    # The enumeration index dwarfs the postings index at every size.
    for i in range(len(FRACTIONS)):
        assert entries[enum_name][i] > entries["postings"][i] * 5
    # Both index families grow with dataset size.
    assert entries[enum_name][-1] > entries[enum_name][0]
    assert entries["postings"][-1] > entries["postings"][0]

    recorder.record(
        f"fig10_small_{function}",
        {"fractions": FRACTIONS, "seconds": times, "entries": entries},
        expectation="OSF-BT far below DITA; enumeration index entries "
        "dwarf postings at every size",
    )

    graph, dataset = build_dataset("small", scale=1.0)
    costs = make_cost_model(function, graph)
    engine = SubtrajectorySearch(dataset, costs)
    taus = taus_for(costs, queries, TAU_RATIO)
    benchmark(lambda: engine.query(queries[0], tau=taus[0]))
