"""Figure 11 — number of candidate positions per filtering strategy.

Paper shape: OSF produces the fewest candidates at every tau_ratio and |Q|
(at least ~3x fewer than DISON and q-gram, ~25x fewer than Torch); OSF
scales gracefully with |Q| because a longer query gives MinCand more
items to choose from.
"""

import pytest
from _helpers import function_names, load_workload, taus_for

from repro.baselines import QGramIndex, dison_engine, torch_engine
from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import EDRCost, LevenshteinCost, NetEDRCost

TAU_RATIOS = [0.1, 0.2, 0.3]
QUERY_LENGTHS = [5, 10, 15]


def _candidate_counts(dataset, costs, queries, taus):
    osf = SubtrajectorySearch(dataset, costs)
    dison = dison_engine(dataset, costs)
    torch = torch_engine(dataset, costs)
    out = {
        "OSF": sum(len(osf.candidates(q, tau=t)) for q, t in zip(queries, taus)),
        "DISON": sum(len(dison.candidates(q, tau=t)) for q, t in zip(queries, taus)),
        "Torch": sum(len(torch.candidates(q, tau=t)) for q, t in zip(queries, taus)),
    }
    if isinstance(costs, (EDRCost, LevenshteinCost, NetEDRCost)):
        qg = QGramIndex(dataset, costs, q=3)
        # q-gram candidates are whole trajectories; count their positions to
        # compare against (id, j, iq) candidate positions fairly, as the
        # paper does.
        total = 0
        for q, tau in zip(queries, taus):
            for tid in qg.candidates(q, tau):
                total += len(dataset.symbols(tid))
        out["q-gram"] = total
    return out


@pytest.mark.parametrize("function", function_names())
def test_fig11_candidate_counts(function, benchmark, recorder, bench_scale):
    _, dataset, costs, queries = load_workload("beijing", function, scale=bench_scale)
    measured_tau = {}
    for ratio in TAU_RATIOS:
        taus = taus_for(costs, queries, ratio)
        for name, count in _candidate_counts(dataset, costs, queries, taus).items():
            measured_tau.setdefault(name, []).append(count)

    measured_qlen = {}
    for qlen in QUERY_LENGTHS:
        _, _, _, qs = load_workload(
            "beijing", function, scale=bench_scale, query_length=qlen
        )
        taus = taus_for(costs, qs, 0.1)
        for name, count in _candidate_counts(dataset, costs, qs, taus).items():
            measured_qlen.setdefault(name, []).append(count)

    t1 = SeriesTable(
        "filter",
        [f"tau={r}" for r in TAU_RATIOS],
        title=f"Fig. 11 (beijing / {function}): candidates vs tau_ratio",
    )
    for name, series in measured_tau.items():
        t1.add_row(name, series)
    t1.print()
    t2 = SeriesTable(
        "filter",
        [f"|Q|={n}" for n in QUERY_LENGTHS],
        title=f"Fig. 11 (beijing / {function}): candidates vs |Q|",
    )
    for name, series in measured_qlen.items():
        t2.add_row(name, series)
    t2.print()

    # Shape: OSF <= DISON <= Torch everywhere.
    for i in range(len(TAU_RATIOS)):
        assert measured_tau["OSF"][i] <= measured_tau["DISON"][i]
        assert measured_tau["DISON"][i] <= measured_tau["Torch"][i]
    for i in range(len(QUERY_LENGTHS)):
        assert measured_qlen["OSF"][i] <= measured_qlen["Torch"][i]

    recorder.record(
        f"fig11_beijing_{function}",
        {
            "tau_ratios": TAU_RATIOS,
            "candidates_vs_tau": measured_tau,
            "query_lengths": QUERY_LENGTHS,
            "candidates_vs_qlen": measured_qlen,
            "scale": bench_scale,
        },
        expectation="OSF smallest candidate set; Torch largest",
    )

    engine = SubtrajectorySearch(dataset, costs)
    taus = taus_for(costs, queries, 0.1)
    benchmark(lambda: engine.candidates(queries[0], tau=taus[0]))
