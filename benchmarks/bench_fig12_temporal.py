"""Figure 12 — temporal selectivity: TF candidate pruning vs
postprocessing (no-TF).

Paper shape: with TF, processing time scales almost linearly with
temporal selectivity and beats no-TF by about an order of magnitude at
low selectivity; both return identical results.
"""

import time

from _helpers import load_workload, taus_for

from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import SubtrajectorySearch
from repro.core.temporal import TimeInterval

SELECTIVITIES = [0.01, 0.02, 0.05, 0.10]


def test_fig12_temporal_selectivity(benchmark, recorder, bench_scale):
    _, dataset, costs, queries = load_workload("beijing", "EDR", scale=bench_scale)
    engine = SubtrajectorySearch(dataset, costs, sort_by_departure=True)
    taus = taus_for(costs, queries, 0.1)
    departures = sorted(dataset[t].start_time for t in range(len(dataset)))
    t_min = departures[0]

    measured = {"TF": [], "no-TF": []}
    for sel in SELECTIVITIES:
        t_hi = departures[max(0, int(len(departures) * sel) - 1)]
        interval = TimeInterval(t_min, t_hi)
        for label, tf in (("TF", True), ("no-TF", False)):
            t0 = time.perf_counter()
            results = [
                engine.query(
                    q, tau=tau, time_interval=interval, temporal_filter=tf
                ).matches
                for q, tau in zip(queries, taus)
            ]
            measured[label].append((time.perf_counter() - t0) / len(queries))
        # Both strategies must agree (checked once per selectivity).
        a = [
            engine.query(q, tau=tau, time_interval=interval, temporal_filter=True).matches
            for q, tau in zip(queries, taus)
        ]
        b = [
            engine.query(q, tau=tau, time_interval=interval, temporal_filter=False).matches
            for q, tau in zip(queries, taus)
        ]
        assert a == b

    table = SeriesTable(
        "strategy",
        [f"TS={int(s * 100)}%" for s in SELECTIVITIES],
        title="Fig. 12 (beijing / EDR): temporal selectivity",
    )
    for label, series in measured.items():
        table.add_row(label, series, formatter=format_seconds)
    table.print()

    # Shape: TF is faster than no-TF at every selectivity, most at 1%.
    for i in range(len(SELECTIVITIES)):
        assert measured["TF"][i] < measured["no-TF"][i]
    gain_low = measured["no-TF"][0] / measured["TF"][0]
    gain_high = measured["no-TF"][-1] / measured["TF"][-1]
    assert gain_low > 1.0

    recorder.record(
        "fig12_temporal",
        {
            "selectivities": SELECTIVITIES,
            "seconds": measured,
            "speedup_at_lowest": gain_low,
            "speedup_at_highest": gain_high,
            "scale": bench_scale,
        },
        expectation="TF beats no-TF; gap widest at low selectivity",
    )

    interval = TimeInterval(t_min, departures[len(departures) // 20])
    benchmark(
        lambda: engine.query(
            queries[0], tau=taus[0], time_interval=interval, temporal_filter=True
        )
    )
