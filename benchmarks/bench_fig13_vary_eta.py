"""Figure 13 (Appendix D) — sensitivity to the neighborhood threshold eta
for the continuous cost functions (ERP, NetERP).

Paper shape: small eta gives consistently fast queries; processing time
rises steeply once eta grows past a sweet spot (neighborhoods explode and
with them the candidate set); very small eta risks losing the
tau-subsequence entirely (engine falls back to scanning).
"""

import time

import pytest
from _helpers import taus_for

from repro.bench.datasets import build_dataset
from repro.bench.harness import SeriesTable, format_seconds
from repro.bench.workloads import sample_queries
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import ERPCost, NetERPCost

#: eta scaled by the median nearest-neighbor distance (ERP) or the median
#: edge weight (NetERP), mirroring the dimensionless sweep of Fig. 13.
ETA_MULTIPLIERS = [1e-4, 1e-2, 1.0, 3.0]


@pytest.mark.parametrize("function", ["ERP", "NetERP"])
def test_fig13_vary_eta(function, benchmark, recorder, bench_scale):
    graph, dataset = build_dataset("beijing", scale=bench_scale)
    queries = sample_queries(dataset, 3, 15, seed=777)
    unit = graph.median_edge_weight()

    series = []
    candidates = []
    for mult in ETA_MULTIPLIERS:
        eta = mult * unit
        if function == "ERP":
            costs = ERPCost(graph, eta=eta)
        else:
            costs = NetERPCost(graph, g_del=2_000.0, eta=eta)
        engine = SubtrajectorySearch(dataset, costs)
        taus = taus_for(costs, queries, 0.1)
        t0 = time.perf_counter()
        n_cands = 0
        for q, tau in zip(queries, taus):
            r = engine.query(q, tau=tau)
            n_cands += r.num_candidates
        series.append((time.perf_counter() - t0) / len(queries))
        candidates.append(n_cands)

    table = SeriesTable(
        "metric",
        [f"eta={m}x" for m in ETA_MULTIPLIERS],
        title=f"Fig. 13 (beijing / {function}): eta sensitivity",
    )
    table.add_row("query time", series, formatter=format_seconds)
    table.add_row("candidates", candidates)
    table.print()

    # Shape: the largest eta inflates the candidate set beyond the small-eta
    # settings.
    assert candidates[-1] >= candidates[0]

    recorder.record(
        f"fig13_{function}",
        {
            "eta_multipliers": ETA_MULTIPLIERS,
            "seconds": series,
            "candidates": candidates,
            "scale": bench_scale,
        },
        expectation="small eta fast; time/candidates blow up at large eta",
    )

    if function == "ERP":
        costs = ERPCost(graph, eta=1e-4 * unit)
    else:
        costs = NetERPCost(graph, g_del=2_000.0, eta=unit)
    engine = SubtrajectorySearch(dataset, costs)
    taus = taus_for(costs, queries, 0.1)
    benchmark(lambda: engine.query(queries[0], tau=taus[0]))
