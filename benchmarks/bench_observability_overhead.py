"""Observability overhead — the tracing/metrics layer must stay ~free.

Not a paper figure: ISSUE 6 threads trace spans, Prometheus-text
metrics, and a slow-query flight recorder through the whole request path
(service -> executor -> engine).  This benchmark is the CI gate keeping
that plumbing honest on the paper's headline workload (``singapore`` /
NetEDR, |Q| = 50 — the §2.2.3 setting every perf baseline uses):

- **baseline** — ``SubtrajectorySearch.query`` called directly, no
  serving layer, no tracing (the pre-observability cost of a query);
- **service_untraced** — the full :class:`QueryService` path with
  ``trace_sample_rate=0.0``: metrics counters fire, but no trace object
  is ever built.  This is production-default mode, gated at
  ``OFF_OVERHEAD_FLOOR`` (< 3%) over baseline;
- **service_traced** — ``trace_sample_rate=1.0``: every query builds a
  span tree, grafts engine stage spans, and files into the flight
  recorder.  Gated at ``ON_OVERHEAD_FLOOR`` (< 10%) over baseline.

Both gates carry an *absolute* slack floor (``ABS_SLACK_SECONDS``): on
the CI smoke scale (``REPRO_BENCH_SCALE=0.25``) a query costs only a few
milliseconds, so fixed serving costs that are invisible at production
scale (executor handoff, one result-cache probe) would otherwise
dominate the *relative* gate.  The slack is far below any real
regression: it admits at most ~0.4 ms of per-query overhead on a
workload where real tracing regressions (per-span allocation in the DP
loop, say) cost multiples of that.

The result-cache is disabled (``cache_size=0``) so every timed request
exercises the full compute path — a cache hit would measure dictionary
lookups, not tracing overhead.  The run also exports the flight
recorder's slowest trace to ``results/FLIGHT_slowest_trace.json``; CI
uploads it as a build artifact so every green build ships one fully
rendered example trace.
"""

import json
import time
from pathlib import Path

from _helpers import load_workload

from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import SubtrajectorySearch
from repro.service import QueryService

PROFILE = "singapore"
FUNCTION = "NetEDR"
QUERY_LENGTH = 50
NUM_QUERIES = 3
TAU_RATIO = 0.4
REPEATS = 5
#: CI gate: production-default mode (sampling off) must stay < 3% over
#: the bare-engine baseline.
OFF_OVERHEAD_FLOOR = 0.03
#: CI gate: full tracing (sample rate 1.0) must stay < 10% over baseline.
ON_OVERHEAD_FLOOR = 0.10
#: Absolute per-query slack (seconds): the larger of the relative floor
#: and this bounds the gate, so millisecond-scale CI smoke cells do not
#: fail on fixed serving costs that vanish at production query cost.
ABS_SLACK_SECONDS = 0.0004


def _best_of(run_query, queries):
    """Min-of-``REPEATS`` per query (noise can only slow a run down),
    summed across the workload — identical aggregation for every config."""
    best = [float("inf")] * len(queries)
    for _ in range(REPEATS):
        for i, q in enumerate(queries):
            t0 = time.perf_counter()
            run_query(q)
            best[i] = min(best[i], time.perf_counter() - t0)
    return sum(best) / len(queries)


def _service(engine, sample_rate):
    return QueryService(
        engine,
        cache_size=0,  # every request must walk the full compute path
        trace_sample_rate=sample_rate,
        slow_query_seconds=None,
    )


def test_observability_overhead(recorder, bench_scale):
    _, dataset, costs, queries = load_workload(
        PROFILE,
        FUNCTION,
        scale=bench_scale,
        query_length=QUERY_LENGTH,
        num_queries=NUM_QUERIES,
    )
    engine = SubtrajectorySearch(dataset, costs, dp_backend="numpy")

    # Warm-up: cost-model caches, substitution LRU, trie cache — every
    # config then measures identical steady serving state.
    expected = []
    for q in queries:
        result = engine.query(q, tau_ratio=TAU_RATIO)
        expected.append(
            [(m.trajectory_id, m.start, m.end, m.distance) for m in result.matches]
        )

    seconds = {}
    seconds["baseline"] = _best_of(
        lambda q: engine.query(q, tau_ratio=TAU_RATIO), queries
    )

    untraced = _service(engine, 0.0)
    try:
        seconds["service_untraced"] = _best_of(
            lambda q: untraced.query(q, tau_ratio=TAU_RATIO), queries
        )
    finally:
        untraced.close()

    traced = _service(engine, 1.0)
    try:
        seconds["service_traced"] = _best_of(
            lambda q: traced.query(q, tau_ratio=TAU_RATIO), queries
        )
        # Tracing must be observation-only: answers stay bit-identical.
        for q, want in zip(queries, expected):
            result = traced.query(q, tau_ratio=TAU_RATIO).result
            got = [
                (m.trajectory_id, m.start, m.end, m.distance)
                for m in result.matches
            ]
            assert got == want, "tracing changed query answers"
        slowest = traced.observability.recorder.slowest(1)
        recorded_total = traced.observability.recorder.stats()["recorded"]
    finally:
        traced.close()

    assert slowest, "flight recorder captured no traces at sample rate 1.0"
    flight_path = Path(__file__).resolve().parent.parent / "results"
    flight_path.mkdir(parents=True, exist_ok=True)
    flight_path = flight_path / "FLIGHT_slowest_trace.json"
    flight_path.write_text(
        json.dumps(slowest[0], indent=2, default=str) + "\n", encoding="utf-8"
    )

    overhead = {
        config: seconds[config] / seconds["baseline"] - 1.0
        for config in ("service_untraced", "service_traced")
    }
    slack = {
        config: max(
            floor, ABS_SLACK_SECONDS / seconds["baseline"]
        )
        for config, floor in (
            ("service_untraced", OFF_OVERHEAD_FLOOR),
            ("service_traced", ON_OVERHEAD_FLOOR),
        )
    }

    table = SeriesTable(
        "config",
        ["baseline", "service_untraced", "service_traced"],
        title=(
            f"Observability overhead ({PROFILE}/{FUNCTION}, |Q|={QUERY_LENGTH}, "
            f"tau_ratio={TAU_RATIO}, |T|={len(dataset)})"
        ),
    )
    table.add_row(
        "query seconds",
        [seconds[c] for c in ("baseline", "service_untraced", "service_traced")],
        formatter=format_seconds,
    )
    table.add_row(
        "overhead vs baseline",
        [0.0, overhead["service_untraced"], overhead["service_traced"]],
        formatter=lambda v: f"{v * 100:+.2f}%",
    )
    table.print()

    recorder.record(
        "BENCH_observability_overhead",
        {
            "profile": PROFILE,
            "function": FUNCTION,
            "query_length": QUERY_LENGTH,
            "tau_ratio": TAU_RATIO,
            "num_queries": NUM_QUERIES,
            "repeats": REPEATS,
            "bench_scale": bench_scale,
            "trajectories": len(dataset),
            "seconds": seconds,
            "overhead": overhead,
            "effective_gate": slack,
            "off_overhead_floor": OFF_OVERHEAD_FLOOR,
            "on_overhead_floor": ON_OVERHEAD_FLOOR,
            "abs_slack_seconds": ABS_SLACK_SECONDS,
            "flight_recorder_traces": recorded_total,
            "slowest_trace_file": flight_path.name,
        },
        expectation=(
            f"serving with sampling off costs < {OFF_OVERHEAD_FLOOR:.0%} over "
            f"the bare engine and full tracing < {ON_OVERHEAD_FLOOR:.0%} "
            f"(each with an absolute slack of {ABS_SLACK_SECONDS * 1e3:g} ms "
            "per query on the smoke scale); answers bit-identical traced or "
            "not; the slowest trace ships as a CI artifact"
        ),
    )

    for config in ("service_untraced", "service_traced"):
        assert overhead[config] < slack[config], (
            f"{config} overhead {overhead[config]:.2%} over baseline "
            f"(gate {slack[config]:.2%}: "
            f"max(relative floor, {ABS_SLACK_SECONDS * 1e3:g} ms absolute))"
        )
