"""Serving throughput — QPS vs. client concurrency through the service.

Not a paper figure: the paper measures single-query latency; this
benchmark measures the serving subsystem built on top of it
(`repro.service`).  A Zipf-skewed request stream (popular routes repeat,
as in real traffic) is replayed against:

- *direct*: one client calling the engine serially (the pre-service
  deployment model) — the baseline;
- *service*: N concurrent clients in front of :class:`QueryService`
  (thread-pool shard fan-out + LRU result cache + request coalescing).

Expectation: service QPS grows with concurrency and clears 2x the serial
baseline by concurrency 8, with a substantial cache hit rate on the
skewed mix; answers stay element-for-element identical to the engine's.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from _helpers import load_workload

from repro.bench.harness import SeriesTable
from repro.bench.workloads import sample_zipf_queries
from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.service import QueryService

CONCURRENCY = [1, 2, 4, 8]
TAU_RATIO = 0.3
NUM_REQUESTS = 60
NUM_DISTINCT = 10
QUERY_LENGTH = 15
NUM_SHARDS = 4


def _match_keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


def _replay_concurrent(service, requests, concurrency):
    """Wall-clock seconds to drain ``requests`` with ``concurrency``
    client threads hammering the service."""
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as clients:
        futures = [
            clients.submit(service.query, q, tau_ratio=TAU_RATIO) for q in requests
        ]
        responses = [f.result() for f in futures]
    return time.perf_counter() - t0, responses


def test_serving_throughput(benchmark, recorder, bench_scale):
    graph, dataset, costs, _ = load_workload("small", "EDR", scale=bench_scale)
    requests = sample_zipf_queries(
        dataset, NUM_REQUESTS, QUERY_LENGTH, distinct=NUM_DISTINCT, seed=99
    )

    # Baseline: the pre-service deployment — one client, direct engine,
    # no cache, no concurrency.
    direct = SubtrajectorySearch(dataset, costs)
    t0 = time.perf_counter()
    expected = {}
    for q in requests:
        expected[tuple(q)] = _match_keys(direct.query(q, tau_ratio=TAU_RATIO))
    serial_seconds = time.perf_counter() - t0
    serial_qps = NUM_REQUESTS / serial_seconds

    engine = PartitionedSubtrajectorySearch(dataset, costs, num_shards=NUM_SHARDS)
    qps = []
    hit_rates = []
    coalesce_rates = []
    for concurrency in CONCURRENCY:
        service = QueryService(engine, max_workers=8, cache_size=256)
        seconds, responses = _replay_concurrent(service, requests, concurrency)
        # Serving correctness: every answer (cache hits and coalesced
        # duplicates included) must equal the direct engine's.
        for q, response in zip(requests, responses):
            assert _match_keys(response.result) == expected[tuple(q)]
        snap = service.stats()
        qps.append(NUM_REQUESTS / seconds)
        hit_rates.append(snap["cache_hit_rate"])
        coalesce_rates.append(snap["coalesce_rate"])
        service.close()

    table = SeriesTable(
        "series",
        [f"c={c}" for c in CONCURRENCY],
        title=(
            "Serving throughput (small / EDR): QPS vs client concurrency "
            f"(serial direct baseline: {serial_qps:.1f} QPS)"
        ),
    )
    table.add_row("service QPS", qps, formatter=lambda v: f"{v:.1f}")
    table.add_row("vs baseline", [q / serial_qps for q in qps],
                  formatter=lambda v: f"{v:.2f}x")
    table.add_row("cache hit rate", hit_rates, formatter=lambda v: f"{v:.0%}")
    table.add_row("coalesce rate", coalesce_rates, formatter=lambda v: f"{v:.0%}")
    table.print()

    # Acceptance: >= 2x serial QPS at concurrency 8, nonzero hit rate on
    # the zipf mix.
    assert qps[-1] >= 2.0 * serial_qps
    assert hit_rates[-1] > 0.0

    recorder.record(
        "serving_throughput",
        {
            "concurrency": CONCURRENCY,
            "qps": qps,
            "serial_qps": serial_qps,
            "speedup": [q / serial_qps for q in qps],
            "cache_hit_rate": hit_rates,
            "coalesce_rate": coalesce_rates,
            "requests": NUM_REQUESTS,
            "distinct": NUM_DISTINCT,
            "shards": NUM_SHARDS,
            "scale": bench_scale,
        },
        expectation="service QPS >= 2x serial direct baseline at c=8; "
        "nonzero cache hit rate on the zipf-skewed mix",
    )

    # Steady-state single-request latency through the warmed service.
    service = QueryService(engine, max_workers=8, cache_size=256)
    service.query(requests[0], tau_ratio=TAU_RATIO)
    benchmark(lambda: service.query(requests[0], tau_ratio=TAU_RATIO))
    service.close()
