"""Serving throughput — QPS vs. concurrency, and fan-out backend latency.

Not a paper figure: the paper measures single-query latency; this
benchmark measures the serving subsystem built on top of it
(`repro.service`).  Two experiments:

1. *Throughput*: a Zipf-skewed request stream (popular routes repeat, as
   in real traffic) replayed against the service at growing client
   concurrency, vs. one client calling the engine serially (the
   pre-service deployment model).  Expectation: service QPS clears 2x
   the serial baseline by concurrency 8, with a substantial cache hit
   rate on the skewed mix.

2. *Backend latency*: single-query latency of the three shard fan-out
   backends of `PartitionedSubtrajectorySearch` on a CPU-bound 4-shard
   workload.  Pure-Python verification holds the GIL, so the threads
   backend cannot beat serial by much; the processes backend (one worker
   process per shard, ISSUE 2) should beat threads by >1.5x wherever 4
   cores are actually available — the assertion is gated on CPU
   affinity so single-core containers still record the numbers.

3. *Remote backend*: the same queries served by standalone worker-node
   processes over the socket transport — latency percentiles at growing
   offered load, plus the cost of a reconnect storm (every node's
   connection torn down at once by an injected fault; the disrupted
   query's latency *is* the recovery time, since reconnect + journal
   replay happen inline before it is retried).

Answers stay element-for-element identical across deployments.
"""

import multiprocessing as mp
import os
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import random

from _helpers import load_workload

from repro.bench.harness import SeriesTable
from repro.bench.workloads import sample_queries, sample_zipf_queries
from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.remote import run_worker_node
from repro.core.topk import topk_search
from repro.faultinject import FaultPlan, FaultRule
from repro.service import QueryService

CONCURRENCY = [1, 2, 4, 8]
TAU_RATIO = 0.3
NUM_REQUESTS = 60
NUM_DISTINCT = 10
QUERY_LENGTH = 15
NUM_SHARDS = 4

#: backend-latency experiment: heavier queries so verification dominates
#: the pipe/pickle overhead of the processes backend.
BACKEND_QUERY_LENGTH = 30
BACKEND_TAU_RATIO = 0.5
BACKEND_NUM_QUERIES = 4
BACKEND_REPEATS = 2
#: processes must beat threads by this factor on a >=4-core machine.
BACKEND_SPEEDUP_FLOOR = 1.5

#: blended-workload experiment: a zipf-skewed stream mixing range and
#: top-k requests; repeats of a popular route arrive at varying depth k,
#: so the k-independent cache signature gets to serve shallow repeats
#: from a deeper stored ranking (the truncation reuse rule).
BLENDED_NUM_REQUESTS = 60
BLENDED_TOPK_SHARE = 0.5
BLENDED_K_CHOICES = (3, 5, 8)
BLENDED_CONCURRENCY = [1, 4]

#: remote-backend experiment: offered load (client threads), request
#: count per level, node count, and the storm ordinal (the per-shard
#: request on which every node's connection is torn down at once).
REMOTE_CONCURRENCY = [1, 2, 4]
REMOTE_NUM_REQUESTS = 30
REMOTE_NODES = 2
REMOTE_STORM_REQUEST = 2
REMOTE_RECOVERY_CEILING = 30.0


def _match_keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


def _replay_concurrent(service, requests, concurrency):
    """Wall-clock seconds to drain ``requests`` with ``concurrency``
    client threads hammering the service."""
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as clients:
        futures = [
            clients.submit(service.query, q, tau_ratio=TAU_RATIO) for q in requests
        ]
        responses = [f.result() for f in futures]
    return time.perf_counter() - t0, responses


def test_serving_throughput(benchmark, recorder, bench_scale):
    graph, dataset, costs, _ = load_workload("small", "EDR", scale=bench_scale)
    requests = sample_zipf_queries(
        dataset, NUM_REQUESTS, QUERY_LENGTH, distinct=NUM_DISTINCT, seed=99
    )

    # Baseline: the pre-service deployment — one client, direct engine,
    # no cache, no concurrency.
    direct = SubtrajectorySearch(dataset, costs)
    t0 = time.perf_counter()
    expected = {}
    for q in requests:
        expected[tuple(q)] = _match_keys(direct.query(q, tau_ratio=TAU_RATIO))
    serial_seconds = time.perf_counter() - t0
    serial_qps = NUM_REQUESTS / serial_seconds

    engine = PartitionedSubtrajectorySearch(dataset, costs, num_shards=NUM_SHARDS)
    qps = []
    hit_rates = []
    coalesce_rates = []
    for concurrency in CONCURRENCY:
        service = QueryService(engine, max_workers=8, cache_size=256)
        seconds, responses = _replay_concurrent(service, requests, concurrency)
        # Serving correctness: every answer (cache hits and coalesced
        # duplicates included) must equal the direct engine's.
        for q, response in zip(requests, responses):
            assert _match_keys(response.result) == expected[tuple(q)]
        snap = service.stats()
        qps.append(NUM_REQUESTS / seconds)
        hit_rates.append(snap["cache_hit_rate"])
        coalesce_rates.append(snap["coalesce_rate"])
        service.close()

    table = SeriesTable(
        "series",
        [f"c={c}" for c in CONCURRENCY],
        title=(
            "Serving throughput (small / EDR): QPS vs client concurrency "
            f"(serial direct baseline: {serial_qps:.1f} QPS)"
        ),
    )
    table.add_row("service QPS", qps, formatter=lambda v: f"{v:.1f}")
    table.add_row("vs baseline", [q / serial_qps for q in qps],
                  formatter=lambda v: f"{v:.2f}x")
    table.add_row("cache hit rate", hit_rates, formatter=lambda v: f"{v:.0%}")
    table.add_row("coalesce rate", coalesce_rates, formatter=lambda v: f"{v:.0%}")
    table.print()

    # Acceptance: >= 2x serial QPS at concurrency 8, nonzero hit rate on
    # the zipf mix.
    assert qps[-1] >= 2.0 * serial_qps
    assert hit_rates[-1] > 0.0

    recorder.record(
        "serving_throughput",
        {
            "concurrency": CONCURRENCY,
            "qps": qps,
            "serial_qps": serial_qps,
            "speedup": [q / serial_qps for q in qps],
            "cache_hit_rate": hit_rates,
            "coalesce_rate": coalesce_rates,
            "requests": NUM_REQUESTS,
            "distinct": NUM_DISTINCT,
            "shards": NUM_SHARDS,
            "scale": bench_scale,
        },
        expectation="service QPS >= 2x serial direct baseline at c=8; "
        "nonzero cache hit rate on the zipf-skewed mix",
    )

    # Steady-state single-request latency through the warmed service.
    service = QueryService(engine, max_workers=8, cache_size=256)
    service.query(requests[0], tau_ratio=TAU_RATIO)
    benchmark(lambda: service.query(requests[0], tau_ratio=TAU_RATIO))
    service.close()
    engine.close()


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_backend_single_query_latency(recorder, bench_scale):
    """Fan-out backends on a CPU-bound 4-shard workload (ISSUE 2).

    Serial vs. threads shows the GIL ceiling; threads vs. processes shows
    the cross-process shard workers actually using >1 core per query.
    """
    graph, dataset, costs, _ = load_workload("beijing", "EDR", scale=bench_scale)
    queries = sample_queries(
        dataset, BACKEND_NUM_QUERIES, BACKEND_QUERY_LENGTH, seed=1234
    )

    backends = {
        "serial": {},
        "threads": {"max_workers": NUM_SHARDS},
        "processes": {},
    }
    latencies = {}
    expected = None
    for backend, kwargs in backends.items():
        engine = PartitionedSubtrajectorySearch(
            dataset, costs, num_shards=NUM_SHARDS, backend=backend, **kwargs
        )
        try:
            # Warm-up pass doubles as the exactness check across backends.
            answers = [
                _match_keys(engine.query(q, tau_ratio=BACKEND_TAU_RATIO))
                for q in queries
            ]
            if expected is None:
                expected = answers
            else:
                assert answers == expected, f"{backend} backend changed answers"
            t0 = time.perf_counter()
            for _ in range(BACKEND_REPEATS):
                for q in queries:
                    engine.query(q, tau_ratio=BACKEND_TAU_RATIO)
            elapsed = time.perf_counter() - t0
            latencies[backend] = elapsed / (BACKEND_REPEATS * len(queries))
        finally:
            engine.close()

    speedup = latencies["threads"] / latencies["processes"]
    cores = _usable_cores()

    table = SeriesTable(
        "series",
        list(backends),
        title=(
            f"Fan-out backend single-query latency (beijing / EDR, "
            f"{NUM_SHARDS} shards, {cores} usable cores)"
        ),
    )
    table.add_row(
        "latency (ms)",
        [latencies[b] * 1e3 for b in backends],
        formatter=lambda v: f"{v:.1f}",
    )
    table.add_row(
        "vs processes",
        [latencies[b] / latencies["processes"] for b in backends],
        formatter=lambda v: f"{v:.2f}x",
    )
    table.print()

    recorder.record(
        "serving_backend_latency",
        {
            "backends": list(backends),
            "latency_seconds": [latencies[b] for b in backends],
            "speedup_processes_vs_threads": speedup,
            "usable_cores": cores,
            "num_shards": NUM_SHARDS,
            "query_length": BACKEND_QUERY_LENGTH,
            "tau_ratio": BACKEND_TAU_RATIO,
            "scale": bench_scale,
            "speedup_floor": BACKEND_SPEEDUP_FLOOR,
            "speedup_enforced": cores >= NUM_SHARDS,
        },
        expectation=(
            f"processes > {BACKEND_SPEEDUP_FLOOR}x faster than threads per "
            f"query on a {NUM_SHARDS}-shard CPU-bound workload when "
            f">= {NUM_SHARDS} cores are available"
        ),
    )

    # The whole point of cross-process sharding: more than one core per
    # query.  Only enforceable where the OS actually grants the cores.
    if cores >= NUM_SHARDS:
        assert speedup > BACKEND_SPEEDUP_FLOOR, (
            f"processes backend only {speedup:.2f}x faster than threads "
            f"with {cores} cores"
        )
    else:
        print(
            f"[skip-assert] {cores} usable core(s) < {NUM_SHARDS}: recorded "
            f"speedup {speedup:.2f}x without enforcing the "
            f"{BACKEND_SPEEDUP_FLOOR}x floor"
        )


# ---------------------------------------------------------------------------
# Blended workload: range + top-k through one service
# ---------------------------------------------------------------------------


def _topk_keys(result):
    return [(m.trajectory_id, m.start, m.end, m.distance) for m in result]


def test_blended_topk_throughput(recorder, bench_scale):
    """A zipf-skewed stream mixing range and top-k requests (ISSUE 10).

    The depth ``k`` of repeated top-k requests varies, so the
    k-independent cache signature can serve a shallow repeat from a
    deeper stored ranking by truncation — the reported *reuse hit rate*
    is the fraction of top-k requests answered that way.  Every answer
    (range and top-k, cached or computed) is checked against the direct
    single-engine oracle."""
    graph, dataset, costs, _ = load_workload("small", "EDR", scale=bench_scale)
    routes = sample_zipf_queries(
        dataset, BLENDED_NUM_REQUESTS, QUERY_LENGTH, distinct=NUM_DISTINCT, seed=42
    )
    mix = random.Random(4242)
    requests = [
        ("topk", q, mix.choice(BLENDED_K_CHOICES))
        if mix.random() < BLENDED_TOPK_SHARE
        else ("range", q, None)
        for q in routes
    ]

    # Direct single-engine oracle, one entry per distinct route: the
    # deepest ranking truncates to every smaller k (same rank order).
    direct = SubtrajectorySearch(dataset, costs)
    k_max = max(BLENDED_K_CHOICES)
    expected_range = {}
    expected_topk = {}
    for kind, q, _ in requests:
        key = tuple(q)
        if kind == "range" and key not in expected_range:
            expected_range[key] = _match_keys(direct.query(q, tau_ratio=TAU_RATIO))
        elif kind == "topk" and key not in expected_topk:
            expected_topk[key] = _topk_keys(topk_search(direct, q, k_max))

    engine = PartitionedSubtrajectorySearch(dataset, costs, num_shards=NUM_SHARDS)
    qps = []
    reuse_rates = []
    tau_rounds_mean = []
    for concurrency in BLENDED_CONCURRENCY:
        service = QueryService(engine, max_workers=8, cache_size=256)

        def serve(request):
            kind, q, k = request
            if kind == "topk":
                return request, service.topk(q, k)
            return request, service.query(q, tau_ratio=TAU_RATIO)

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=concurrency) as clients:
            answers = list(clients.map(serve, requests))
        elapsed = time.perf_counter() - t0

        topk_total = topk_reused = 0
        rounds = []
        for (kind, q, k), response in answers:
            if kind == "range":
                assert _match_keys(response.result) == expected_range[tuple(q)]
                continue
            topk_total += 1
            want = expected_topk[tuple(q)][:k]
            assert _topk_keys(response.result) == want, (
                f"top-k answer diverged from the oracle at k={k}"
            )
            if response.cached:
                topk_reused += 1
            else:
                rounds.append(response.result.tau_rounds)
        qps.append(len(requests) / elapsed)
        reuse_rates.append(topk_reused / topk_total)
        tau_rounds_mean.append(sum(rounds) / max(1, len(rounds)))
        service.close()
    engine.close()

    table = SeriesTable(
        "series",
        [f"c={c}" for c in BLENDED_CONCURRENCY],
        title=(
            f"Blended serving (small / EDR): {topk_total}/{len(requests)} "
            "top-k requests in a zipf range + top-k mix"
        ),
    )
    table.add_row("blended QPS", qps, formatter=lambda v: f"{v:.1f}")
    table.add_row(
        "top-k reuse hit rate", reuse_rates, formatter=lambda v: f"{v:.0%}"
    )
    table.add_row(
        "tau rounds (computed avg)", tau_rounds_mean, formatter=lambda v: f"{v:.1f}"
    )
    table.print()

    # The zipf mix repeats popular routes at varying k: the truncation
    # rule must convert a good share of those into cache hits.
    assert reuse_rates[-1] > 0.0
    assert all(r >= 1 for r in tau_rounds_mean)

    recorder.record(
        "serving_topk_blended",
        {
            "concurrency": BLENDED_CONCURRENCY,
            "qps": qps,
            "topk_share": BLENDED_TOPK_SHARE,
            "topk_requests": topk_total,
            "k_choices": list(BLENDED_K_CHOICES),
            "topk_reuse_hit_rate": reuse_rates,
            "tau_rounds_mean": tau_rounds_mean,
            "requests": BLENDED_NUM_REQUESTS,
            "distinct": NUM_DISTINCT,
            "shards": NUM_SHARDS,
            "scale": bench_scale,
        },
        expectation=(
            "every blended answer bit-identical to the direct engine; "
            "repeated top-k routes at smaller k served from the deeper "
            "cached ranking (nonzero reuse hit rate)"
        ),
    )


# ---------------------------------------------------------------------------
# Remote backend: latency vs offered load, reconnect-storm recovery
# ---------------------------------------------------------------------------


@contextmanager
def _worker_nodes(count):
    """``count`` standalone worker-node processes on ephemeral ports."""
    ctx = mp.get_context("fork")
    procs, addresses = [], []
    for _ in range(count):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        proc = ctx.Process(
            target=run_worker_node,
            args=("127.0.0.1", port),
            kwargs={"start_method": "fork"},
            name="repro-bench-node",
        )
        proc.start()
        procs.append(proc)
        addresses.append(f"127.0.0.1:{port}")
    try:
        yield addresses
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(10)
            if proc.is_alive():
                proc.kill()
                proc.join(5)


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_remote_backend_latency_and_recovery(recorder, bench_scale):
    """Remote worker nodes over the socket transport: per-request latency
    percentiles as offered load grows, and the inline cost of a full
    reconnect storm (every node's connection dropped on the same request
    ordinal — the disrupted query pays connect + hello + snapshot ship +
    journal replay before its retry answers)."""
    graph, dataset, costs, _ = load_workload("small", "EDR", scale=bench_scale)
    requests = sample_zipf_queries(
        dataset, REMOTE_NUM_REQUESTS, QUERY_LENGTH, distinct=NUM_DISTINCT, seed=7
    )
    direct = SubtrajectorySearch(dataset, costs)
    expected = {
        tuple(q): _match_keys(direct.query(q, tau_ratio=TAU_RATIO))
        for q in requests
    }

    with _worker_nodes(REMOTE_NODES) as addresses:
        # Latency percentiles vs offered load.
        engine = PartitionedSubtrajectorySearch(
            dataset,
            costs,
            backend="remote",
            shard_map=addresses,
            connect_timeout=30.0,
        )
        percentiles = {"p50": [], "p95": [], "p99": []}
        qps = []
        try:
            engine.query(requests[0], tau_ratio=TAU_RATIO)  # warm connections
            for concurrency in REMOTE_CONCURRENCY:
                samples = []

                def timed(q):
                    t0 = time.perf_counter()
                    result = engine.query(q, tau_ratio=TAU_RATIO)
                    samples.append(time.perf_counter() - t0)
                    return q, result

                t0 = time.perf_counter()
                with ThreadPoolExecutor(max_workers=concurrency) as clients:
                    answers = list(clients.map(timed, requests))
                elapsed = time.perf_counter() - t0
                for q, result in answers:
                    assert _match_keys(result) == expected[tuple(q)]
                percentiles["p50"].append(_percentile(samples, 0.50))
                percentiles["p95"].append(_percentile(samples, 0.95))
                percentiles["p99"].append(_percentile(samples, 0.99))
                qps.append(len(requests) / elapsed)
        finally:
            engine.close()

        # Reconnect storm: every shard's connection torn down on its
        # REMOTE_STORM_REQUEST-th query send.  The disrupted query's
        # latency is the recovery time — reconnect, snapshot, replay,
        # retry all happen inline before it returns.
        storm_plan = FaultPlan(
            rules=[
                FaultRule(shard=s, op="conn_drop", request=REMOTE_STORM_REQUEST)
                for s in range(REMOTE_NODES)
            ]
        )
        engine = PartitionedSubtrajectorySearch(
            dataset,
            costs,
            backend="remote",
            shard_map=addresses,
            fault_plan=storm_plan,
            connect_timeout=30.0,
        )
        try:
            latencies = []
            for q in requests[: REMOTE_STORM_REQUEST + 2]:
                t0 = time.perf_counter()
                result = engine.query(q, tau_ratio=TAU_RATIO)
                latencies.append(time.perf_counter() - t0)
                assert _match_keys(result) == expected[tuple(q)]
            recovery_seconds = latencies[REMOTE_STORM_REQUEST - 1]
            reconnects = engine.restarts_total()
        finally:
            engine.close()

    assert reconnects == REMOTE_NODES
    assert recovery_seconds < REMOTE_RECOVERY_CEILING

    table = SeriesTable(
        "series",
        [f"c={c}" for c in REMOTE_CONCURRENCY],
        title=(
            f"Remote backend latency (small / EDR, {REMOTE_NODES} nodes; "
            f"storm recovery {recovery_seconds * 1e3:.0f} ms over "
            f"{reconnects} reconnects)"
        ),
    )
    for name in ("p50", "p95", "p99"):
        table.add_row(
            f"{name} (ms)",
            [v * 1e3 for v in percentiles[name]],
            formatter=lambda v: f"{v:.1f}",
        )
    table.add_row("QPS", qps, formatter=lambda v: f"{v:.1f}")
    table.print()

    recorder.record(
        "remote_serving_latency",
        {
            "concurrency": REMOTE_CONCURRENCY,
            "qps": qps,
            "latency_p50_seconds": percentiles["p50"],
            "latency_p95_seconds": percentiles["p95"],
            "latency_p99_seconds": percentiles["p99"],
            "nodes": REMOTE_NODES,
            "requests": REMOTE_NUM_REQUESTS,
            "reconnect_storm": {
                "recovery_seconds": recovery_seconds,
                "reconnects": reconnects,
                "storm_request": REMOTE_STORM_REQUEST,
            },
            "scale": bench_scale,
        },
        expectation=(
            "remote answers element-identical to the direct engine at every "
            f"offered load; a full {REMOTE_NODES}-node reconnect storm "
            f"recovers inline in < {REMOTE_RECOVERY_CEILING:.0f}s with one "
            "reconnect per node"
        ),
    )
