"""Table 2 — dataset statistics.

Paper values are fixed (four real datasets); we print them next to the
synthetic analogues and check that the *relative ordering* of sizes and
trajectory lengths is preserved.
"""

from repro.bench.datasets import DATASET_PROFILES, build_dataset
from repro.bench.harness import SeriesTable


def test_table2_dataset_statistics(benchmark, recorder, bench_scale):
    table = SeriesTable(
        "dataset",
        ["paper #traj", "ours #traj", "paper avg|P|", "ours avg|P|", "|V|", "|E|"],
        title="Table 2: dataset statistics (paper vs synthetic analogue)",
    )
    payload = {}
    for name in ["beijing", "porto", "singapore", "sanfran"]:
        spec = DATASET_PROFILES[name]
        graph, ds = build_dataset(name, scale=bench_scale)
        stats = ds.statistics()
        table.add_row(
            name,
            [
                spec.paper_trajectories,
                stats["num_trajectories"],
                spec.paper_avg_length,
                stats["avg_length"],
                stats["num_vertices"],
                stats["num_edges"],
            ],
        )
        payload[name] = stats
    table.print()

    # Shape checks mirroring the paper's ordering.
    counts = {n: payload[n]["num_trajectories"] for n in payload}
    assert counts["sanfran"] > counts["porto"] > counts["beijing"] > counts["singapore"]
    lengths = {n: payload[n]["avg_length"] for n in payload}
    assert lengths["singapore"] == max(lengths.values())

    recorder.record(
        "table2_datasets",
        {"measured": payload, "scale": bench_scale},
        expectation="sanfran > porto > beijing > singapore in count; "
        "singapore has the longest trajectories",
    )

    # Timed kernel: building the smallest profile from scratch.
    build_dataset.cache_clear()
    benchmark(lambda: build_dataset("tiny", scale=1.0))
