"""Table 3 — travel-time RMSE: subtrajectory vs whole matching (SURS,
top-k).

Paper shape: subtrajectory matching stays near/below ~116% while whole
matching is several-fold worse (~220-233%) — whole trips are much longer
than the query span, so their durations overshoot wildly.  Corridor
travelers carry approach/exit segments precisely so this effect is real.
"""

import math

from repro.apps.travel_time import TravelTimeEstimator, relative_mse
from repro.bench.corridors import build_corridor_workload
from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import SURSCost

KS = [5, 10, 15, 20, 25]
SEED = 3


def test_table3_subtrajectory_vs_whole(benchmark, recorder):
    w = build_corridor_workload(
        seed=SEED, corridor_length=(20, 28), representation="edge"
    )
    queries = [w.graph.path_to_edges(c) for c in w.corridors]
    costs = SURSCost(w.graph)
    estimator = TravelTimeEstimator(
        w.dataset, engine=SubtrajectorySearch(w.dataset, costs)
    )

    rows = {"Subtrajectory": [], "Whole": []}
    for k in KS:
        rows["Subtrajectory"].append(
            relative_mse(estimator, queries, 0.1, topk=k, topk_mode="subtrajectory")
        )
        rows["Whole"].append(
            relative_mse(estimator, queries, 0.1, topk=k, topk_mode="whole")
        )

    table = SeriesTable(
        "matching",
        [f"k={k}" for k in KS],
        title="Table 3: relative MSE (%) of travel time, SURS top-k",
    )
    for name, series in rows.items():
        table.add_row(
            name, series, formatter=lambda v: "nan" if math.isnan(v) else f"{v:.0f}"
        )
    table.print()

    # Shape: whole matching several-fold worse at every k.
    for sub, whole in zip(rows["Subtrajectory"], rows["Whole"]):
        assert not math.isnan(sub) and not math.isnan(whole)
        assert whole > sub
    # Subtrajectory matching stays in the useful range at small k.
    assert rows["Subtrajectory"][0] < 150.0

    recorder.record(
        "table3_whole_vs_sub",
        {"k": KS, "relative_mse": rows},
        expectation="subtrajectory ~100%, whole several-fold worse "
        "(paper: 92-116% vs 219-233%)",
    )

    benchmark(lambda: estimator.topk_times(queries[0], 5, mode="subtrajectory"))
