"""Table 4 — query-time breakdown: MinCand / index lookup / verification.

Paper shape: verification dominates (~99%); MinCand is negligible and does
not depend on dataset size; every component grows with tau_ratio and |Q|.
"""

from _helpers import load_workload, taus_for

from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch

SETTINGS = [
    ("default (tau=0.1, |Q|=15)", 0.1, 15),
    ("tau=0.2", 0.2, 15),
    ("tau=0.3", 0.3, 15),
    ("|Q|=5", 0.1, 5),
    ("|Q|=10", 0.1, 10),
]


def test_table4_running_time_breakdown(benchmark, recorder, bench_scale):
    rows = {"MinCand": [], "Index lookup": [], "Verify": []}
    for label, ratio, qlen in SETTINGS:
        _, dataset, costs, queries = load_workload(
            "beijing", "EDR", scale=bench_scale, query_length=qlen
        )
        engine = SubtrajectorySearch(dataset, costs)
        taus = taus_for(costs, queries, ratio)
        mincand = lookup = verify = 0.0
        for q, tau in zip(queries, taus):
            r = engine.query(q, tau=tau)
            mincand += r.mincand_seconds
            lookup += r.lookup_seconds
            verify += r.verify_seconds
        n = len(queries)
        rows["MinCand"].append(mincand / n * 1e3)
        rows["Index lookup"].append(lookup / n * 1e3)
        rows["Verify"].append(verify / n * 1e3)

    table = SeriesTable(
        "stage (ms)",
        [label for label, _, _ in SETTINGS],
        title="Table 4: running time breakdown (beijing / EDR)",
    )
    for stage, series in rows.items():
        table.add_row(stage, series, formatter=lambda v: f"{v:.4f}")
    table.print()

    # Shape: verification dominates and grows with tau; MinCand tiny.
    for i in range(len(SETTINGS)):
        assert rows["Verify"][i] > rows["MinCand"][i]
        assert rows["Verify"][i] > rows["Index lookup"][i]
    assert rows["Verify"][2] > rows["Verify"][0]  # tau=0.3 > tau=0.1

    recorder.record(
        "table4_breakdown",
        {
            "settings": [label for label, _, _ in SETTINGS],
            "milliseconds": rows,
            "scale": bench_scale,
        },
        expectation="verification ~99% of query time; MinCand negligible",
    )

    _, dataset, costs, queries = load_workload("beijing", "EDR", scale=bench_scale)
    engine = SubtrajectorySearch(dataset, costs)
    benchmark(lambda: engine.query(queries[0], tau_ratio=0.1))
