"""Table 5 — verification pruning metrics: UPR, CMR, TUR (§6.4).

Paper shape: UPR and CMR grow with tau_ratio and |Q| (looser constraint,
longer verification), CMR shrinks with dataset size (more shared
prefixes); TUR = UPR x CMR stays small — far fewer StepDP calls than SW.
"""

from _helpers import load_workload, taus_for

from repro.bench.harness import SeriesTable
from repro.core.engine import SubtrajectorySearch

SETTINGS = [
    ("default", dict(ratio=0.1, qlen=15, frac=1.0)),
    ("tau=0.2", dict(ratio=0.2, qlen=15, frac=1.0)),
    ("tau=0.3", dict(ratio=0.3, qlen=15, frac=1.0)),
    ("|Q|=5", dict(ratio=0.1, qlen=5, frac=1.0)),
    ("|Q|=10", dict(ratio=0.1, qlen=10, frac=1.0)),
    ("25% data", dict(ratio=0.1, qlen=15, frac=0.25)),
    ("50% data", dict(ratio=0.1, qlen=15, frac=0.5)),
]


def test_table5_upr_cmr_tur(benchmark, recorder, bench_scale):
    rows = {"UPR": [], "CMR": [], "TUR": []}
    for label, cfg in SETTINGS:
        _, dataset, costs, queries = load_workload(
            "beijing", "EDR", scale=bench_scale * cfg["frac"], query_length=cfg["qlen"]
        )
        engine = SubtrajectorySearch(dataset, costs)
        taus = taus_for(costs, queries, cfg["ratio"])
        upr = cmr = tur = 0.0
        for q, tau in zip(queries, taus):
            stats = engine.query(q, tau=tau).verification
            upr += stats.unpruned_position_rate
            cmr += stats.cache_miss_rate
            tur += stats.total_unpruned_rate
        n = len(queries)
        rows["UPR"].append(100 * upr / n)
        rows["CMR"].append(100 * cmr / n)
        rows["TUR"].append(100 * tur / n)

    table = SeriesTable(
        "rate (%)",
        [label for label, _ in SETTINGS],
        title="Table 5: verification pruning (beijing / EDR)",
    )
    for metric, series in rows.items():
        table.add_row(metric, series, formatter=lambda v: f"{v:.2f}")
    table.print()

    labels = [label for label, _ in SETTINGS]
    d = {label: i for i, label in enumerate(labels)}
    # Shape assertions from the paper.
    assert rows["UPR"][d["tau=0.3"]] > rows["UPR"][d["default"]]
    assert rows["UPR"][d["default"]] > rows["UPR"][d["|Q|=5"]]
    assert rows["TUR"][d["default"]] < rows["UPR"][d["default"]]
    for i in range(len(SETTINGS)):
        assert 0 <= rows["TUR"][i] <= 100

    recorder.record(
        "table5_upr_cmr",
        {"settings": labels, "percent": rows, "scale": bench_scale},
        expectation="UPR/CMR grow with tau and |Q|; TUR small "
        "(StepDP calls far below SW)",
    )

    _, dataset, costs, queries = load_workload("beijing", "EDR", scale=bench_scale)
    engine = SubtrajectorySearch(dataset, costs)
    benchmark(lambda: engine.query(queries[0], tau_ratio=0.1).verification)
