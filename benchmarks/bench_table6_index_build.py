"""Table 6 — index construction time and size.

Paper shape: the OSF postings index builds fast (seconds) and its size is
linear in the dataset; q-gram indexing is a few times slower to build at a
similar size; DITA and ERP-index blow up even on tiny fractions because
they enumerate all subtrajectories.
"""

import time

from _helpers import make_cost_model

from repro.baselines import DITAIndex, ERPIndex, QGramIndex
from repro.bench.datasets import build_dataset
from repro.bench.harness import SeriesTable
from repro.core.frozen import FrozenInvertedIndex
from repro.core.invindex import InvertedIndex


def test_table6_index_construction(benchmark, recorder, bench_scale, tmp_path):
    profiles = ["beijing", "porto", "sanfran"]
    rows = {"OSF postings": [], "OSF frozen": [], "q-gram": []}
    for profile in profiles:
        graph, dataset = build_dataset(profile, scale=bench_scale)
        costs = make_cost_model("EDR", graph)
        index = InvertedIndex(dataset)
        rows["OSF postings"].append(
            (index.build_seconds, index.memory_bytes() / 1e6)
        )
        # The frozen tier: same postings, packed into the mmap-able
        # single-file container (docs/INDEX_FORMAT.md).  The file must
        # come in at <= 0.5x the dict index's in-memory bytes — the
        # acceptance bar for the packed layout.
        t0 = time.perf_counter()
        frozen = FrozenInvertedIndex.freeze(dataset)
        file_bytes = frozen.save(tmp_path / f"{profile}.reproidx")
        rows["OSF frozen"].append((time.perf_counter() - t0, file_bytes / 1e6))
        assert file_bytes <= 0.5 * index.memory_bytes()
        t0 = time.perf_counter()
        qg = QGramIndex(dataset, costs, q=3)
        rows["q-gram"].append((time.perf_counter() - t0, qg.num_grams * 120 / 1e6))

    # Enumeration indexes: tiny dataset only (the paper's 5,000-trajectory
    # fraction; ours is scaled likewise).
    graph, tiny = build_dataset("tiny", scale=1.0)
    edr = make_cost_model("EDR", graph)
    erp = make_cost_model("ERP", graph)
    t0 = time.perf_counter()
    dita = DITAIndex(tiny, edr)
    dita_row = (time.perf_counter() - t0, dita.memory_bytes() / 1e6)
    t0 = time.perf_counter()
    erpx = ERPIndex(tiny, erp)
    erp_row = (time.perf_counter() - t0, erpx.memory_bytes() / 1e6)

    table = SeriesTable(
        "index",
        profiles + ["tiny (enum)"],
        title="Table 6: build time (s) / size (MB)",
    )
    fmt = lambda v: f"{v[0]:.2f}s/{v[1]:.2f}MB"  # noqa: E731
    table.add_row("OSF postings", rows["OSF postings"] + ["-"], formatter=lambda v: fmt(v) if v != "-" else v)
    table.add_row("OSF frozen", rows["OSF frozen"] + ["-"], formatter=lambda v: fmt(v) if v != "-" else v)
    table.add_row("q-gram", rows["q-gram"] + ["-"], formatter=lambda v: fmt(v) if v != "-" else v)
    table.add_row("DITA", ["-", "-", "-", dita_row], formatter=lambda v: fmt(v) if v != "-" else v)
    table.add_row("ERP-index", ["-", "-", "-", erp_row], formatter=lambda v: fmt(v) if v != "-" else v)
    table.print()

    # Shape: millisecond-scale build times are too noisy to order reliably
    # at this dataset size (the paper's 2x gap appears at 786k+
    # trajectories), so assert the structural facts instead: both linear
    # indexes build quickly, and the enumeration indexes carry orders of
    # magnitude more entries than trajectories.
    for (t_osf, _), (t_qg, _) in zip(rows["OSF postings"], rows["q-gram"]):
        assert t_osf < 10.0 and t_qg < 10.0
    assert dita.num_subtrajectories > len(tiny) * 10
    assert erpx.num_subtrajectories == dita.num_subtrajectories

    recorder.record(
        "table6_index_build",
        {
            "profiles": profiles,
            "osf_postings": rows["OSF postings"],
            "osf_frozen": rows["OSF frozen"],
            "qgram": rows["q-gram"],
            "dita_tiny": dita_row,
            "erp_index_tiny": erp_row,
            "scale": bench_scale,
        },
        expectation="postings index fast/linear; q-gram slower; "
        "enumeration indexes explode",
    )

    graph, dataset = build_dataset("beijing", scale=bench_scale)
    benchmark(lambda: InvertedIndex(dataset))
