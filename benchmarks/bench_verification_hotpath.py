"""Verification hot path — pure-Python vs. array-native DP backends.

Not a paper figure: the paper's §5 speedups (local verification,
bidirectional tries) are algorithmic; this benchmark tracks the
constant-factor layer underneath them — the per-column DP kernel that
every shard burns its CPU in.  It measures candidate-verification
throughput (visited/computed DP columns per second), single-query
latency, and (since the PR 4 arena rework) *allocator pressure*:
garbage-collector activity and ndarray materializations per query, the
~25%-of-runtime overhead the arena-backed trie columns exist to remove.

Backends compared: ``dp_backend="python"`` (the historical pure-Python
loop, kept for ablation) against ``dp_backend="numpy"`` (anchor-grouped
batch verification whose ``step_dp_batch`` calls write straight into
arena rows, substitution rows served from the engine's LRU-cached
``SubstitutionMatrix``), across dataset scales on the paper-style
workload: the long-trajectory ``singapore`` profile with |Q| = 50 under
NetEDR (§2.2.3, the paper's headline setting) and the coordinate-based
EDR — plus a short-query |Q| = 10 regime, the one setting where the
python loop can still win and the reason ``dp_backend="auto"`` exists
(each cell records what auto would pick).

Since PR 5 the numpy backend is measured in two serving regimes:

- **cold** (``trie_cache_size=0``): every query builds its tries from
  scratch — the historical numbers, comparable across baselines;
- **warm-repeat** (the default TrieCache enabled, warmed by the
  measurement loop's own repeats): the engine serves the repeated query
  from cached trie columns, so verification is the level-synchronous
  warm walk plus combine — the serving layer's zipf-repeat regime.  The
  ``warm_speedup`` column (cold/warm verification time) is floor-gated
  in CI at ``WARM_SPEEDUP_FLOOR`` on the network-aware cells, and warm
  answers are asserted bit-identical to both cold backends.

The record lands in ``results/BENCH_verification.json`` — the repo's
committed perf baseline (a copy lives at the repo root) — and the inline
assertions are the CI regression gate:

- both backends must return *identical* matches (keys and distances —
  the kernels are bit-identical by construction, see
  ``repro.distance.wed``);
- on the network-aware |Q|=50 workload the numpy backend must be >=
  ``SPEEDUP_FLOOR``x faster at verification than the python backend even
  on the CI smoke workload (``REPRO_BENCH_SCALE=0.25``), guarding
  against silently de-vectorizing the kernel;
- on the same cells the arena layout must keep ndarray materializations
  at least ``ALLOC_REDUCTION_FLOOR``x below the pre-arena
  one-ndarray-per-computed-column behaviour (``alloc_reduction`` =
  would-be allocations / actual allocations), guarding against silently
  re-introducing per-column churn.
"""

import gc
import time
import tracemalloc

from _helpers import load_workload

from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import DEFAULT_TRIE_CACHE, SubtrajectorySearch
from repro.core.verification import choose_dp_backend

#: (profile, similarity function, query length); the first entry is the
#: headline (floor-gated) workload, the |Q|=10 entry is the short-query
#: regime that motivates dp_backend="auto".
WORKLOADS = [
    ("singapore", "NetEDR", 50),
    ("singapore", "EDR", 50),
    ("singapore", "EDR", 10),
]
#: relative dataset sizes, multiplied by REPRO_BENCH_SCALE
REL_SCALES = [0.5, 1.0]
NUM_QUERIES = 3
TAU_RATIO = 0.4
REPEATS = 3
BACKENDS = ("python", "numpy")
#: third measured configuration: the numpy backend with the cross-query
#: TrieCache enabled, timed on repeats (the zipf-serving regime).
WARM = "numpy_warm"
#: CI gate: numpy must beat python by at least this factor on the
#: network-aware |Q|=50 workload's verification stage, at every scale.
SPEEDUP_FLOOR = 1.5
#: CI gate: the arena must materialize >= this many times fewer ndarrays
#: per query than the pre-arena per-column layout on the same cells.
ALLOC_REDUCTION_FLOOR = 5.0
#: CI gate: warm-repeat verification must beat cold numpy verification by
#: at least this factor on the network-aware cells (the ISSUE 5 headline:
#: repeated queries should cost little more than the frontier walk).
WARM_SPEEDUP_FLOOR = 2.0


def _gc_totals():
    """(collections, objects collected) summed over all generations."""
    stats = gc.get_stats()
    return (
        sum(s["collections"] for s in stats),
        sum(s["collected"] for s in stats),
    )


def _run_backend(dataset, costs, queries, backend, *, trie_cache_size=0):
    """Answers + verification timings/counters for one configuration.

    Per-query times are the *minimum* over ``REPEATS`` runs — the
    standard noise-resistant aggregate for a committed baseline (the
    machine's background load can only slow a run down, never speed it
    up), applied identically to every configuration.  GC activity is
    measured as the delta over the whole timed loop (normalized per
    query run); tracemalloc peak and ndarray counts come from separate,
    untimed passes so the instrumentation never pollutes the timings.

    ``trie_cache_size=0`` (the cold configurations) keeps the historical
    per-query-tries semantics so speedup numbers stay comparable across
    committed baselines; the warm configuration enables the TrieCache,
    and the warm-up pass doubles as its warmer — the timed loop then
    measures steady warm-repeat serving.
    """
    engine = SubtrajectorySearch(
        dataset, costs, dp_backend=backend, trie_cache_size=trie_cache_size
    )
    answers = []
    visited = computed = candidates = allocations = 0
    # Warm-up pass collects the answers for the exactness gate (and warms
    # the cost model's distance caches plus the engine's substitution-
    # matrix LRU, so both backends measure steady serving state).
    for q in queries:
        result = engine.query(q, tau_ratio=TAU_RATIO)
        answers.append(
            [(m.trajectory_id, m.start, m.end, m.distance) for m in result.matches]
        )
        visited += result.verification.visited_columns
        computed += result.verification.computed_columns
        candidates += result.verification.candidates
    # Steady-state allocation accounting (post-warm-up: the LRU serves
    # the SubstitutionMatrix, as it would under repeated traffic).
    for q in queries:
        allocations += engine.query(q, tau_ratio=TAU_RATIO).dp_array_allocations
    best_verify = [float("inf")] * len(queries)
    best_query = [float("inf")] * len(queries)
    gc_before = _gc_totals()
    for _ in range(REPEATS):
        for i, q in enumerate(queries):
            t0 = time.perf_counter()
            result = engine.query(q, tau_ratio=TAU_RATIO)
            elapsed = time.perf_counter() - t0
            best_verify[i] = min(best_verify[i], result.verify_seconds)
            best_query[i] = min(best_query[i], elapsed)
    gc_after = _gc_totals()
    timed_runs = REPEATS * len(queries)
    # Peak heap of one steady-state query (untimed: tracemalloc hooks
    # every allocation and would skew the latency numbers).
    tracemalloc.start()
    engine.query(queries[0], tau_ratio=TAU_RATIO)
    peak_bytes = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    verify_seconds = sum(best_verify)
    n = len(queries)
    return answers, {
        "verify_seconds_per_query": verify_seconds / n,
        "query_seconds_per_query": sum(best_query) / n,
        "visited_columns_per_sec": visited / verify_seconds if verify_seconds else 0.0,
        "computed_columns_per_sec": (
            computed / verify_seconds if verify_seconds else 0.0
        ),
        "candidates_per_query": candidates / n,
        "computed_columns_per_query": computed / n,
        "dp_array_allocs_per_query": allocations / n,
        "gc_collections_per_query": (gc_after[0] - gc_before[0]) / timed_runs,
        "gc_collected_per_query": (gc_after[1] - gc_before[1]) / timed_runs,
        "tracemalloc_peak_mb": peak_bytes / 1e6,
    }


def test_verification_hotpath(recorder, bench_scale):
    cells = []
    headline = None
    for profile, function, query_length in WORKLOADS:
        for rel in REL_SCALES:
            scale = bench_scale * rel
            _, dataset, costs, queries = load_workload(
                profile,
                function,
                scale=scale,
                query_length=query_length,
                num_queries=NUM_QUERIES,
            )
            measured = {}
            expected = None
            for backend in BACKENDS:
                answers, metrics = _run_backend(dataset, costs, queries, backend)
                measured[backend] = metrics
                # Exactness gate: identical keys AND identical distances —
                # the array-native kernel is bit-identical, not merely close.
                if expected is None:
                    expected = answers
                else:
                    assert answers == expected, (
                        f"{backend} backend changed answers on "
                        f"{profile}/{function}"
                    )
            # Warm-repeat regime: the cross-query TrieCache serves the
            # repeats; answers must stay bit-identical to both cold runs.
            answers, measured[WARM] = _run_backend(
                dataset, costs, queries, "numpy",
                trie_cache_size=DEFAULT_TRIE_CACHE,
            )
            assert answers == expected, (
                f"warm trie cache changed answers on {profile}/{function}"
            )
            numpy_allocs = measured["numpy"]["dp_array_allocs_per_query"]
            computed_per_query = measured["numpy"]["computed_columns_per_query"]
            cell = {
                "profile": profile,
                "function": function,
                "query_length": query_length,
                "scale": scale,
                "trajectories": len(dataset),
                "auto_backend": choose_dp_backend(query_length, costs),
                "verify_speedup": (
                    measured["python"]["verify_seconds_per_query"]
                    / measured["numpy"]["verify_seconds_per_query"]
                ),
                "query_speedup": (
                    measured["python"]["query_seconds_per_query"]
                    / measured["numpy"]["query_seconds_per_query"]
                ),
                # Warm-repeat verification vs cold numpy verification: the
                # cross-query TrieCache's multiplicative win on repeats.
                "warm_speedup": (
                    measured["numpy"]["verify_seconds_per_query"]
                    / measured[WARM]["verify_seconds_per_query"]
                ),
                # Pre-arena, the numpy backend materialized >= 1 ndarray per
                # computed column on top of the same per-round temporaries;
                # the arena's ratio of that cost to its own is the
                # allocation-reduction gate.
                "alloc_reduction": (
                    (computed_per_query + numpy_allocs) / numpy_allocs
                    if numpy_allocs
                    else float("inf")
                ),
                **{config: measured[config] for config in (*BACKENDS, WARM)},
            }
            cells.append(cell)
            if function == WORKLOADS[0][1] and (
                headline is None
                or cell["verify_speedup"] > headline["verify_speedup"]
            ):
                headline = cell  # best network-aware cell (full table recorded)

    table = SeriesTable(
        "series",
        [
            f"{c['function']}@{c['scale']:g}/|Q|={c['query_length']} "
            f"(|T|={c['trajectories']})"
            for c in cells
        ],
        title=(
            f"Verification hot path (singapore, tau_ratio={TAU_RATIO}): "
            "python vs array-native (arena) DP"
        ),
    )
    for config in (*BACKENDS, WARM):
        table.add_row(
            f"{config} verify/query",
            [c[config]["verify_seconds_per_query"] for c in cells],
            formatter=format_seconds,
        )
    table.add_row(
        "numpy columns/sec",
        [c["numpy"]["visited_columns_per_sec"] for c in cells],
        formatter=lambda v: f"{v:,.0f}",
    )
    table.add_row(
        "verify speedup",
        [c["verify_speedup"] for c in cells],
        formatter=lambda v: f"{v:.2f}x",
    )
    table.add_row(
        "query speedup",
        [c["query_speedup"] for c in cells],
        formatter=lambda v: f"{v:.2f}x",
    )
    table.add_row(
        "warm-repeat speedup",
        [c["warm_speedup"] for c in cells],
        formatter=lambda v: f"{v:.2f}x",
    )
    table.add_row(
        "ndarray alloc reduction",
        [c["alloc_reduction"] for c in cells],
        formatter=lambda v: f"{v:.1f}x",
    )
    table.add_row(
        "numpy GC collections/query",
        [c["numpy"]["gc_collections_per_query"] for c in cells],
        formatter=lambda v: f"{v:.2f}",
    )
    table.add_row(
        "auto picks",
        [1.0 if c["auto_backend"] == "numpy" else 0.0 for c in cells],
        formatter=lambda v: "numpy" if v else "python",
    )
    table.print()

    recorder.record(
        "BENCH_verification",
        {
            "backends": list(BACKENDS),
            "warm_config": WARM,
            "cells": cells,
            "headline_workload": f"{headline['profile']}/{headline['function']}",
            "headline_scale": headline["scale"],
            "headline_verify_speedup": headline["verify_speedup"],
            "headline_query_speedup": headline["query_speedup"],
            "headline_alloc_reduction": headline["alloc_reduction"],
            "headline_warm_speedup": headline["warm_speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
            "alloc_reduction_floor": ALLOC_REDUCTION_FLOOR,
            "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
            "tau_ratio": TAU_RATIO,
            "num_queries": NUM_QUERIES,
            "repeats": REPEATS,
            "bench_scale": bench_scale,
        },
        expectation=(
            "array-native arena backend >= 4x python verification speedup on "
            "the network-aware (NetEDR) |Q|=50 workload (headline cell); >= "
            f"{SPEEDUP_FLOOR}x and >= {ALLOC_REDUCTION_FLOOR}x fewer ndarray "
            "materializations than the per-column layout enforced on every "
            "NetEDR cell (CI smoke included); warm-repeat serving (the "
            f"cross-query TrieCache) >= {WARM_SPEEDUP_FLOOR}x faster at "
            "verification than cold numpy on the same cells; answers "
            "bit-identical across backends and cache temperatures "
            "everywhere; |Q|=10 EDR documents the short-query regime "
            "dp_backend='auto' routes to python"
        ),
    )

    # The CI gates: de-vectorizing the kernel, re-introducing per-column
    # Python work, re-introducing per-column ndarray churn, or breaking
    # the warm-repeat walk on the numpy path fails the build.
    for cell in cells:
        if cell["function"] != WORKLOADS[0][1]:
            continue
        assert cell["verify_speedup"] >= SPEEDUP_FLOOR, (
            f"array-native backend only {cell['verify_speedup']:.2f}x faster "
            f"than python at verification on {cell['profile']}/"
            f"{cell['function']} scale {cell['scale']:g} "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
        assert cell["alloc_reduction"] >= ALLOC_REDUCTION_FLOOR, (
            f"arena columns only cut ndarray materializations "
            f"{cell['alloc_reduction']:.1f}x vs the per-column layout on "
            f"{cell['profile']}/{cell['function']} scale {cell['scale']:g} "
            f"(floor {ALLOC_REDUCTION_FLOOR}x)"
        )
        assert cell["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
            f"warm trie cache only {cell['warm_speedup']:.2f}x faster than "
            f"cold verification on {cell['profile']}/{cell['function']} "
            f"scale {cell['scale']:g} (floor {WARM_SPEEDUP_FLOOR}x)"
        )
