"""Verification hot path — pure-Python vs. array-native DP backends.

Not a paper figure: the paper's §5 speedups (local verification,
bidirectional tries) are algorithmic; this benchmark tracks the
constant-factor layer underneath them — the per-column DP kernel that
every shard burns its CPU in.  It measures candidate-verification
throughput (visited/computed DP columns per second) and single-query
latency for ``dp_backend="python"`` (the historical default, kept for
ablation) against ``dp_backend="numpy"`` (the array-native default:
anchor-grouped batch verification over ``step_dp_batch``, per-query
substitution matrices served as cached contiguous row slices, int32
symbol arrays sliced into zero-copy directional views), across dataset
scales on the paper-style workload: the long-trajectory ``singapore``
profile with |Q| = 50 (the paper defaults to |Q|=60 and sweeps up to
100+ in Fig. 7), under a network-aware cost model (NetEDR — §2.2.3, the
paper's headline setting) and the coordinate-based EDR.

The record lands in ``results/BENCH_verification.json`` — the repo's
committed perf baseline (a copy lives at the repo root) — and the inline
assertions are the CI regression gate:

- both backends must return *identical* matches (keys and distances —
  the kernels are bit-identical by construction, see
  ``repro.distance.wed``);
- on the network-aware workload the numpy backend must be >=
  ``SPEEDUP_FLOOR``x faster at verification than the python backend even
  on the CI smoke workload (``REPRO_BENCH_SCALE=0.25``), guarding
  against silently de-vectorizing the kernel.  The committed full-scale
  baseline shows >= 3x.

(Short queries over cheap cost models — e.g. EDR with |Q| <= 15 — are
the one regime where the python loop can still win; the EDR cells track
that boundary honestly rather than hiding it.)
"""

import time

from _helpers import load_workload

from repro.bench.harness import SeriesTable, format_seconds
from repro.core.engine import SubtrajectorySearch

#: (profile, similarity function, query length); the first entry is the
#: headline (floor-gated) workload.
WORKLOADS = [
    ("singapore", "NetEDR", 50),
    ("singapore", "EDR", 50),
]
#: relative dataset sizes, multiplied by REPRO_BENCH_SCALE
REL_SCALES = [0.5, 1.0]
NUM_QUERIES = 3
TAU_RATIO = 0.4
REPEATS = 3
BACKENDS = ("python", "numpy")
#: CI gate: numpy must beat python by at least this factor on the
#: network-aware workload's verification stage, at every scale.
SPEEDUP_FLOOR = 1.5


def _run_backend(dataset, costs, queries, backend):
    """Answers + verification timings/counters for one backend.

    Per-query times are the *minimum* over ``REPEATS`` runs — the
    standard noise-resistant aggregate for a committed baseline (the
    machine's background load can only slow a run down, never speed it
    up), applied identically to both backends.
    """
    engine = SubtrajectorySearch(dataset, costs, dp_backend=backend)
    answers = []
    visited = computed = candidates = 0
    # Warm-up pass collects the answers for the exactness gate (and warms
    # the cost model's distance caches so both backends measure steady
    # state).
    for q in queries:
        result = engine.query(q, tau_ratio=TAU_RATIO)
        answers.append(
            [(m.trajectory_id, m.start, m.end, m.distance) for m in result.matches]
        )
        visited += result.verification.visited_columns
        computed += result.verification.computed_columns
        candidates += result.verification.candidates
    best_verify = [float("inf")] * len(queries)
    best_query = [float("inf")] * len(queries)
    for _ in range(REPEATS):
        for i, q in enumerate(queries):
            t0 = time.perf_counter()
            result = engine.query(q, tau_ratio=TAU_RATIO)
            elapsed = time.perf_counter() - t0
            best_verify[i] = min(best_verify[i], result.verify_seconds)
            best_query[i] = min(best_query[i], elapsed)
    verify_seconds = sum(best_verify)
    n = len(queries)
    return answers, {
        "verify_seconds_per_query": verify_seconds / n,
        "query_seconds_per_query": sum(best_query) / n,
        "visited_columns_per_sec": visited / verify_seconds if verify_seconds else 0.0,
        "computed_columns_per_sec": (
            computed / verify_seconds if verify_seconds else 0.0
        ),
        "candidates_per_query": candidates / n,
    }


def test_verification_hotpath(recorder, bench_scale):
    cells = []
    headline = None
    for profile, function, query_length in WORKLOADS:
        for rel in REL_SCALES:
            scale = bench_scale * rel
            _, dataset, costs, queries = load_workload(
                profile,
                function,
                scale=scale,
                query_length=query_length,
                num_queries=NUM_QUERIES,
            )
            measured = {}
            expected = None
            for backend in BACKENDS:
                answers, metrics = _run_backend(dataset, costs, queries, backend)
                measured[backend] = metrics
                # Exactness gate: identical keys AND identical distances —
                # the array-native kernel is bit-identical, not merely close.
                if expected is None:
                    expected = answers
                else:
                    assert answers == expected, (
                        f"{backend} backend changed answers on "
                        f"{profile}/{function}"
                    )
            cell = {
                "profile": profile,
                "function": function,
                "query_length": query_length,
                "scale": scale,
                "trajectories": len(dataset),
                "verify_speedup": (
                    measured["python"]["verify_seconds_per_query"]
                    / measured["numpy"]["verify_seconds_per_query"]
                ),
                "query_speedup": (
                    measured["python"]["query_seconds_per_query"]
                    / measured["numpy"]["query_seconds_per_query"]
                ),
                **{backend: measured[backend] for backend in BACKENDS},
            }
            cells.append(cell)
            if function == WORKLOADS[0][1] and (
                headline is None
                or cell["verify_speedup"] > headline["verify_speedup"]
            ):
                headline = cell  # best network-aware cell (full table recorded)

    table = SeriesTable(
        "series",
        [f"{c['function']}@{c['scale']:g} (|T|={c['trajectories']})" for c in cells],
        title=(
            f"Verification hot path (singapore, |Q|={WORKLOADS[0][2]}, "
            f"tau_ratio={TAU_RATIO}): python vs array-native DP"
        ),
    )
    for backend in BACKENDS:
        table.add_row(
            f"{backend} verify/query",
            [c[backend]["verify_seconds_per_query"] for c in cells],
            formatter=format_seconds,
        )
    table.add_row(
        "numpy columns/sec",
        [c["numpy"]["visited_columns_per_sec"] for c in cells],
        formatter=lambda v: f"{v:,.0f}",
    )
    table.add_row(
        "verify speedup",
        [c["verify_speedup"] for c in cells],
        formatter=lambda v: f"{v:.2f}x",
    )
    table.add_row(
        "query speedup",
        [c["query_speedup"] for c in cells],
        formatter=lambda v: f"{v:.2f}x",
    )
    table.print()

    recorder.record(
        "BENCH_verification",
        {
            "backends": list(BACKENDS),
            "cells": cells,
            "headline_workload": f"{headline['profile']}/{headline['function']}",
            "headline_scale": headline["scale"],
            "headline_verify_speedup": headline["verify_speedup"],
            "headline_query_speedup": headline["query_speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
            "tau_ratio": TAU_RATIO,
            "num_queries": NUM_QUERIES,
            "repeats": REPEATS,
            "bench_scale": bench_scale,
        },
        expectation=(
            "array-native numpy backend >= 3x python verification speedup on "
            "the network-aware (NetEDR) workload (headline cell); >= "
            f"{SPEEDUP_FLOOR}x enforced on every NetEDR cell (CI smoke "
            "included); answers bit-identical across backends everywhere"
        ),
    )

    # The CI gate: de-vectorizing the kernel (or re-introducing per-column
    # Python work on the numpy path) fails the build.
    for cell in cells:
        if cell["function"] != WORKLOADS[0][1]:
            continue
        assert cell["verify_speedup"] >= SPEEDUP_FLOOR, (
            f"array-native backend only {cell['verify_speedup']:.2f}x faster "
            f"than python at verification on {cell['profile']}/"
            f"{cell['function']} scale {cell['scale']:g} "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
