"""Shared benchmark configuration.

Pure-Python timings cannot match the paper's C++ numbers; the benchmarks
reproduce *relative* behaviour on scaled-down synthetic datasets.  Scale is
controlled by environment variables:

- ``REPRO_BENCH_FULL=1`` — run the complete grid (all four dataset
  profiles, all six similarity functions).  Default: a representative
  subset so the whole suite finishes in minutes.
- ``REPRO_BENCH_SCALE=<float>`` — multiply dataset sizes (default 0.25
  quick / 1.0 full).

Each benchmark prints a paper-vs-measured table and writes a JSON record
under ``results/``.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.harness import ResultRecorder

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0" if FULL else "0.25"))


@pytest.fixture(scope="session")
def recorder() -> ResultRecorder:
    return ResultRecorder()


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def full_grid() -> bool:
    return FULL
