"""Alternative route suggestion with naturalness scoring (§6.2.2).

A driver plans a route Q from u to v; the database is searched for
subtrajectories from u to v similar to Q.  Each suggestion is scored by
*naturalness* — the fraction of hops moving strictly closer to the
destination — so inefficient detours rank low.

Run:  python examples/alternative_routes.py
"""

from repro import LevenshteinCost, SubtrajectorySearch, TrajectoryDataset, TripGenerator, grid_city
from repro.apps.route_suggestion import (
    distances_to_target,
    route_naturalness,
    suggest_routes,
)
from repro.network.shortest_path import shortest_path


def main() -> None:
    graph = grid_city(12, 12, seed=21)
    trips = TripGenerator(graph, seed=22, detour_prob=0.5).generate(
        800, min_length=8, max_length=60
    )
    dataset = TrajectoryDataset(graph, "vertex")
    dataset.extend(trips)
    engine = SubtrajectorySearch(dataset, LevenshteinCost())

    # Plan: the shortest path between the endpoints of a well-traveled
    # corridor (a fragment of a stored trip, so alternatives exist).
    corridor = dataset[4].path[2:14]
    origin, destination = corridor[0], corridor[-1]
    plan = shortest_path(graph, origin, destination)
    assert plan is not None
    print(f"planned route u={origin} -> v={destination}: {len(plan)} vertices")
    print(f"plan naturalness: {route_naturalness(graph, plan):.3f}")

    dist_to_dest = distances_to_target(graph, destination)
    for tau_ratio in (0.1, 0.2, 0.3):
        routes = suggest_routes(engine, dataset, plan, tau_ratio=tau_ratio)
        if not routes:
            print(f"tau_ratio={tau_ratio:.1f}: no alternatives found")
            continue
        scores = [
            route_naturalness(graph, path, dist_to_dest=dist_to_dest)
            for path, _ in routes
        ]
        print(
            f"tau_ratio={tau_ratio:.1f}: {len(routes)} alternatives, "
            f"naturalness avg={sum(scores) / len(scores):.3f} "
            f"min={min(scores):.3f} max={max(scores):.3f}"
        )
        best_path, best_match = routes[0]
        print(
            f"   closest alternative: trajectory {best_match.trajectory_id}, "
            f"{len(best_path)} vertices, wed={best_match.distance:.1f}"
        )


if __name__ == "__main__":
    main()
