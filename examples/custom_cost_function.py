"""Defining your own weighted edit distance.

WED is a *class* of similarity functions: any user-defined ins/del/sub
costs satisfying the §2.2.1 assumptions work with the engine unchanged.
This example builds a "highway-aware" distance for edge strings: swapping
between minor roads is cheap, but missing a highway segment is expensive
(weights scaled by road class).

Run:  python examples/custom_cost_function.py
"""

from typing import List

from repro import SubtrajectorySearch, TrajectoryDataset, TripGenerator, grid_city
from repro.distance.costs import CostModel, validate_cost_model


class HighwayAwareCost(CostModel):
    """SURS-style costs with a per-edge importance multiplier.

    Long edges (here: the top quartile by weight) stand in for highways and
    cost triple when unshared.  ``B(q) = {q}`` and ``c(q) = del(q)`` exactly
    as for SURS, so subsequence filtering applies unchanged.
    """

    representation = "edge"
    name = "HighwayWED"

    def __init__(self, graph) -> None:
        weights = [e.weight for e in graph.edges]
        cutoff = sorted(weights)[int(len(weights) * 0.75)]
        self._cost: List[float] = [
            w * (3.0 if w >= cutoff else 1.0) for w in weights
        ]

    def sub(self, a: int, b: int) -> float:
        return 0.0 if a == b else self._cost[a] + self._cost[b]

    def ins(self, a: int) -> float:
        return self._cost[a]

    def filter_cost(self, q: int) -> float:
        return self._cost[q]


def main() -> None:
    graph = grid_city(10, 10, seed=31)
    trips = TripGenerator(graph, seed=32).generate(300, min_length=8, max_length=50)
    dataset = TrajectoryDataset(graph, "edge")
    dataset.extend(trips)

    costs = HighwayAwareCost(graph)
    # Spot-check the WED assumptions before trusting query results.
    validate_cost_model(costs, list(range(0, graph.num_edges, 37)))
    print("custom cost model passes the WED assumption checks")

    engine = SubtrajectorySearch(dataset, costs)
    query = list(dataset.symbols(11))[:10]
    result = engine.query(query, tau_ratio=0.15)
    print(
        f"query of {len(query)} edges: tau={result.tau:.1f}, "
        f"{result.num_candidates} candidates, {len(result.matches)} matches"
    )
    for m in result.matches[:5]:
        print(
            f"   trajectory {m.trajectory_id} [{m.start}..{m.end}] "
            f"weighted-unshared={m.distance:.1f}"
        )


if __name__ == "__main__":
    main()
