"""Serving a frozen mmap-able index: O(1) worker open, one shared copy.

The default dict index is rebuilt privately inside every shard worker
process — memory and startup both scale with worker count.  This example
freezes the inverted index to array-packed files
(``docs/INDEX_FORMAT.md``), serves them with two worker processes that
memory-map their shard files, and reads the sharing evidence off
``/metrics``: the packed file is a fraction of the dict index's
in-memory footprint, both workers report ``mmap``-backed indexes, and
query answers stay bit-identical to the dict backend.

Run:  python examples/frozen_index.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import (
    LevenshteinCost,
    PartitionedSubtrajectorySearch,
    QueryService,
    SubtrajectorySearch,
    TrajectoryDataset,
    TripGenerator,
    grid_city,
)
from repro.core.frozen import (
    FrozenInvertedIndex,
    inspect_index,
    round_robin_shards,
    shard_index_path,
)
from repro.core.invindex import InvertedIndex
from repro.service.http import ServiceServer

NUM_SHARDS = 2


def build_shard_files(dataset: TrajectoryDataset, stem: str) -> list[str]:
    """Freeze one index file per round-robin shard — what
    ``repro index build --shards 2`` does."""
    files = []
    for i, shard in enumerate(round_robin_shards(dataset, NUM_SHARDS)):
        frozen = FrozenInvertedIndex.freeze(
            shard, shard=(i, NUM_SHARDS), global_trajectories=len(dataset)
        )
        path = shard_index_path(stem, i, NUM_SHARDS)
        frozen.save(path)
        files.append(path)
    return files


def metric_values(metrics_text: str, family: str) -> dict:
    """Parse one gauge family out of Prometheus text exposition."""
    out = {}
    for line in metrics_text.splitlines():
        if line.startswith(family + "{"):
            labels, value = line[len(family):].rsplit(" ", 1)
            out[labels] = float(value)
    return out


def main() -> None:
    graph = grid_city(12, 12, seed=31)
    dataset = TrajectoryDataset(graph, "vertex")
    dataset.extend(
        TripGenerator(graph, seed=32).generate(400, min_length=8, max_length=40)
    )
    costs = LevenshteinCost()
    query = dataset[0].path[:8]

    # 1. Freeze the index to disk (offline, once per dataset build).
    stem = str(Path(tempfile.mkdtemp()) / "example.reproidx")
    files = build_shard_files(dataset, stem)
    dict_bytes = InvertedIndex(dataset).memory_bytes()
    file_bytes = sum(Path(f).stat().st_size for f in files)
    print(f"dict index in-memory: {dict_bytes:,} bytes")
    print(
        f"frozen files on disk: {file_bytes:,} bytes "
        f"({file_bytes / dict_bytes:.2f}x) across {len(files)} shards"
    )
    print(f"shard 0 header: trajectories="
          f"{inspect_index(files[0])['num_trajectories']} "
          f"shard={inspect_index(files[0])['shard']}")

    # 2. Serve it: two worker processes, each mmap-ing its shard file.
    engine = PartitionedSubtrajectorySearch(
        dataset,
        costs,
        num_shards=NUM_SHARDS,
        backend="processes",
        index_backend="frozen",
        index_path=stem,
    )
    reference = SubtrajectorySearch(dataset, costs).query(query, tau=2.0)
    with engine, QueryService(engine, max_workers=4) as service:
        with ServiceServer(service, host="127.0.0.1", port=0).start() as server:
            url = server.url
            body = json.dumps({"path": list(query), "tau": 2.0}).encode()
            req = urllib.request.Request(
                url + "/query", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=10) as resp:
                answer = json.loads(resp.read())
            assert len(answer["matches"]) == len(reference.matches)
            print(
                f"served {len(answer['matches'])} matches over HTTP — "
                "identical to the dict-backend engine"
            )

            # 3. The sharing evidence, straight off the scrape endpoint.
            with urllib.request.urlopen(url + "/metrics", timeout=10) as resp:
                metrics = resp.read().decode()
        mmap_flags = metric_values(metrics, "repro_index_mmap")
        per_shard_file = metric_values(metrics, "repro_index_file_bytes")
        resident = metric_values(metrics, "repro_index_resident_bytes")
        print(f"repro_index_mmap per shard: {mmap_flags}")
        print(f"repro_index_file_bytes per shard: {per_shard_file}")
        if resident:
            print(f"repro_index_resident_bytes per shard: {resident}")
        assert all(v == 1.0 for v in mmap_flags.values()), "workers must mmap"
        print(
            "both workers map the same files read-only: the OS page cache "
            "keeps ONE physical copy of each shard no matter how many "
            f"workers open it — vs {NUM_SHARDS}+ private dict copies "
            "with the default backend"
        )


if __name__ == "__main__":
    main()
