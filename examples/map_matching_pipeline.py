"""End-to-end preprocessing pipeline: raw GPS -> map matching -> search.

The paper's Beijing/Porto datasets are raw GPS tracks converted to
network-constrained paths by HMM map matching [34].  This example runs the
whole pipeline on synthetic data: ground-truth trips are noised into fake
GPS tracks, map-matched back onto the network, indexed, and queried.

Run:  python examples/map_matching_pipeline.py
"""

from repro import (
    EDRCost,
    SubtrajectorySearch,
    TrajectoryDataset,
    TripGenerator,
    grid_city,
)
from repro.exceptions import MapMatchError
from repro.trajectory.mapmatch import HMMMapMatcher
from repro.trajectory.noise import gps_noise, resample


def main() -> None:
    graph = grid_city(10, 10, spacing=100.0, seed=51)
    generator = TripGenerator(graph, seed=52, detour_prob=0.0)
    ground_truth = generator.generate(60, min_length=8, max_length=40)

    # Simulate the sensor: 10 m Gaussian noise, every 2nd fix kept.
    matcher = HMMMapMatcher(graph, sigma=12.0, beta=60.0, candidate_radius=60.0)
    dataset = TrajectoryDataset(graph, "vertex")
    recovered = dropped = 0
    overlaps = []
    for i, trip in enumerate(ground_truth):
        observations = resample(gps_noise(graph, trip, sigma=10.0, seed=i), 2)
        try:
            matched = matcher.match(observations)
        except MapMatchError:
            dropped += 1
            continue
        dataset.add(matched)
        recovered += 1
        truth, got = set(trip.path), set(matched.path)
        overlaps.append(len(truth & got) / len(truth | got))

    print(f"map matching: {recovered} tracks recovered, {dropped} dropped")
    print(f"mean Jaccard overlap with ground truth: "
          f"{sum(overlaps) / len(overlaps):.3f}")

    # The matched dataset is a regular trajectory database.
    engine = SubtrajectorySearch(dataset, EDRCost(graph, epsilon=60.0))
    query = list(dataset.symbols(0))[:6]
    result = engine.query(query, tau_ratio=0.25)
    print(
        f"query over matched data: {len(result.matches)} matches "
        f"from {result.num_candidates} candidates"
    )


if __name__ == "__main__":
    main()
