"""Quickstart: index a small trajectory database and run similarity queries.

Builds a synthetic city, generates trips, and searches for subtrajectories
similar to a query path under three different WED instances — the same
engine, no algorithm changes (the paper's headline property).

Run:  python examples/quickstart.py
"""

from repro import (
    EDRCost,
    LevenshteinCost,
    SURSCost,
    SubtrajectorySearch,
    TrajectoryDataset,
    TripGenerator,
    grid_city,
)


def main() -> None:
    # 1. A road network: a 12x12 jittered grid with one-way streets.
    graph = grid_city(12, 12, seed=7)
    print(f"road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. A trajectory database of 200 synthetic trips.
    trips = TripGenerator(graph, seed=13).generate(200, min_length=8, max_length=60)
    dataset = TrajectoryDataset(graph, "vertex")
    dataset.extend(trips)
    print(f"dataset: {dataset.statistics()}")

    # 3. A query: a fragment of one stored trip (we should find at least it).
    query = list(dataset.symbols(17))[2:10]
    print(f"query path ({len(query)} vertices): {query}")

    # 4. Search under Levenshtein distance.
    engine = SubtrajectorySearch(dataset, LevenshteinCost())
    result = engine.query(query, tau_ratio=0.2)
    print(
        f"\n[Lev]  tau={result.tau:.2f}  candidates={result.num_candidates}  "
        f"matches={len(result.matches)}  time={result.total_seconds * 1e3:.2f}ms"
    )
    for match in result.matches[:5]:
        print(f"   trajectory {match.trajectory_id} "
              f"[{match.start}..{match.end}] wed={match.distance:.2f}")

    # 5. Same database, different similarity function: EDR with a 100 m
    #    matching threshold.  No re-indexing, no algorithm changes.
    edr_engine = SubtrajectorySearch(dataset, EDRCost(graph, epsilon=100.0))
    edr_result = edr_engine.query(query, tau_ratio=0.2)
    print(
        f"[EDR]  tau={edr_result.tau:.2f}  candidates={edr_result.num_candidates}  "
        f"matches={len(edr_result.matches)}"
    )

    # 6. Network-aware similarity: SURS totals the road length NOT shared
    #    with the query (edge representation).
    edge_dataset = TrajectoryDataset(graph, "edge")
    edge_dataset.extend(trips)
    edge_query = graph.path_to_edges(query)
    surs_engine = SubtrajectorySearch(edge_dataset, SURSCost(graph))
    surs_result = surs_engine.query(edge_query, tau_ratio=0.2)
    print(
        f"[SURS] tau={surs_result.tau:.1f}m unshared road allowed  "
        f"matches={len(surs_result.matches)}"
    )

    # 7. The per-stage breakdown mirrors the paper's Table 4.
    print(
        f"\nbreakdown [EDR]: mincand={edr_result.mincand_seconds * 1e6:.0f}us  "
        f"lookup={edr_result.lookup_seconds * 1e6:.0f}us  "
        f"verify={edr_result.verify_seconds * 1e3:.2f}ms"
    )


if __name__ == "__main__":
    main()
