"""The implemented future-work extensions: sharding, top-k, eta tuning.

The paper flags three directions beyond its scope (§2.1, §3.1, §8); this
library implements all three and this example exercises them together:

1. partitioned search — exact answers from trajectory shards;
2. top-k search — the k most similar subtrajectories without a threshold;
3. per-query eta tuning — pick the ERP neighborhood threshold that
   minimizes the predicted candidate count.

Run:  python examples/scaling_extensions.py
"""

from repro import (
    ERPCost,
    PartitionedSubtrajectorySearch,
    SubtrajectorySearch,
    TrajectoryDataset,
    TripGenerator,
    grid_city,
    topk_search,
)
from repro.core.eta_tuning import tune_eta
from repro.core.filtering import tau_from_ratio


def main() -> None:
    graph = grid_city(12, 12, seed=61)
    trips = TripGenerator(graph, seed=62).generate(600, min_length=10, max_length=60)
    dataset = TrajectoryDataset(graph, "vertex")
    dataset.extend(trips)
    costs = ERPCost(graph, eta=0.5)
    query = list(dataset.symbols(7))[2:14]

    # --- 1. partitioned (simulated shared-nothing) search ----------------
    single = SubtrajectorySearch(dataset, costs)
    sharded = PartitionedSubtrajectorySearch(dataset, costs, num_shards=4)
    a = single.query(query, tau_ratio=0.1)
    b = sharded.query(query, tau_ratio=0.1)
    assert [(m.trajectory_id, m.start, m.end) for m in a.matches] == [
        (m.trajectory_id, m.start, m.end) for m in b.matches
    ]
    print(
        f"sharded == single-node: {len(b.matches)} matches across "
        f"{sharded.num_shards} shards"
    )

    # --- 2. top-k without choosing a threshold ---------------------------
    top = topk_search(single, query, 5)
    print("top-5 most similar subtrajectories:")
    for m in top:
        print(
            f"   trajectory {m.trajectory_id} [{m.start}..{m.end}] "
            f"ERP={m.distance:.1f}"
        )

    # --- 3. per-query eta tuning -----------------------------------------
    tau = tau_from_ratio(query, costs, 0.1)
    best_eta, trace = tune_eta(
        lambda eta: ERPCost(graph, eta=eta), query, tau, single.index
    )
    print(f"eta tuning for tau={tau:.2f}:")
    for choice in trace:
        status = (
            f"{choice.predicted_candidates} predicted candidates"
            if choice.feasible
            else "infeasible"
        )
        marker = " <- chosen" if choice.eta == best_eta else ""
        print(f"   eta={choice.eta:10.4f}: {status}{marker}")
    tuned = SubtrajectorySearch(dataset, ERPCost(graph, eta=best_eta))
    result = tuned.query(query, tau=tau)
    print(
        f"tuned engine: {result.num_candidates} candidates, "
        f"{len(result.matches)} matches"
    )


if __name__ == "__main__":
    main()
