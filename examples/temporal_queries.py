"""Temporal-constrained similarity search (§2.3, §4.3).

Travel-time estimation only wants trajectories from the relevant time slot
(e.g. rush hour).  This example compares the two evaluation strategies —
postprocessing vs candidate filtering (TF) — and shows the departure-sorted
index that prunes postings with a binary search.

Run:  python examples/temporal_queries.py
"""

import time

from repro import (
    EDRCost,
    SubtrajectorySearch,
    TimeInterval,
    TrajectoryDataset,
    TripGenerator,
    grid_city,
)


def main() -> None:
    graph = grid_city(12, 12, seed=41)
    trips = TripGenerator(graph, seed=42).generate(
        1_000, min_length=8, max_length=60, time_horizon=86_400.0
    )
    dataset = TrajectoryDataset(graph, "vertex")
    dataset.extend(trips)
    costs = EDRCost(graph, epsilon=80.0)

    engine = SubtrajectorySearch(dataset, costs)
    sorted_engine = SubtrajectorySearch(dataset, costs, sort_by_departure=True)

    query = list(dataset.symbols(3))[:8]
    rush_hour = TimeInterval(8 * 3600.0, 9 * 3600.0)  # 08:00-09:00

    unconstrained = engine.query(query, tau_ratio=0.2)
    print(f"unconstrained: {len(unconstrained.matches)} matches")

    # Strategy 1: postprocess (no-TF) — verify everything, filter at the end.
    t0 = time.perf_counter()
    no_tf = engine.query(
        query, tau_ratio=0.2, time_interval=rush_hour, temporal_filter=False
    )
    no_tf_time = time.perf_counter() - t0

    # Strategy 2: TF — prune candidates whose trajectory never overlaps I.
    t0 = time.perf_counter()
    tf = engine.query(
        query, tau_ratio=0.2, time_interval=rush_hour, temporal_filter=True
    )
    tf_time = time.perf_counter() - t0

    # Strategy 3: TF + departure-sorted postings (binary search bound).
    t0 = time.perf_counter()
    tf_sorted = sorted_engine.query(
        query, tau_ratio=0.2, time_interval=rush_hour, temporal_filter=True
    )
    tf_sorted_time = time.perf_counter() - t0

    assert tf.matches == no_tf.matches == tf_sorted.matches
    print(f"rush hour [{rush_hour.start / 3600:.0f}h, {rush_hour.end / 3600:.0f}h]: "
          f"{len(tf.matches)} matches")
    print(f"  no-TF     : {no_tf.num_candidates:5d} candidates verified, "
          f"{no_tf_time * 1e3:7.2f}ms")
    print(f"  TF        : {tf.num_candidates:5d} candidates verified, "
          f"{tf_time * 1e3:7.2f}ms")
    print(f"  TF+sorted : {tf_sorted.num_candidates:5d} candidates verified, "
          f"{tf_sorted_time * 1e3:7.2f}ms")
    print("identical results, shrinking work — the Fig. 12 effect")

    # Containment semantics: the matched span must lie inside the interval.
    within = engine.query(
        query,
        tau_ratio=0.2,
        time_interval=TimeInterval(0.0, 43_200.0),
        temporal_mode="within",
    )
    print(f"morning-contained matches: {len(within.matches)}")


if __name__ == "__main__":
    main()
