"""Travel-time estimation from similar subtrajectories (§6.2.1).

Demonstrates the paper's motivating application: when few historical
trajectories traveled a query path *exactly*, similarity search recovers
enough samples for a robust travel-time estimate.

Run:  python examples/travel_time_estimation.py
"""

from repro import SURSCost, SubtrajectorySearch, TrajectoryDataset, TripGenerator, grid_city
from repro.apps.travel_time import TravelTimeEstimator, relative_mse
from repro.bench.workloads import sample_sparse_queries


def main() -> None:
    graph = grid_city(14, 14, seed=3)
    trips = TripGenerator(graph, seed=5).generate(1_200, min_length=14, max_length=80)
    dataset = TrajectoryDataset(graph, "edge")
    dataset.extend(trips)

    # SURS was the best-performing function in the paper's Fig. 4.
    engine = SubtrajectorySearch(dataset, SURSCost(graph))
    estimator = TravelTimeEstimator(dataset, engine=engine)

    # Sparse queries: paths with only a handful of exact occurrences.
    queries = sample_sparse_queries(dataset, 5, 12, min_exact=3, max_exact=9, seed=9)
    if not queries:
        raise SystemExit("no sparse queries found; enlarge the dataset")

    print(f"{'query':<8}{'#exact':>8}{'exact avg':>12}{'similar n':>12}{'estimate':>12}")
    for i, query in enumerate(queries):
        truths = estimator.ground_truths(query)
        sim_times = estimator.similar_times(query, tau_ratio=0.1)
        estimate = estimator.estimate(query, tau_ratio=0.1)
        print(
            f"Q{i:<7}{len(truths):>8}{sum(truths) / len(truths):>12.1f}"
            f"{len(sim_times):>12}{estimate:>12.1f}"
        )

    # The paper's accuracy metric: MSE relative to exact matching under
    # leave-one-out cross validation.  < 100% means similarity search wins.
    for ratio in (0.05, 0.10, 0.20, 0.30):
        rmse = relative_mse(estimator, queries, tau_ratio=ratio)
        print(f"relative MSE at tau_ratio={ratio:.2f}: {rmse:.1f}%")

    # Subtrajectory vs whole matching (Table 3): whole matching averages
    # whole-trip durations, wildly overshooting the query span.
    sub = relative_mse(estimator, queries, tau_ratio=0.1, topk=5, topk_mode="subtrajectory")
    whole = relative_mse(estimator, queries, tau_ratio=0.1, topk=5, topk_mode="whole")
    print(f"top-5 relative MSE: subtrajectory={sub:.0f}%  whole={whole:.0f}%")


if __name__ == "__main__":
    main()
