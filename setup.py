"""Setup shim.

The execution environment has no network access, so PEP-517 build isolation
(which downloads setuptools/wheel) cannot run; this shim lets
``pip install -e . --no-use-pep517`` perform a legacy editable install with
the locally available setuptools.  Metadata lives here so the install also
works without a ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fast subtrajectory similarity search in road networks under "
        "weighted edit distance constraints (Koide et al., PVLDB 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",  # dataclass(slots=True) in core/results & engine
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
