"""Setup shim.

The execution environment has no network access, so PEP-517 build isolation
(which downloads setuptools/wheel) cannot run; this shim lets
``pip install -e . --no-use-pep517`` perform a legacy editable install with
the locally available setuptools.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
