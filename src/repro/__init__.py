"""repro — subtrajectory similarity search in road networks under WED.

A faithful, self-contained reproduction of

    Koide, Xiao, Ishikawa.
    "Fast Subtrajectory Similarity Search in Road Networks under
    Weighted Edit Distance Constraints."  PVLDB, 2020.

Quickstart::

    from repro import (
        SubtrajectorySearch, TrajectoryDataset, Trajectory,
        LevenshteinCost, grid_city,
    )

    graph = grid_city(10, 10, seed=7)
    data = TrajectoryDataset(graph)
    data.add(Trajectory([0, 1, 2, 3]))
    engine = SubtrajectorySearch(data, LevenshteinCost())
    for match in engine.query([1, 2], tau=1.0).matches:
        print(match)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured reproduction record.
"""

from repro.core.engine import QueryResult, SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.results import Match
from repro.core.temporal import TimeInterval
from repro.core.topk import TopKResult, topk_search
from repro.distance.costs import (
    CostModel,
    EDRCost,
    ERPCost,
    LevenshteinCost,
    NetEDRCost,
    NetERPCost,
    SURSCost,
)
from repro.distance.smith_waterman import all_matches, best_match
from repro.distance.wed import wed
from repro.network.generators import grid_city, radial_ring_city, random_city
from repro.network.graph import RoadNetwork
from repro.service import QueryService, ServiceResponse, ServiceServer
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator
from repro.trajectory.model import Trajectory

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "EDRCost",
    "ERPCost",
    "LevenshteinCost",
    "Match",
    "NetEDRCost",
    "NetERPCost",
    "PartitionedSubtrajectorySearch",
    "QueryResult",
    "QueryService",
    "RoadNetwork",
    "SURSCost",
    "ServiceResponse",
    "ServiceServer",
    "SubtrajectorySearch",
    "TimeInterval",
    "TopKResult",
    "Trajectory",
    "TrajectoryDataset",
    "TripGenerator",
    "all_matches",
    "best_match",
    "grid_city",
    "radial_ring_city",
    "random_city",
    "topk_search",
    "wed",
]
