"""Application layer: the paper's motivating use cases (§1, §6.2).

- :mod:`travel_time` — on-the-fly travel-time estimation from similar
  subtrajectories, with the leave-one-out RMSE protocol of Appendix E;
- :mod:`route_suggestion` — alternative-route retrieval scored by the
  route-naturalness measure of §6.2.2;
- :mod:`popularity` — path popularity (how often a path appears in the
  database, exactly or approximately).
"""

from repro.apps.popularity import path_popularity
from repro.apps.route_suggestion import route_naturalness, suggest_routes
from repro.apps.travel_time import (
    TravelTimeEstimator,
    relative_mse,
)

__all__ = [
    "TravelTimeEstimator",
    "path_popularity",
    "relative_mse",
    "route_naturalness",
    "suggest_routes",
]
