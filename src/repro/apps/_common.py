"""Shared helpers for the application layer."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.invindex import InvertedIndex
from repro.core.results import Match
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["best_match_per_trajectory", "find_exact_occurrences", "match_travel_time"]


def find_exact_occurrences(
    dataset: TrajectoryDataset,
    query: Sequence[int],
    index: Optional[InvertedIndex] = None,
) -> List[Tuple[int, int, int]]:
    """All ``(id, s, t)`` where ``query`` occurs as a contiguous substring.

    Uses the postings of the query's rarest symbol when an inverted index
    is supplied, otherwise scans the dataset.
    """
    q = tuple(query)
    if not q:
        return []
    out: List[Tuple[int, int, int]] = []
    if index is not None:
        anchor = min(range(len(q)), key=lambda i: index.frequency(q[i]))
        for tid, pos in index.postings(q[anchor]):
            s = pos - anchor
            t = s + len(q) - 1
            if s < 0:
                continue
            symbols = dataset.symbols(tid)
            if t < len(symbols) and tuple(symbols[s : t + 1]) == q:
                out.append((tid, s, t))
        out.sort()
        return out
    for tid in range(len(dataset)):
        symbols = tuple(dataset.symbols(tid))
        for s in range(len(symbols) - len(q) + 1):
            if symbols[s : s + len(q)] == q:
                out.append((tid, s, s + len(q) - 1))
    return out


def best_match_per_trajectory(matches: Sequence[Match]) -> Dict[int, Match]:
    """Pick one match per trajectory: smallest distance, then shortest
    subtrajectory, then earliest start (§6.2.1 tie-breaking)."""
    best: Dict[int, Match] = {}
    for m in matches:
        cur = best.get(m.trajectory_id)
        if cur is None or (m.distance, m.length, m.start) < (
            cur.distance,
            cur.length,
            cur.start,
        ):
            best[m.trajectory_id] = m
    return best


def match_travel_time(dataset: TrajectoryDataset, tid: int, start: int, end: int) -> float:
    """Travel time spanned by a match; edge symbols span one extra vertex."""
    if dataset.representation == "edge":
        end = end + 1
    return dataset[tid].travel_time(start, end)
