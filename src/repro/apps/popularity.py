"""Path popularity estimation (§1).

How often does a path appear in the database?  Exact counting (the classic
exact path query [20, 22]) undercounts on sparse data; counting *similar*
subtrajectories (one per trajectory) gives a robust popularity signal —
one of the motivating applications for subtrajectory similarity search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps._common import best_match_per_trajectory, find_exact_occurrences
from repro.core.engine import SubtrajectorySearch
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["PopularityReport", "path_popularity"]


@dataclass(frozen=True, slots=True)
class PopularityReport:
    """Exact and similarity-based popularity counts for one path."""

    exact_occurrences: int
    exact_trajectories: int
    similar_trajectories: Optional[int]


def path_popularity(
    dataset: TrajectoryDataset,
    query: Sequence[int],
    *,
    engine: Optional[SubtrajectorySearch] = None,
    tau_ratio: float = 0.1,
) -> PopularityReport:
    """Count exact occurrences of ``query`` and, when an engine is given,
    the number of trajectories containing a similar subtrajectory."""
    index = engine.index if engine is not None else None
    exact = find_exact_occurrences(dataset, query, index)
    similar = None
    if engine is not None:
        matches = engine.query(query, tau_ratio=tau_ratio).matches
        similar = len(best_match_per_trajectory(matches))
    return PopularityReport(
        exact_occurrences=len(exact),
        exact_trajectories=len({tid for tid, _, _ in exact}),
        similar_trajectories=similar,
    )
