"""Alternative route suggestion and route naturalness (§6.2.2).

A driver traveling from ``u`` to ``v`` along a planned route ``Q`` asks for
variations of ``Q`` found in the historical database: subtrajectories
similar to ``Q`` that also start at ``u`` and end at ``v``.  Suggested
routes are scored by *naturalness* (after [66] §7): the fraction of hops
that bring the driver strictly closer (in road-network distance) to the
destination than ever before — routes with many detours score low.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import SubtrajectorySearch
from repro.core.results import Match
from repro.network.graph import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["distances_to_target", "route_naturalness", "suggest_routes"]


def distances_to_target(graph: RoadNetwork, target: int) -> List[float]:
    """``d(u, target)`` for every vertex ``u``: one backward Dijkstra."""
    dist = [math.inf] * graph.num_vertices
    dist[target] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, target)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for e in graph.in_edges(u):
            nd = d + e.weight
            if nd < dist[e.source]:
                dist[e.source] = nd
                heapq.heappush(heap, (nd, e.source))
    return dist


def route_naturalness(
    graph: RoadNetwork,
    path: Sequence[int],
    *,
    dist_to_dest: Optional[Sequence[float]] = None,
) -> float:
    """``|C| / (|P| - 1)`` where ``C`` are the hops strictly closer to the
    destination than any earlier position (§6.2.2).

    ``dist_to_dest`` may carry precomputed distances to ``path[-1]`` (from
    :func:`distances_to_target`) when scoring many routes with a shared
    destination.
    """
    if len(path) < 2:
        return 1.0
    if dist_to_dest is None:
        dist_to_dest = distances_to_target(graph, path[-1])
    closest_so_far = dist_to_dest[path[0]]
    closer_hops = 0
    for v in path[1:]:
        d = dist_to_dest[v]
        if d < closest_so_far:
            closer_hops += 1
            closest_so_far = d
    return closer_hops / (len(path) - 1)


def suggest_routes(
    engine: SubtrajectorySearch,
    dataset: TrajectoryDataset,
    query: Sequence[int],
    *,
    tau: Optional[float] = None,
    tau_ratio: Optional[float] = None,
) -> List[Tuple[Tuple[int, ...], Match]]:
    """Distinct alternative routes for a query path.

    Returns ``(vertex_path, match)`` pairs for subtrajectories similar to
    the query that share its origin and destination vertices, deduplicated
    by path (each route reported once, with its best match).  Requires a
    vertex-representation dataset.
    """
    if dataset.representation != "vertex":
        raise ValueError("route suggestion requires vertex representation")
    origin, destination = query[0], query[-1]
    result = engine.query(query, tau=tau, tau_ratio=tau_ratio)
    routes: Dict[Tuple[int, ...], Match] = {}
    for m in result.matches:
        path = dataset[m.trajectory_id].path[m.start : m.end + 1]
        if path[0] != origin or path[-1] != destination:
            continue
        cur = routes.get(path)
        if cur is None or m.distance < cur.distance:
            routes[path] = m
    return sorted(routes.items(), key=lambda kv: kv[1].distance)
