"""On-the-fly travel-time estimation (§6.2.1, Appendix E).

Given a query path, the estimator retrieves similar subtrajectories from
the historical database and averages their travel times.  Accuracy is
evaluated exactly as in the paper: the travel times of *exact* occurrences
of the query are the ground truth, estimates are scored by leave-one-out
cross-validation, and the headline metric is the MSE of similarity search
relative to the MSE of exact match (RMSE < 100% means similarity search
helps — the sparse-data motivation of the paper).

Both WED cost models (through the search engine) and the non-WED
comparison functions DTW / LCSS / LORS / LCRS (through a scan, as the
paper does) are supported, with the §6.2.1 threshold normalizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence, Tuple

from repro.apps._common import (
    best_match_per_trajectory,
    find_exact_occurrences,
    match_travel_time,
)
from repro.core.engine import SubtrajectorySearch
from repro.distance.nonwed import (
    lcss_best_match,
    lors_best_match,
    subsequence_dtw_best,
)
from repro.distance.smith_waterman import best_match
from repro.distance.wed import wed
from repro.exceptions import QueryError
from repro.spatial.geometry import squared_euclidean
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["TravelTimeEstimator", "relative_mse"]

NonWEDKind = Literal["dtw", "lcss", "lors", "lcrs"]


@dataclass(frozen=True, slots=True)
class _Retrieved:
    """One retrieved subtrajectory and its travel time."""

    trajectory_id: int
    start: int
    end: int
    travel_time: float


class TravelTimeEstimator:
    """Travel-time estimation by subtrajectory similarity search.

    Construct either with a WED ``engine`` (any cost model) or with a
    non-WED ``function`` name; the latter scans the dataset per query, as
    the paper does for DTW/LCSS/LORS/LCRS (§6.2.1).
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        engine: Optional[SubtrajectorySearch] = None,
        function: Optional[NonWEDKind] = None,
    ) -> None:
        if (engine is None) == (function is None):
            raise QueryError("provide exactly one of engine / function")
        if function is not None and function not in ("dtw", "lcss", "lors", "lcrs"):
            raise QueryError(f"unknown similarity function {function!r}")
        self._dataset = dataset
        self._engine = engine
        self._function = function
        self._index = engine.index if engine is not None else None

    # -- retrieval -----------------------------------------------------------

    def ground_truths(self, query: Sequence[int]) -> List[float]:
        """Travel times of the exact occurrences of ``query`` (App. E)."""
        return [
            match_travel_time(self._dataset, tid, s, t)
            for tid, s, t in find_exact_occurrences(self._dataset, query, self._index)
        ]

    def similar_times(self, query: Sequence[int], tau_ratio: float) -> List[float]:
        """Travel times of the best similar subtrajectory per trajectory."""
        return [r.travel_time for r in self._retrieve(query, tau_ratio)]

    def estimate(self, query: Sequence[int], tau_ratio: float) -> float:
        """The travel-time estimate: mean over retrieved subtrajectories
        (``nan`` when nothing qualifies)."""
        times = self.similar_times(query, tau_ratio)
        return sum(times) / len(times) if times else math.nan

    def _retrieve(self, query: Sequence[int], tau_ratio: float) -> List[_Retrieved]:
        if self._engine is not None:
            result = self._engine.query(query, tau_ratio=tau_ratio)
            chosen = best_match_per_trajectory(result.matches)
            return [
                _Retrieved(
                    m.trajectory_id,
                    m.start,
                    m.end,
                    match_travel_time(self._dataset, m.trajectory_id, m.start, m.end),
                )
                for m in chosen.values()
            ]
        return self._retrieve_nonwed(query, tau_ratio)

    # -- non-WED scan (paper: subtrajectory enumeration / DP scan) ---------

    def _retrieve_nonwed(self, query: Sequence[int], tau_ratio: float) -> List[_Retrieved]:
        kind = self._function
        ds = self._dataset
        out: List[_Retrieved] = []
        if kind == "dtw":
            coords = ds.graph.coords

            def dist(a: int, b: int) -> float:
                return squared_euclidean(coords[a], coords[b])

            scale = sum(
                squared_euclidean(coords[a], coords[b])
                for a, b in zip(query, query[1:])
            )
            threshold = tau_ratio * scale
            for tid in range(len(ds)):
                s, t, v = subsequence_dtw_best(ds.symbols(tid), query, dist)
                if t >= s and v <= threshold:
                    out.append(_Retrieved(tid, s, t, match_travel_time(ds, tid, s, t)))
            return out
        if kind == "lcss":
            threshold = (1.0 - tau_ratio) * len(query)
            for tid in range(len(ds)):
                s, t, v = lcss_best_match(ds.symbols(tid), query, lambda a, b: a == b)
                if t >= s and v >= threshold:
                    out.append(_Retrieved(tid, s, t, match_travel_time(ds, tid, s, t)))
            return out
        # LORS / LCRS are defined on shared road segments: edge symbols.
        if ds.representation != "edge":
            raise QueryError(f"{kind} requires an edge-representation dataset")
        weights = [e.weight for e in ds.graph.edges]

        def weight(e: int) -> float:
            return weights[e]

        qweight = sum(weight(e) for e in query)
        for tid in range(len(ds)):
            data = ds.symbols(tid)
            s, t, shared = lors_best_match(data, query, weight)
            if t < s:
                continue
            if kind == "lors":
                if shared >= (1.0 - tau_ratio) * qweight:
                    out.append(_Retrieved(tid, s, t, match_travel_time(ds, tid, s, t)))
            else:  # lcrs on the matched span
                span_weight = sum(weight(e) for e in data[s : t + 1])
                denom = span_weight + qweight - shared
                ratio = shared / denom if denom > 0 else 1.0
                if ratio >= 1.0 - tau_ratio:
                    out.append(_Retrieved(tid, s, t, match_travel_time(ds, tid, s, t)))
        return out

    # -- top-k estimation (Table 3) ------------------------------------------

    def topk_times(
        self,
        query: Sequence[int],
        k: int,
        *,
        mode: Literal["subtrajectory", "whole"],
    ) -> List[float]:
        """Travel times of the ``k`` most similar trajectories.

        ``"subtrajectory"`` ranks by the best substring WED and uses the
        matched span's travel time; ``"whole"`` ranks by whole-trajectory
        WED and uses the full trajectory duration — the Table 3 contrast.
        """
        if self._engine is None:
            raise QueryError("top-k estimation requires a WED engine")
        costs = self._engine._costs  # noqa: SLF001 - deliberate internal access
        ds = self._dataset
        scored: List[Tuple[float, float]] = []
        for tid in range(len(ds)):
            data = ds.symbols(tid)
            if mode == "subtrajectory":
                s, t, d = best_match(data, query, costs)
                if t < s:
                    continue
                scored.append((d, match_travel_time(ds, tid, s, t)))
            else:
                d = wed(data, query, costs)
                scored.append((d, ds[tid].duration))
        scored.sort(key=lambda x: x[0])
        return [time for _, time in scored[:k]]


def _loo_mse(ground_truths: Sequence[float], pool: Sequence[float]) -> Optional[float]:
    """Leave-one-out MSE of ``avg(pool minus one instance of the truth)``
    against each ground truth (App. E).  ``None`` when undefined."""
    if not ground_truths or not pool:
        return None
    errors: List[float] = []
    for omega in ground_truths:
        rest = list(pool)
        try:
            rest.remove(omega)
        except ValueError:
            pass  # estimate pool may not contain this truth (non-WED picks)
        if not rest:
            continue
        est = sum(rest) / len(rest)
        errors.append((omega - est) ** 2)
    if not errors:
        return None
    return sum(errors) / len(errors)


def relative_mse(
    estimator: TravelTimeEstimator,
    queries: Sequence[Sequence[int]],
    tau_ratio: float,
    *,
    topk: Optional[int] = None,
    topk_mode: Literal["subtrajectory", "whole"] = "subtrajectory",
) -> float:
    """Average ``MSE(similarity) / MSE(exact)`` over queries, in percent.

    Values below 100 mean similarity search beats exact matching (Fig. 4).
    With ``topk`` set, the similarity pool is the top-k estimate instead of
    the thresholded one (Table 3).  Queries whose exact-match LOO-MSE is
    undefined or zero are skipped, as in the paper's protocol.
    """
    ratios: List[float] = []
    for query in queries:
        truths = estimator.ground_truths(query)
        if len(truths) < 2:
            continue
        mse_exact = _loo_mse(truths, truths)
        if not mse_exact:
            continue
        if topk is not None:
            pool = estimator.topk_times(query, topk, mode=topk_mode)
        else:
            pool = estimator.similar_times(query, tau_ratio)
        mse_sim = _loo_mse(truths, pool)
        if mse_sim is None:
            continue
        ratios.append(100.0 * mse_sim / mse_exact)
    if not ratios:
        return math.nan
    return sum(ratios) / len(ratios)
