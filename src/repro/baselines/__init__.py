"""Competitor methods from the paper's evaluation (§6.1, Appendix C).

Every baseline answers the same exact query semantics as the engine
(Definition 3), so their result sets are interchangeable and only their
candidate counts and running times differ:

- :mod:`plain_sw` — index-free Smith–Waterman scan (Plain-SW);
- :func:`dison_engine` / :func:`torch_engine` — the engine with the
  DISON-style prefix filter / Torch-style all-symbols filter, each with BT
  or SW verification;
- :mod:`qgram` — q-gram counting filter for EDR-like unit-cost functions;
- :mod:`dita` — pivot-trie over enumerated subtrajectories (whole-matching
  DITA adapted to subtrajectory search);
- :mod:`erp_index` — coordinate-sum lower bound in a kd-tree over
  enumerated subtrajectories (ERP-index).
"""

from repro.baselines.adapted_engines import dison_engine, torch_engine
from repro.baselines.dita import DITAIndex
from repro.baselines.erp_index import ERPIndex
from repro.baselines.plain_sw import PlainSWScan
from repro.baselines.qgram import QGramIndex

__all__ = [
    "DITAIndex",
    "ERPIndex",
    "PlainSWScan",
    "QGramIndex",
    "dison_engine",
    "torch_engine",
]
