"""DISON and Torch adapted to subtrajectory WED search (§6.1).

Both whole-matching systems differ from OSF only in how they pick the query
symbols whose postings are scanned:

- *DISON* [64] realizes the tau-subsequence as the shortest query *prefix*
  with ``sum c(q) >= tau`` — correct but blind to symbol selectivity;
- *Torch* [48] scans the postings of *every* query symbol.

Since the engine isolates that choice behind its ``selector`` parameter,
the baselines are thin factories; verification can be the bidirectional
trie (\\*-BT) or Smith–Waterman (\\*-SW), exactly as benchmarked in Fig. 6.
"""

from __future__ import annotations

from repro.core.engine import SubtrajectorySearch, VerificationMode
from repro.distance.costs import CostModel
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["dison_engine", "torch_engine"]


def dison_engine(
    dataset: TrajectoryDataset,
    costs: CostModel,
    *,
    verification: VerificationMode = "trie",
) -> SubtrajectorySearch:
    """DISON-BT / DISON-SW: prefix filtering + the requested verifier."""
    return SubtrajectorySearch(
        dataset, costs, selector="prefix", verification=verification
    )


def torch_engine(
    dataset: TrajectoryDataset,
    costs: CostModel,
    *,
    verification: VerificationMode = "trie",
) -> SubtrajectorySearch:
    """Torch-BT / Torch-SW: all-symbols filtering + the requested verifier."""
    return SubtrajectorySearch(
        dataset, costs, selector="all", verification=verification
    )
