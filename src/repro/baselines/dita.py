"""DITA adapted to subtrajectory WED search (§6.1, Appendix C).

DITA [41] is a whole-matching system, so the adaptation enumerates *every*
subtrajectory offline and indexes it — which is why the paper only runs it
on dataset fractions (1.4 billion subtrajectories for full Beijing).  Per
subtrajectory, ``K`` pivot symbols are selected and stored in a trie
together with the subtrajectory's identity; at query time the trie is
pruned with the pivot lower bound

    LB_pivot(P'', Q) = sum over p in P'' of min over q in Q+{eps} of sub(p, q)
                     <= wed(P', Q)

which is monotone along trie paths, and the surviving subtrajectories are
verified by whole-matching WED.

Pivot selection follows Appendix C: globally *frequent* symbols for
unit-cost models (keeps the trie narrow), symbols with the *largest
deletion cost* for ERP-like models.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import Match, MatchSet
from repro.distance.costs import CostModel
from repro.distance.wed import wed_within
from repro.exceptions import IndexError_
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["DITAIndex"]

SubtrajectoryRef = Tuple[int, int, int]  # (trajectory id, start, end) inclusive


class _PivotTrieNode:
    __slots__ = ("children", "refs")

    def __init__(self) -> None:
        self.children: Dict[int, "_PivotTrieNode"] = {}
        self.refs: List[SubtrajectoryRef] = []


class DITAIndex:
    """Pivot trie over enumerated subtrajectories.

    ``max_subtrajectories`` guards against the quadratic enumeration
    blowing up accidentally — the paper itself only runs DITA on small
    dataset fractions.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs: CostModel,
        *,
        num_pivots: int = 10,
        pivot_strategy: Optional[str] = None,
        max_subtrajectories: int = 2_000_000,
    ) -> None:
        self._dataset = dataset
        self._costs = costs
        self._k = num_pivots
        if pivot_strategy is None:
            # App. C: frequent symbols for EDR-like, large deletion cost for
            # ERP-like.  Unit insertion cost marks the former.
            unit = all(
                costs.ins(dataset.symbols(t)[0]) == 1.0
                for t in range(min(3, len(dataset)))
            )
            pivot_strategy = "frequent" if unit else "costly"
        if pivot_strategy not in ("frequent", "costly"):
            raise IndexError_(f"unknown pivot strategy {pivot_strategy!r}")
        self._strategy = pivot_strategy
        self._freq: Dict[int, int] = {}
        for tid in range(len(dataset)):
            for s in dataset.symbols(tid):
                self._freq[s] = self._freq.get(s, 0) + 1
        self._root = _PivotTrieNode()
        self.num_subtrajectories = 0
        total = sum(
            len(dataset.symbols(t)) * (len(dataset.symbols(t)) + 1) // 2
            for t in range(len(dataset))
        )
        if total > max_subtrajectories:
            raise IndexError_(
                f"DITA would enumerate {total} subtrajectories "
                f"(limit {max_subtrajectories}); use a smaller dataset fraction"
            )
        for tid in range(len(dataset)):
            symbols = dataset.symbols(tid)
            n = len(symbols)
            for s in range(n):
                for t in range(s, n):
                    self._insert(tid, s, t, symbols[s : t + 1])

    # -- construction -------------------------------------------------------

    def _pivots(self, symbols: Sequence[int]) -> List[int]:
        if len(symbols) <= self._k:
            chosen = list(range(len(symbols)))
        else:
            if self._strategy == "frequent":
                ranked = sorted(
                    range(len(symbols)), key=lambda i: -self._freq[symbols[i]]
                )
            else:
                ranked = sorted(
                    range(len(symbols)),
                    key=lambda i: -self._costs.delete(symbols[i]),
                )
            chosen = sorted(ranked[: self._k])  # keep sequence order
        return [symbols[i] for i in chosen]

    def _insert(self, tid: int, s: int, t: int, symbols: Sequence[int]) -> None:
        node = self._root
        for p in self._pivots(symbols):
            child = node.children.get(p)
            if child is None:
                child = _PivotTrieNode()
                node.children[p] = child
            node = child
        node.refs.append((tid, s, t))
        self.num_subtrajectories += 1

    # -- query ----------------------------------------------------------------

    def candidates(self, query: Sequence[int], tau: float) -> List[SubtrajectoryRef]:
        """Subtrajectories surviving the pivot lower bound."""
        costs = self._costs
        memo: Dict[int, float] = {}

        def mismatch(p: int) -> float:
            m = memo.get(p)
            if m is None:
                m = costs.delete(p)
                for q in query:
                    c = costs.sub(p, q)
                    if c < m:
                        m = c
                memo[p] = m
            return m

        out: List[SubtrajectoryRef] = []
        stack: List[Tuple[_PivotTrieNode, float]] = [(self._root, 0.0)]
        while stack:
            node, lb = stack.pop()
            if lb >= tau:
                continue
            out.extend(node.refs)
            for p, child in node.children.items():
                stack.append((child, lb + mismatch(p)))
        return out

    def query(self, query: Sequence[int], tau: float) -> List[Match]:
        """Exact answers: pivot pruning, then whole-matching verification."""
        matches = MatchSet()
        for tid, s, t in self.candidates(query, tau):
            sub = self._dataset.symbols(tid)[s : t + 1]
            d = wed_within(sub, query, self._costs, tau)
            if d < tau:
                matches.add(tid, s, t, d)
        return matches.to_list()

    def memory_bytes(self) -> int:
        """Rough index footprint (Table 6 comparison)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += sys.getsizeof(node.children) + sys.getsizeof(node.refs)
            total += 64 * len(node.refs)
            stack.extend(node.children.values())
        return total
