"""The ERP-index baseline (§6.1): coordinate-sum lower bound in a kd-tree.

Chen & Ng's bound: every ERP edit operation changes the g-shifted
coordinate sum of a sequence by a vector no longer than the operation's
cost, so

    || sum(P' - g) - sum(Q - g) ||_2  <=  ERP(P', Q).

The baseline enumerates all subtrajectories (whole-matching index adapted
to subtrajectory search, like DITA), stores each one's shifted coordinate
sum in a kd-tree, answers a query by a radius-``tau`` range search around
``sum(Q - g)``, and verifies survivors with whole-matching WED.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.results import Match, MatchSet
from repro.distance.costs import ERPCost
from repro.distance.wed import wed_within
from repro.exceptions import IndexError_
from repro.spatial.kdtree import KDTree
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["ERPIndex"]

SubtrajectoryRef = Tuple[int, int, int]


class ERPIndex:
    """kd-tree over per-subtrajectory shifted coordinate sums."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs: ERPCost,
        *,
        max_subtrajectories: int = 2_000_000,
    ) -> None:
        if not isinstance(costs, ERPCost):
            raise IndexError_("ERPIndex only supports the ERP cost model")
        if dataset.representation != "vertex":
            raise IndexError_("ERPIndex requires vertex representation")
        self._dataset = dataset
        self._costs = costs
        gx, gy = costs.reference
        coords = dataset.graph.coords
        refs: List[SubtrajectoryRef] = []
        sums: List[Tuple[float, float]] = []
        total = sum(
            len(dataset.symbols(t)) * (len(dataset.symbols(t)) + 1) // 2
            for t in range(len(dataset))
        )
        if total > max_subtrajectories:
            raise IndexError_(
                f"ERPIndex would enumerate {total} subtrajectories "
                f"(limit {max_subtrajectories}); use a smaller dataset fraction"
            )
        for tid in range(len(dataset)):
            path = dataset.symbols(tid)
            n = len(path)
            for s in range(n):
                sx = sy = 0.0
                for t in range(s, n):
                    x, y = coords[path[t]]
                    sx += x - gx
                    sy += y - gy
                    refs.append((tid, s, t))
                    sums.append((sx, sy))
        self._refs = refs
        self._tree = KDTree(sums)
        self.num_subtrajectories = len(refs)

    def candidates(self, query: Sequence[int], tau: float) -> List[SubtrajectoryRef]:
        """Subtrajectories whose sum lies within ``tau`` of the query's."""
        gx, gy = self._costs.reference
        coords = self._dataset.graph.coords
        qx = sum(coords[v][0] - gx for v in query)
        qy = sum(coords[v][1] - gy for v in query)
        return [self._refs[i] for i in self._tree.range_search((qx, qy), tau)]

    def query(self, query: Sequence[int], tau: float) -> List[Match]:
        """Exact answers: range filter, then whole-matching verification."""
        matches = MatchSet()
        for tid, s, t in self.candidates(query, tau):
            sub = self._dataset.symbols(tid)[s : t + 1]
            d = wed_within(sub, query, self._costs, tau)
            if d < tau:
                matches.add(tid, s, t, d)
        return matches.to_list()

    def memory_bytes(self) -> int:
        """Rough index footprint (Table 6 comparison)."""
        return 88 * self.num_subtrajectories
