"""Plain-SW: the index-free Smith–Waterman scan baseline (§3, §6.1).

Scans every data trajectory per query.  Two semantics are offered:

- ``"all"`` (default) — exact Definition 3 answers via the per-start
  thresholded DP; this is the honest exact competitor;
- ``"best"`` — the paper's Appendix A algorithm: one ``O(|P|*|Q|)`` pass
  per trajectory reporting its best-matching substring when under ``tau``
  (the original Smith–Waterman adaptation, cheaper but weaker semantics).
"""

from __future__ import annotations

from typing import List, Literal, Optional, Sequence

from repro.core.results import Match, MatchSet
from repro.core.temporal import TemporalMode, TimeInterval, match_satisfies
from repro.distance.costs import CostModel
from repro.distance.smith_waterman import all_matches, best_match
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["PlainSWScan"]


class PlainSWScan:
    """Query-time full scan with Smith–Waterman verification."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs: CostModel,
        *,
        semantics: Literal["all", "best"] = "all",
    ) -> None:
        if semantics not in ("all", "best"):
            raise ValueError(f"unknown semantics {semantics!r}")
        self._dataset = dataset
        self._costs = costs
        self._semantics = semantics

    def query(
        self,
        query: Sequence[int],
        tau: float,
        *,
        time_interval: Optional[TimeInterval] = None,
        temporal_mode: TemporalMode = "overlap",
    ) -> List[Match]:
        """Exact Definition 3 answers (or best-per-trajectory in "best"
        mode), optionally postfiltered by a time interval."""
        matches = MatchSet()
        for tid in range(len(self._dataset)):
            data = self._dataset.symbols(tid)
            if self._semantics == "all":
                for s, t, d in all_matches(data, query, self._costs, tau):
                    matches.add(tid, s, t, d)
            else:
                s, t, d = best_match(data, query, self._costs)
                if d < tau and t >= s:
                    matches.add(tid, s, t, d)
        out = matches.to_list()
        if time_interval is not None:
            out = [
                m
                for m in out
                if match_satisfies(self._dataset, m, time_interval, temporal_mode)
            ]
        return out
