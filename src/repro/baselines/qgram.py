"""q-gram count filtering adapted to subtrajectory EDR search (App. C).

The classic bound: if two strings are within ``t`` (unit-cost) edits, they
share at least ``max(|P|,|Q|) - q + 1 - t*q`` q-grams.  The paper's
adaptation indexes each data trajectory's q-grams once (no substring
enumeration) and, per query:

1. for every query q-gram ``x``, enumerates the q-grams ``x'`` that match
   it position-wise (each symbol within the cost model's zero-cost
   neighborhood — exact symbols for Lev, epsilon-balls for EDR);
2. accumulates per-trajectory hit counts ``H[id]`` over the postings of
   all those ``x'``;
3. keeps trajectories with ``H[id] >= |Q| - q + 1 - t*q`` (using ``|Q|``
   as the lower bound of ``max(|P'|,|Q|)``), where ``t`` is the number of
   whole edit operations allowed under ``tau``;
4. verifies survivors with the Smith–Waterman oracle.

When ``tau`` is large the bound drops to zero or below and *everything*
becomes a candidate — the looseness that motivates subsequence filtering
(§1).  The filter is only sound for unit-cost models (Lev/EDR/NetEDR);
construction rejects others.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Dict, List, Sequence, Tuple

from repro.core.results import Match, MatchSet
from repro.distance.costs import CostModel, EDRCost, LevenshteinCost, NetEDRCost
from repro.distance.smith_waterman import all_matches
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["QGramIndex"]

_UNIT_COST_MODELS = (LevenshteinCost, EDRCost, NetEDRCost)


class QGramIndex:
    """q-gram inverted index with count filtering (default ``q = 3``)."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs: CostModel,
        *,
        q: int = 3,
        max_enumeration: int = 200_000,
    ) -> None:
        if not isinstance(costs, _UNIT_COST_MODELS):
            raise QueryError(
                "q-gram filtering requires a unit-cost model (Lev/EDR/NetEDR); "
                f"got {type(costs).__name__}"
            )
        if q < 1:
            raise QueryError("q must be >= 1")
        self._dataset = dataset
        self._costs = costs
        self._q = q
        self._max_enumeration = max_enumeration
        self._postings: Dict[Tuple[int, ...], List[int]] = {}
        for tid in range(len(dataset)):
            symbols = dataset.symbols(tid)
            for i in range(len(symbols) - q + 1):
                gram = tuple(symbols[i : i + q])
                self._postings.setdefault(gram, []).append(tid)

    @property
    def num_grams(self) -> int:
        """Number of distinct q-grams indexed."""
        return len(self._postings)

    def _allowed_edits(self, tau: float) -> int:
        """Largest integer edit count consistent with ``wed < tau``."""
        return max(0, math.ceil(tau - 1e-9) - 1)

    def candidates(self, query: Sequence[int], tau: float) -> List[int]:
        """Trajectory ids passing the count filter (everything, when the
        bound degenerates)."""
        q = self._q
        if len(query) < q:
            return list(range(len(self._dataset)))
        threshold = len(query) - q + 1 - self._allowed_edits(tau) * q
        if threshold <= 0:
            return list(range(len(self._dataset)))
        neighborhoods = [self._costs.neighbors(s) for s in query]
        hits: Dict[int, int] = {}
        for i in range(len(query) - q + 1):
            parts = neighborhoods[i : i + q]
            combos = 1
            for p in parts:
                combos *= len(p)
            if combos > self._max_enumeration:
                # Matching-gram enumeration blew up; the sound fallback is
                # to not filter on this gram position at all, which can only
                # weaken the threshold by one.
                threshold -= 1
                if threshold <= 0:
                    return list(range(len(self._dataset)))
                continue
            seen_in_gram: Dict[int, int] = {}
            for variant in product(*parts):
                for tid in self._postings.get(tuple(variant), ()):
                    seen_in_gram[tid] = seen_in_gram.get(tid, 0) + 1
            for tid, c in seen_in_gram.items():
                hits[tid] = hits.get(tid, 0) + c
        return [tid for tid, c in hits.items() if c >= threshold]

    def query(self, query: Sequence[int], tau: float) -> List[Match]:
        """Exact answers: count filter then Smith–Waterman verification."""
        matches = MatchSet()
        for tid in self.candidates(query, tau):
            data = self._dataset.symbols(tid)
            for s, t, d in all_matches(data, query, self._costs, tau):
                matches.add(tid, s, t, d)
        return matches.to_list()
