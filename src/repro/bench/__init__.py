"""Benchmark support: synthetic dataset profiles, workload sampling, and
result recording.

The paper's four datasets (Beijing, Porto, Singapore, SanFran — Table 2)
are proprietary or impractically large, so :mod:`repro.bench.datasets`
builds laptop-scale synthetic analogues that preserve the *relative* shape
(network style, trajectory count ratios, average length ratios).  Every
benchmark under ``benchmarks/`` prints a paper-vs-measured table through
:mod:`repro.bench.harness` and appends a JSON record under ``results/``.
"""

from repro.bench.corridors import CorridorWorkload, build_corridor_workload
from repro.bench.datasets import DATASET_PROFILES, build_dataset
from repro.bench.harness import ResultRecorder, SeriesTable
from repro.bench.report import load_results, render_markdown
from repro.bench.workloads import (
    sample_queries,
    sample_sparse_queries,
    sample_zipf_queries,
)

__all__ = [
    "DATASET_PROFILES",
    "CorridorWorkload",
    "ResultRecorder",
    "SeriesTable",
    "build_corridor_workload",
    "build_dataset",
    "load_results",
    "render_markdown",
    "sample_queries",
    "sample_sparse_queries",
    "sample_zipf_queries",
]
