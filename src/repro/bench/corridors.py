"""Corridor workloads for the effectiveness experiments (Fig. 4/5, Table 3).

The paper's travel-time and route-suggestion results rest on a property of
real taxi data: popular paths are traveled by *many* vehicles whose routes
differ slightly (detours, shortcuts) and whose travel times share context.
Uniform random trips do not produce that density at laptop scale, so this
module constructs it explicitly:

- a handful of *corridors* (shortest paths of moderate length);
- each corridor gets many travelers; a fraction of them take a local
  *variant* (one vertex replaced by an alternative subroute), so they are
  similar-but-not-exact matches for the corridor;
- per-trip speed factors plus per-edge noise give travel times whose mean
  is corridor-specific — exactly the signal similarity search can pool;
- background random trips complete the database.

The corridors double as queries: they have few exact travelers (the
sparse case of §6.2.1) but many similar ones.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import shortest_path
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator
from repro.trajectory.model import Trajectory

__all__ = ["CorridorWorkload", "build_corridor_workload"]


@dataclass(frozen=True)
class CorridorWorkload:
    """A corridor-structured dataset plus its natural queries."""

    graph: RoadNetwork
    dataset: TrajectoryDataset
    corridors: List[List[int]]  # vertex paths; also the queries


def _route_avoiding(
    graph: RoadNetwork, source: int, target: int, banned: int
) -> Optional[List[int]]:
    """Shortest path from ``source`` to ``target`` that skips ``banned``."""
    import heapq

    dist = {source: 0.0}
    parent = {source: -1}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            break
        if d > dist.get(u, math.inf):
            continue
        for e in graph.out_edges(u):
            if e.target == banned:
                continue
            nd = d + e.weight
            if nd < dist.get(e.target, math.inf):
                dist[e.target] = nd
                parent[e.target] = u
                heapq.heappush(heap, (nd, e.target))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _variant_of(path: List[int], graph: RoadNetwork, rng: random.Random) -> List[int]:
    """Replace one interior vertex by a short alternative subroute.

    Falls back to the original path when no detour exists (dead ends)."""
    if len(path) < 4:
        return path
    for _ in range(6):
        i = rng.randrange(1, len(path) - 1)
        detour = _route_avoiding(graph, path[i - 1], path[i + 1], path[i])
        if detour is not None and 2 <= len(detour) <= 6:
            candidate = path[: i - 1] + detour + path[i + 2 :]
            if len(set(candidate)) == len(candidate):  # keep it simple
                return candidate
    return path


def _timestamps(
    graph: RoadNetwork,
    path: Sequence[int],
    rng: random.Random,
    *,
    base_speed: float,
    trip_speed_sigma: float,
    edge_noise_sigma: float,
) -> List[float]:
    speed = base_speed * math.exp(rng.gauss(0.0, trip_speed_sigma))
    ts = [rng.uniform(0.0, 86_400.0)]
    for a, b in zip(path, path[1:]):
        w = graph.edge(graph.edge_id(a, b)).weight
        noise = math.exp(rng.gauss(0.0, edge_noise_sigma))
        ts.append(ts[-1] + max(1e-6, w / speed * noise))
    return ts


def build_corridor_workload(
    *,
    num_corridors: int = 8,
    exact_travelers: int = 5,
    variant_travelers: int = 30,
    background_trips: int = 300,
    corridor_length: Tuple[int, int] = (10, 16),
    representation: str = "vertex",
    seed: int = 0,
    graph: Optional[RoadNetwork] = None,
) -> CorridorWorkload:
    """Build the corridor-structured workload.

    ``exact_travelers`` trips follow each corridor verbatim (few — the
    sparse case); ``variant_travelers`` follow a one-detour variant, making
    them similar under WED but invisible to exact path queries.
    """
    if graph is None:
        graph = grid_city(16, 16, seed=seed + 977)
    rng = random.Random(seed)
    lo, hi = corridor_length
    corridors: List[List[int]] = []
    attempts = 0
    while len(corridors) < num_corridors and attempts < 4_000:
        attempts += 1
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u == v:
            continue
        path = shortest_path(graph, u, v)
        if path is not None and lo <= len(path) <= hi:
            corridors.append(path)
    if len(corridors) < num_corridors:
        raise ValueError("could not find enough corridors; enlarge the graph")

    def _extended(route: List[int]) -> List[int]:
        """Prepend an approach and append an exit segment, so corridor
        travelers are longer trips that *contain* the corridor — whole
        matching then genuinely overshoots the query span (Table 3)."""
        out = list(route)
        for _ in range(10):
            head = shortest_path(graph, rng.randrange(graph.num_vertices), out[0])
            if head is not None and 3 <= len(head) <= 8:
                out = head[:-1] + out
                break
        for _ in range(10):
            tail = shortest_path(graph, out[-1], rng.randrange(graph.num_vertices))
            if tail is not None and 3 <= len(tail) <= 8:
                out = out + tail[1:]
                break
        return out

    def _add_traveler(route: List[int]) -> None:
        full = _extended(route)
        dataset.add(
            Trajectory(
                full,
                _timestamps(
                    graph,
                    full,
                    rng,
                    base_speed=10.0,
                    trip_speed_sigma=0.15,
                    edge_noise_sigma=0.10,
                ),
            )
        )

    dataset = TrajectoryDataset(graph, representation)
    for path in corridors:
        for _ in range(exact_travelers):
            _add_traveler(path)
        for _ in range(variant_travelers):
            _add_traveler(_variant_of(path, graph, rng))
    if background_trips:
        gen = TripGenerator(graph, seed=seed + 31)
        dataset.extend(
            gen.generate(background_trips, min_length=8, max_length=40)
        )
    return CorridorWorkload(graph=graph, dataset=dataset, corridors=corridors)
