"""Synthetic analogues of the paper's four datasets (Table 2).

Real sizes (Table 2) are far beyond a pure-Python benchmark budget, so each
profile reproduces the *shape*, scaled down ~400x:

==========  ============  ===========  ======  ======  ====================
profile     paper #traj   paper avg|P|  |V|     style   our defaults
==========  ============  ===========  ======  ======  ====================
beijing     786,801       101          86,484  ring+grid  2,000 traj, len~50
porto       1,701,238     81           75,265  irregular  3,000 traj, len~40
singapore   287,524       262          18,127  grid       800 traj, len~90
sanfran     11,505,922    101          175,343 grid       6,000 traj, len~50
==========  ============  ===========  ======  ======  ====================

The relative ordering (porto > beijing > singapore in count; singapore has
the longest trajectories; sanfran the largest) is preserved, which is what
the scaling experiments (Figs. 8, 10) exercise.  ``scale`` multiplies the
trajectory count; datasets are memoized per (profile, scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.network.generators import grid_city, random_city
from repro.network.graph import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator

__all__ = ["DATASET_PROFILES", "DatasetProfile", "build_dataset"]


@dataclass(frozen=True)
class DatasetProfile:
    """Recipe for one synthetic dataset."""

    name: str
    paper_trajectories: int
    paper_avg_length: float
    paper_vertices: int
    paper_edges: int
    build_graph: Callable[[], RoadNetwork]
    num_trajectories: int
    min_length: int
    max_length: int
    seed: int

    def graph(self) -> RoadNetwork:
        """Build this profile's road network."""
        return self.build_graph()


DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "beijing": DatasetProfile(
        name="beijing",
        paper_trajectories=786_801,
        paper_avg_length=101,
        paper_vertices=86_484,
        paper_edges=171_135,
        build_graph=lambda: grid_city(24, 24, diagonal_prob=0.15, seed=11),
        num_trajectories=2_000,
        min_length=12,
        max_length=90,
        seed=101,
    ),
    "porto": DatasetProfile(
        name="porto",
        paper_trajectories=1_701_238,
        paper_avg_length=81,
        paper_vertices=75_265,
        paper_edges=135_133,
        build_graph=lambda: random_city(520, extent=4200.0, seed=12),
        num_trajectories=3_000,
        min_length=10,
        max_length=70,
        seed=102,
    ),
    "singapore": DatasetProfile(
        name="singapore",
        paper_trajectories=287_524,
        paper_avg_length=262,
        paper_vertices=18_127,
        paper_edges=48_236,
        build_graph=lambda: grid_city(14, 14, diagonal_prob=0.05, seed=13),
        num_trajectories=800,
        min_length=40,
        max_length=160,
        seed=103,
    ),
    "sanfran": DatasetProfile(
        name="sanfran",
        paper_trajectories=11_505_922,
        paper_avg_length=101,
        paper_vertices=175_343,
        paper_edges=223_606,
        build_graph=lambda: grid_city(28, 28, diagonal_prob=0.10, seed=14),
        num_trajectories=6_000,
        min_length=12,
        max_length=90,
        seed=104,
    ),
    # Profiles for the enumeration baselines (DITA / ERP-index), mirroring
    # the paper's 5,000-trajectory fractions: "small" is the benchmark
    # workload (large enough that enumeration hurts), "tiny" is for tests.
    "small": DatasetProfile(
        name="small",
        paper_trajectories=5_000,
        paper_avg_length=101,
        paper_vertices=86_484,
        paper_edges=171_135,
        build_graph=lambda: grid_city(16, 16, seed=16),
        num_trajectories=150,
        min_length=15,
        max_length=60,
        seed=106,
    ),
    "tiny": DatasetProfile(
        name="tiny",
        paper_trajectories=5_000,
        paper_avg_length=101,
        paper_vertices=86_484,
        paper_edges=171_135,
        build_graph=lambda: grid_city(10, 10, seed=15),
        num_trajectories=60,
        min_length=8,
        max_length=30,
        seed=105,
    ),
}


@lru_cache(maxsize=16)
def build_dataset(
    profile: str,
    *,
    scale: float = 1.0,
    representation: str = "vertex",
) -> Tuple[RoadNetwork, TrajectoryDataset]:
    """Build (and memoize) one synthetic dataset.

    ``scale`` multiplies the trajectory count — the Fig. 8 / Fig. 10 dataset
    size sweeps pass 0.25 / 0.5 / 0.75 / 1.0.
    """
    try:
        spec = DATASET_PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown profile {profile!r}; choose from {sorted(DATASET_PROFILES)}"
        ) from None
    graph = spec.graph()
    gen = TripGenerator(graph, seed=spec.seed)
    count = max(1, int(spec.num_trajectories * scale))
    trips = gen.generate(count, min_length=spec.min_length, max_length=spec.max_length)
    dataset = TrajectoryDataset(graph, representation)
    dataset.extend(trips)
    return graph, dataset
