"""Benchmark reporting: aligned tables on stdout + JSON records on disk.

Every experiment prints a table of measured series next to the paper's
qualitative expectation, and appends a machine-readable record under
``results/`` so EXPERIMENTS.md can be regenerated from artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultRecorder", "SeriesTable", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-scale time formatting for table cells."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


class SeriesTable:
    """An aligned text table keyed by a leading label column.

    >>> t = SeriesTable("method", ["0.1", "0.2"], title="Fig. 6")
    >>> t.add_row("OSF-BT", [0.01, 0.02], formatter=format_seconds)
    >>> print(t.render())
    """

    def __init__(self, key_header: str, columns: Sequence[str], *, title: str = "") -> None:
        self.title = title
        self._key_header = key_header
        self._columns = [str(c) for c in columns]
        self._rows: List[List[str]] = []
        self._raw: Dict[str, List[Any]] = {}

    def add_row(self, label: str, values: Sequence[Any], *, formatter=None) -> None:
        """Append one labeled series (must match the column count)."""
        if len(values) != len(self._columns):
            raise ValueError(
                f"row {label!r} has {len(values)} values for {len(self._columns)} columns"
            )
        fmt = formatter or (lambda v: f"{v:.4g}" if isinstance(v, float) else str(v))
        self._rows.append([label] + [fmt(v) for v in values])
        self._raw[label] = list(values)

    @property
    def raw(self) -> Dict[str, List[Any]]:
        """Unformatted values keyed by row label."""
        return self._raw

    def render(self) -> str:
        """The aligned table as a string."""
        header = [self._key_header] + self._columns
        widths = [len(h) for h in header]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the table (flushed, for live benchmark output)."""
        print("\n" + self.render(), flush=True)


class ResultRecorder:
    """Append experiment records as JSON files under ``results/``."""

    def __init__(self, root: Optional[Path] = None) -> None:
        if root is None:
            root = Path(__file__).resolve().parents[3] / "results"
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def record(
        self,
        experiment: str,
        payload: Dict[str, Any],
        *,
        expectation: str = "",
    ) -> Path:
        """Write one record; returns the file path."""
        out = {
            "experiment": experiment,
            "expectation": expectation,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            **payload,
        }
        path = self._root / f"{experiment}.json"
        path.write_text(json.dumps(out, indent=2, default=str) + "\n", encoding="utf-8")
        return path
