"""Render the recorded experiment results as a markdown report.

``python -m repro.bench.report [results_dir]`` regenerates a compact
paper-vs-measured summary from the JSON records the benchmarks write under
``results/`` — the data behind ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List

__all__ = ["load_results", "render_markdown"]

#: canonical presentation order (paper order)
_ORDER = [
    "table2",
    "fig04",
    "table3",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "table4",
    "fig11",
    "table5",
    "table6",
    "fig12",
    "fig13",
    "ablation",
]


def load_results(results_dir: Path) -> List[Dict[str, Any]]:
    """All experiment records, sorted into paper order."""
    records = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            records.append(json.loads(path.read_text()))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: corrupt record: {exc}") from exc

    def rank(rec: Dict[str, Any]) -> tuple:
        name = rec.get("experiment", "")
        for i, prefix in enumerate(_ORDER):
            if name.startswith(prefix):
                return (i, name)
        return (len(_ORDER), name)

    records.sort(key=rank)
    return records


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def _series_lines(payload: Dict[str, Any]) -> List[str]:
    """Render dict-of-series payload entries as markdown bullet lists."""
    lines: List[str] = []
    for key, value in payload.items():
        if key in ("experiment", "expectation", "recorded_at", "scale"):
            continue
        if isinstance(value, dict) and value and all(
            isinstance(v, list) for v in value.values()
        ):
            lines.append(f"- **{key}**:")
            for label, series in value.items():
                rendered = ", ".join(_fmt(v) for v in series)
                lines.append(f"    - {label}: {rendered}")
        elif isinstance(value, list):
            lines.append(f"- **{key}**: {', '.join(_fmt(v) for v in value)}")
        else:
            lines.append(f"- **{key}**: {_fmt(value)}")
    return lines


def render_markdown(results_dir: Path) -> str:
    """The full report as a markdown string."""
    records = load_results(results_dir)
    lines = [
        "# Recorded experiment results",
        "",
        f"{len(records)} experiment records from `{results_dir}`.",
        "",
    ]
    for rec in records:
        lines.append(f"## {rec.get('experiment', '?')}")
        expectation = rec.get("expectation")
        if expectation:
            lines.append(f"*Expected (paper):* {expectation}")
        scale = rec.get("scale")
        if scale is not None:
            lines.append(f"*Dataset scale:* {scale}")
        lines.append("")
        lines.extend(_series_lines(rec))
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - thin CLI
    argv = sys.argv[1:] if argv is None else argv
    results_dir = Path(argv[0]) if argv else Path("results")
    if not results_dir.is_dir():
        print(f"no such results directory: {results_dir}", file=sys.stderr)
        return 1
    print(render_markdown(results_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
