"""Query workload sampling (§6.3).

The paper samples query paths uniformly from the data trajectories
(following [20, 22, 51, 53]), with a default length of 60.  Our scaled
datasets use proportionally shorter defaults; every benchmark passes the
length explicitly so the sweep axes stay faithful.
"""

from __future__ import annotations

import random
from typing import List

from repro.apps._common import find_exact_occurrences
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["sample_queries", "sample_sparse_queries", "sample_zipf_queries"]


def sample_queries(
    dataset: TrajectoryDataset,
    count: int,
    length: int,
    *,
    seed: int = 0,
) -> List[List[int]]:
    """``count`` query strings sampled as random subtrajectories of random
    data trajectories (all of length exactly ``length``)."""
    rng = random.Random(seed)
    eligible = [
        tid for tid in range(len(dataset)) if len(dataset.symbols(tid)) >= length
    ]
    if not eligible:
        raise ValueError(f"no trajectory is >= {length} symbols long")
    out: List[List[int]] = []
    for _ in range(count):
        tid = rng.choice(eligible)
        symbols = dataset.symbols(tid)
        s = rng.randrange(0, len(symbols) - length + 1)
        out.append(list(symbols[s : s + length]))
    return out


def sample_zipf_queries(
    dataset: TrajectoryDataset,
    count: int,
    length: int,
    *,
    distinct: int = 16,
    exponent: float = 1.2,
    seed: int = 0,
) -> List[List[int]]:
    """A serving-style request stream: ``count`` requests drawn from
    ``distinct`` base queries with Zipf-skewed popularity (rank ``r`` has
    weight ``1 / r**exponent``).

    Real query traffic is heavily skewed toward popular routes; this is
    the mix the serving layer's result cache and request coalescing are
    designed for, so the throughput benchmark uses it as its workload.
    """
    if distinct < 1:
        raise ValueError("distinct must be >= 1")
    base = sample_queries(dataset, distinct, length, seed=seed)
    rng = random.Random(seed + 0x5EED)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(base))]
    return [list(q) for q in rng.choices(base, weights=weights, k=count)]


def sample_sparse_queries(
    dataset: TrajectoryDataset,
    count: int,
    length: int,
    *,
    min_exact: int = 2,
    max_exact: int = 10,
    seed: int = 0,
    attempts: int = 4000,
) -> List[List[int]]:
    """Queries whose exact-occurrence count lies in ``[min_exact,
    max_exact]`` — the sparse travel-time setting of §6.2.1 (the paper uses
    "< 10 exact matches"; at least 2 are needed for the leave-one-out
    protocol)."""
    rng = random.Random(seed)
    eligible = [
        tid for tid in range(len(dataset)) if len(dataset.symbols(tid)) >= length
    ]
    if not eligible:
        raise ValueError(f"no trajectory is >= {length} symbols long")
    out: List[List[int]] = []
    seen: set = set()
    for _ in range(attempts):
        if len(out) >= count:
            break
        tid = rng.choice(eligible)
        symbols = dataset.symbols(tid)
        s = rng.randrange(0, len(symbols) - length + 1)
        query = tuple(symbols[s : s + length])
        if query in seen:
            continue
        seen.add(query)
        hits = find_exact_occurrences(dataset, query)
        if min_exact <= len(hits) <= max_exact:
            out.append(list(query))
    return out
