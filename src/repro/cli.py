"""Command-line interface: ``python -m repro <command>``.

Gives downstream users a no-code path through the full workflow:

- ``generate-network`` — synthesize a road network to a file;
- ``generate-trips`` — synthesize a trajectory dataset on a network;
- ``stats`` — Table-2-style statistics of a dataset;
- ``query`` — run one subtrajectory similarity query;
- ``travel-time`` — estimate the travel time of a path;
- ``index build`` / ``index inspect`` — freeze a dataset's inverted
  index into the mmap-able single-file format (``docs/INDEX_FORMAT.md``),
  optionally sharded, and examine an index file's header;
- ``serve`` — run the JSON-over-HTTP query service (``--self-test``
  starts it on a synthetic workload, issues one or more HTTP queries,
  and exits; ``--index`` serves from a prebuilt frozen index;
  ``--backend remote --shard-map`` fans shards out to standalone worker
  nodes over fault-tolerant sockets);
- ``worker`` — run one standalone shard worker node
  (``--listen HOST:PORT``); a ``serve --shard-map`` frontend connects,
  ships it a shard, and reconnects through node restarts;
- ``trace`` — fetch completed traces from a running server's flight
  recorder (``/debug/traces``) and render them as span trees.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.apps.travel_time import TravelTimeEstimator
from repro.core.engine import (
    DEFAULT_SUBSTITUTION_CACHE,
    DEFAULT_TRIE_CACHE,
    DEFAULT_TRIE_CACHE_BYTES,
    SubtrajectorySearch,
)
from repro.core.temporal import TimeInterval
from repro.distance.costs import (
    CostModel,
    EDRCost,
    ERPCost,
    LevenshteinCost,
    NetEDRCost,
    NetERPCost,
    SURSCost,
)
from repro.network.generators import grid_city, radial_ring_city, random_city
from repro.network.graph import RoadNetwork
from repro.network.io import load_network, save_network
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator

__all__ = ["main"]


def _build_cost_model(args: argparse.Namespace, graph: RoadNetwork) -> CostModel:
    name = args.function.lower()
    if name == "lev":
        return LevenshteinCost(args.representation)
    if name == "edr":
        return EDRCost(graph, epsilon=args.epsilon)
    if name == "erp":
        return ERPCost(graph, eta=args.eta)
    if name == "netedr":
        return NetEDRCost(graph)
    if name == "neterp":
        return NetERPCost(graph, g_del=args.g_del)
    if name == "surs":
        return SURSCost(graph)
    raise SystemExit(f"unknown similarity function {args.function!r}")


def _parse_symbols(text: str) -> List[int]:
    try:
        return [int(tok) for tok in text.replace(",", " ").split()]
    except ValueError as exc:
        raise SystemExit(f"bad symbol list {text!r}: {exc}") from exc


def _add_cost_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--function",
        default="edr",
        choices=["lev", "edr", "erp", "netedr", "neterp", "surs"],
        help="similarity function (default: edr)",
    )
    parser.add_argument(
        "--representation",
        default="vertex",
        choices=["vertex", "edge"],
        help="symbol alphabet; surs requires edge (default: vertex)",
    )
    parser.add_argument("--epsilon", type=float, default=100.0, help="EDR threshold")
    parser.add_argument("--eta", type=float, default=0.01, help="ERP/NetERP eta")
    parser.add_argument("--g-del", type=float, default=2000.0, help="NetERP del cost")


def _add_dp_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dp-backend",
        default="auto",
        choices=["auto", "numpy", "python"],
        help="verification DP backend: 'auto' picks per query (pure-Python "
        "for short queries over vectorizable cost models, array-native "
        "numpy everywhere else), 'numpy'/'python' force one backend "
        "(default: auto; identical results either way)",
    )
    parser.add_argument(
        "--substitution-cache-size",
        type=int,
        default=DEFAULT_SUBSTITUTION_CACHE,
        help="engine-level LRU of per-query substitution matrices; "
        "repeated queries skip substitution-row computation on a hit "
        f"(0 disables; default: {DEFAULT_SUBSTITUTION_CACHE} entries "
        "per engine/shard)",
    )
    parser.add_argument(
        "--trie-cache-size",
        type=int,
        default=DEFAULT_TRIE_CACHE,
        help="engine-level LRU of per-query verification tries; repeated "
        "queries (tau/time-window variations included) start with warm "
        "DP columns and only compute the cold frontier (0 disables; "
        f"default: {DEFAULT_TRIE_CACHE} entries, shared across "
        "in-process shards)",
    )
    parser.add_argument(
        "--trie-cache-mb",
        type=float,
        default=DEFAULT_TRIE_CACHE_BYTES / (1024 * 1024),
        help="byte budget (MiB) across all cached trie arenas; LRU "
        "entries are shed past it after each verification (default: "
        f"{DEFAULT_TRIE_CACHE_BYTES // (1024 * 1024)} MiB)",
    )


def _cmd_generate_network(args: argparse.Namespace) -> int:
    if args.style == "grid":
        graph = grid_city(args.rows, args.cols, seed=args.seed)
    elif args.style == "radial":
        graph = radial_ring_city(args.rows, args.cols, seed=args.seed)
    else:
        graph = random_city(args.rows * args.cols, seed=args.seed)
    save_network(graph, args.out)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges to {args.out}")
    return 0


def _cmd_generate_trips(args: argparse.Namespace) -> int:
    graph = load_network(args.network)
    gen = TripGenerator(graph, seed=args.seed)
    dataset = TrajectoryDataset(graph)
    dataset.extend(
        gen.generate(args.count, min_length=args.min_length, max_length=args.max_length)
    )
    dataset.save(args.out)
    print(f"wrote {len(dataset)} trajectories to {args.out}")
    return 0


def _load(args: argparse.Namespace, representation: str) -> tuple:
    graph = load_network(args.network)
    dataset = TrajectoryDataset.load(graph, args.trips)
    if representation == "edge":
        edge_ds = TrajectoryDataset(graph, "edge")
        for t in dataset:
            edge_ds.add(t)
        dataset = edge_ds
    return graph, dataset


def _cmd_stats(args: argparse.Namespace) -> int:
    _, dataset = _load(args, "vertex")
    print(json.dumps(dataset.statistics(), indent=2))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph, dataset = _load(args, args.representation)
    costs = _build_cost_model(args, graph)
    if costs.representation != dataset.representation:
        raise SystemExit(
            f"{args.function} needs --representation {costs.representation}"
        )
    engine = SubtrajectorySearch(
        dataset,
        costs,
        dp_backend=args.dp_backend,
        substitution_cache_size=args.substitution_cache_size,
        trie_cache_size=args.trie_cache_size,
        trie_cache_bytes=int(args.trie_cache_mb * 1024 * 1024),
    )
    query = _parse_symbols(args.query)
    interval = None
    if args.time_from is not None or args.time_to is not None:
        if args.time_from is None or args.time_to is None:
            raise SystemExit("--time-from and --time-to must be given together")
        interval = TimeInterval(args.time_from, args.time_to)
    if args.top_k is not None:
        if args.top_k <= 0:
            raise SystemExit("--top-k must be positive")
        if args.tau is not None:
            raise SystemExit("--top-k and --tau are mutually exclusive")
        if interval is not None:
            raise SystemExit("--top-k does not support temporal constraints")
        result = engine.topk(query, args.top_k)
        out = {
            "k": result.k,
            "ties_at_k": result.ties_at_k,
            "tau_rounds": result.tau_rounds,
            "tau_final": result.tau_final,
            "swept": result.swept,
            "candidates": result.num_candidates,
            "seconds": result.total_seconds,
            "results": [
                {
                    "rank": rank,
                    "trajectory": m.trajectory_id,
                    "start": m.start,
                    "end": m.end,
                    "distance": m.distance,
                }
                for rank, m in enumerate(result.matches[: args.limit], start=1)
            ],
            "total_results": len(result.matches),
        }
        print(json.dumps(out, indent=2))
        return 0
    result = engine.query(
        query,
        tau=args.tau,
        tau_ratio=args.tau_ratio if args.tau is None else None,
        time_interval=interval,
    )
    out = {
        "tau": result.tau,
        "candidates": result.num_candidates,
        "seconds": result.total_seconds,
        "matches": [
            {
                "trajectory": m.trajectory_id,
                "start": m.start,
                "end": m.end,
                "distance": m.distance,
            }
            for m in result.matches[: args.limit]
        ],
        "total_matches": len(result.matches),
    }
    print(json.dumps(out, indent=2))
    return 0


def _cmd_travel_time(args: argparse.Namespace) -> int:
    graph, dataset = _load(args, args.representation)
    costs = _build_cost_model(args, graph)
    engine = SubtrajectorySearch(dataset, costs)
    estimator = TravelTimeEstimator(dataset, engine=engine)
    query = _parse_symbols(args.query)
    truths = estimator.ground_truths(query)
    estimate = estimator.estimate(query, tau_ratio=args.tau_ratio)
    print(
        json.dumps(
            {
                "exact_occurrences": len(truths),
                "exact_mean": sum(truths) / len(truths) if truths else None,
                "estimate": None if estimate != estimate else estimate,
            },
            indent=2,
        )
    )
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.core.frozen import (
        FrozenInvertedIndex,
        round_robin_shards,
        shard_index_path,
    )

    _, dataset = _load(args, args.representation)
    num_shards = max(1, min(args.shards, len(dataset)))
    shards = (
        [dataset]
        if num_shards == 1
        else round_robin_shards(dataset, num_shards)
    )
    files = []
    total_bytes = 0
    build_seconds = 0.0
    total_postings = 0
    for i, shard in enumerate(shards):
        frozen = FrozenInvertedIndex.freeze(
            shard,
            sort_by_departure=args.sort_by_departure,
            shard=None if num_shards == 1 else (i, num_shards),
            global_trajectories=len(dataset),
        )
        path = shard_index_path(args.out, i, num_shards)
        total_bytes += frozen.save(path)
        build_seconds += frozen.build_seconds
        total_postings += frozen.num_postings
        files.append(path)
    print(
        json.dumps(
            {
                "trajectories": len(dataset),
                "postings": total_postings,
                "shards": num_shards,
                "files": files,
                "file_bytes": total_bytes,
                "build_seconds": build_seconds,
            },
            indent=2,
        )
    )
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    from repro.core.frozen import IndexFormatError, inspect_index

    try:
        print(json.dumps(inspect_index(args.path), indent=2))
    except (OSError, IndexFormatError) as exc:
        raise SystemExit(f"cannot inspect {args.path}: {exc}") from exc
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.partitioned import PartitionedSubtrajectorySearch
    from repro.service import QueryService, ServiceServer

    if args.network is not None:
        # --self-test with real files smoke-tests the actual deployment.
        if args.trips is None:
            raise SystemExit("--trips is required with --network")
        graph, dataset = _load(args, args.representation)
    elif args.self_test:
        graph = grid_city(8, 8, seed=3)
        dataset = TrajectoryDataset(graph, args.representation)
        gen = TripGenerator(graph, seed=4)
        dataset.extend(gen.generate(40, min_length=6, max_length=25))
    else:
        raise SystemExit("--network/--trips are required (or pass --self-test)")
    costs = _build_cost_model(args, graph)
    if costs.representation != dataset.representation:
        raise SystemExit(
            f"{args.function} needs --representation {costs.representation}"
        )
    index_kwargs = (
        {}
        if args.index is None
        else {"index_backend": "frozen", "index_path": args.index}
    )
    if getattr(args, "fault_plan", None) is not None:
        from repro.faultinject import load_fault_plan

        if args.backend not in ("processes", "remote"):
            raise SystemExit(
                "--fault-plan requires --backend processes or remote"
            )
        index_kwargs["fault_plan"] = load_fault_plan(args.fault_plan)
    if args.backend == "remote":
        from repro.core.remote import load_shard_map

        if args.shard_map is None:
            raise SystemExit("--backend remote requires --shard-map")
        if args.index is not None:
            raise SystemExit(
                "--index does not combine with --backend remote (worker "
                "nodes build their engines from the shipped shard snapshot)"
            )
        try:
            index_kwargs["shard_map"] = load_shard_map(args.shard_map)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bad --shard-map: {exc}") from exc
    elif args.shard_map is not None:
        raise SystemExit("--shard-map requires --backend remote")
    if args.shards > 1 or args.backend in ("processes", "remote"):
        # "threads" fans shards out on an engine-owned thread pool
        # (GIL-bound verification); "processes" builds one long-lived
        # worker process per shard so verification escapes the GIL —
        # honored even for a single shard (the query still runs in an
        # isolated worker process rather than being silently dropped);
        # "remote" connects to standalone worker nodes from --shard-map
        # (the map's length is the shard count).
        engine = PartitionedSubtrajectorySearch(
            dataset,
            costs,
            num_shards=args.shards,
            backend=args.backend,
            dp_backend=args.dp_backend,
            substitution_cache_size=args.substitution_cache_size,
            trie_cache_size=args.trie_cache_size,
            trie_cache_bytes=int(args.trie_cache_mb * 1024 * 1024),
            connect_timeout=args.connect_timeout,
            **index_kwargs,
        )
    else:
        engine = SubtrajectorySearch(
            dataset,
            costs,
            dp_backend=args.dp_backend,
            substitution_cache_size=args.substitution_cache_size,
            trie_cache_size=args.trie_cache_size,
            trie_cache_bytes=int(args.trie_cache_mb * 1024 * 1024),
            **index_kwargs,
        )
    service = QueryService(
        engine,
        max_workers=args.workers,
        max_pending=args.max_pending,
        default_deadline=args.deadline,
        cache_size=args.cache_size,
        batching=not args.no_batching,
        trace_sample_rate=args.trace_sample_rate,
        slow_query_seconds=(
            None if args.slow_query_ms is None else args.slow_query_ms / 1000.0
        ),
    )
    try:
        port = 0 if args.self_test else args.port
        server = ServiceServer(service, host=args.host, port=port)
        if args.self_test:
            return _serve_self_test(
                server, service, dataset, costs, queries=args.self_test_queries
            )
        print(
            f"serving {len(dataset)} trajectories on {server.url} "
            f"(backend={getattr(engine, 'backend', 'single')}, "
            f"dp_backend={args.dp_backend})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
        return 0
    finally:
        # The CLI owns the engine: terminate shard worker processes (and
        # the fan-out thread pool) no matter how serving ended.  The
        # workers-module atexit hook is the backstop, not the plan.
        service.close(close_engine=True)


def _serve_self_test(server, service, dataset, costs, *, queries: int = 1) -> int:
    """Start the server, answer ``queries`` HTTP queries, verify each
    against the engine, and exit (the CI smoke path — with a fault plan
    and several queries this is the chaos drill: every query must come
    back 200 and match the engine even while nodes die mid-traffic).

    After the range loop, one top-k query is posted and checked
    bit-for-bit against a fresh single-engine oracle (independent of the
    serving backend), plus a shallower repeat that must come back from
    the cache — the serving tier's "k' <= k reuse" rule exercised over
    real HTTP.  Running top-k *after* the range loop keeps fault-plan
    request ordinals for the chaos drills unchanged."""
    import urllib.request

    def post_query(payload: dict) -> dict:
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read().decode("utf-8"))

    server.start()
    try:
        answered = 0
        seconds = 0.0
        last = {}
        for i in range(max(1, queries)):
            path = list(dataset.symbols(i % len(dataset)))[:6]
            answer = post_query({"path": path, "tau_ratio": 0.3})
            direct = service.engine.query(path, tau_ratio=0.3)
            if answer["total_matches"] != len(direct.matches):
                print(
                    f"self-test FAILED on query {i}: HTTP reported "
                    f"{answer['total_matches']} matches, engine found "
                    f"{len(direct.matches)}"
                )
                return 1
            answered += 1
            seconds += float(answer["seconds"])
            last = answer
        # Top-k cell: exactness against a single-engine oracle built
        # from the same dataset/costs, then cached truncation reuse.
        from repro.core.topk import topk_search

        path = list(dataset.symbols(0))[:6]
        k = min(5, len(dataset))
        answer = post_query({"path": path, "k": k})
        oracle = topk_search(SubtrajectorySearch(dataset, costs), path, k)
        got = [
            (r["trajectory"], r["start"], r["end"], r["distance"])
            for r in answer["results"]
        ]
        want = [
            (m.trajectory_id, m.start, m.end, m.distance) for m in oracle
        ]
        if got != want:
            print(
                f"self-test FAILED on top-{k}: HTTP ranking {got} != "
                f"oracle {want}"
            )
            return 1
        smaller = max(1, k - 2)
        repeat = post_query({"path": path, "k": smaller})
        if service.cache.capacity > 0 and not repeat["cached"]:
            print(
                f"self-test FAILED: top-{smaller} repeat was not served "
                f"from the cached top-{k} answer"
            )
            return 1
        if [r["distance"] for r in repeat["results"]] != [
            r["distance"] for r in answer["results"][:smaller]
        ]:
            print("self-test FAILED: cached truncation changed the ranking")
            return 1
        answered += 2
        summary = {
            "self_test": "ok",
            "url": server.url,
            "backend": getattr(service.engine, "backend", "single"),
            "queries": answered,
            "total_matches": last.get("total_matches"),
            "topk_results": len(answer["results"]),
            "topk_tau_rounds": answer["tau_rounds"],
            "topk_cached_repeat": repeat["cached"],
            "seconds": seconds,
        }
        restarts_of = getattr(service.engine, "restarts_total", None)
        if restarts_of is not None:
            summary["restarts_total"] = restarts_of()
        print(json.dumps(summary, indent=2))
        return 0
    finally:
        server.shutdown()


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.remote import run_worker_node
    from repro.core.transport import parse_hostport

    try:
        host, port = parse_hostport(args.listen)
    except ValueError as exc:
        raise SystemExit(f"bad --listen address: {exc}") from exc
    if args.restarts < 0:
        raise SystemExit("--restarts must be >= 0")
    try:
        return run_worker_node(host, port, restarts=args.restarts)
    except KeyboardInterrupt:
        return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import urllib.request

    from repro.obs import render_trace

    order = "slowest" if args.slowest else "recent"
    url = (
        f"{args.url.rstrip('/')}/debug/traces"
        f"?order={order}&limit={args.count}"
    )
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except OSError as exc:
        raise SystemExit(f"cannot reach {url}: {exc}") from exc
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    traces = payload.get("traces", [])
    if not traces:
        stats = payload.get("stats", {})
        print(
            "no traces recorded"
            f" (recorded={stats.get('recorded', 0)};"
            " is the server running with --trace-sample-rate > 0"
            " or --slow-query-ms set?)"
        )
        return 0
    for i, trace in enumerate(traces):
        if i:
            print()
        duration_ms = float(trace.get("duration", 0.0)) * 1e3
        print(f"# {order} {i + 1}/{len(traces)}  ({duration_ms:.3f} ms)")
        print(render_trace(trace))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.report import render_markdown

    results_dir = Path(args.results)
    if not results_dir.is_dir():
        raise SystemExit(f"no such results directory: {results_dir}")
    print(render_markdown(results_dir))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subtrajectory similarity search in road networks under WED",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate-network", help="synthesize a road network")
    p.add_argument("--style", default="grid", choices=["grid", "radial", "random"])
    p.add_argument("--rows", type=int, default=12)
    p.add_argument("--cols", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate_network)

    p = sub.add_parser("generate-trips", help="synthesize trajectories")
    p.add_argument("--network", required=True)
    p.add_argument("--count", type=int, default=500)
    p.add_argument("--min-length", type=int, default=8)
    p.add_argument("--max-length", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate_trips)

    p = sub.add_parser("stats", help="dataset statistics")
    p.add_argument("--network", required=True)
    p.add_argument("--trips", required=True)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("query", help="run one similarity query")
    p.add_argument("--network", required=True)
    p.add_argument("--trips", required=True)
    p.add_argument("--query", required=True, help="symbols, e.g. '3,4,5'")
    p.add_argument("--tau", type=float, default=None)
    p.add_argument("--tau-ratio", type=float, default=0.1)
    p.add_argument(
        "--top-k",
        type=int,
        default=None,
        metavar="K",
        help="top-k mode: return the K best matches (one per trajectory) "
        "ranked by distance instead of a threshold range query; mutually "
        "exclusive with --tau and --time-from/--time-to",
    )
    p.add_argument("--time-from", type=float, default=None)
    p.add_argument("--time-to", type=float, default=None)
    p.add_argument("--limit", type=int, default=20, help="max matches printed")
    _add_cost_options(p)
    _add_dp_backend_option(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("travel-time", help="estimate travel time of a path")
    p.add_argument("--network", required=True)
    p.add_argument("--trips", required=True)
    p.add_argument("--query", required=True)
    p.add_argument("--tau-ratio", type=float, default=0.1)
    _add_cost_options(p)
    p.set_defaults(func=_cmd_travel_time)

    p = sub.add_parser("serve", help="run the JSON-over-HTTP query service")
    p.add_argument("--network", default=None)
    p.add_argument("--trips", default=None)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--shards", type=int, default=1, help="engine shards (>1 fans out)")
    p.add_argument(
        "--backend",
        default="threads",
        choices=["threads", "processes", "remote"],
        help="shard fan-out backend: 'threads' runs shard queries on the "
        "executor thread pool (GIL-bound verification); 'processes' runs "
        "one worker process per shard; 'remote' connects to standalone "
        "'repro worker' nodes listed in --shard-map (default: threads)",
    )
    p.add_argument(
        "--shard-map",
        default=None,
        help="remote backend only: worker-node addresses, one per shard "
        "in shard order — a path to a JSON file or inline JSON (leading "
        "'[' or '{'), e.g. '[\"127.0.0.1:7701\", \"127.0.0.1:7702\"]' or "
        "'{\"nodes\": [...]}'.  The map's length is the shard count",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        help="remote backend: total budget (s) for connecting to a "
        "worker node, including reconnects racing a node restart "
        "(default: 5)",
    )
    p.add_argument("--workers", type=int, default=4, help="executor thread-pool size")
    p.add_argument("--max-pending", type=int, default=64, help="admission limit")
    p.add_argument(
        "--deadline", type=float, default=None, help="default per-query deadline (s)"
    )
    p.add_argument("--cache-size", type=int, default=1024, help="LRU entries (0 = off)")
    p.add_argument(
        "--no-batching", action="store_true", help="disable request coalescing"
    )
    p.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="fraction of requests traced end-to-end into the flight "
        "recorder (0 = off, the near-zero-overhead default; slow queries "
        "are always recorded when --slow-query-ms is set)",
    )
    p.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="log a one-line JSON record (logger 'repro.slowlog') and "
        "force-record a trace for every query slower than this many "
        "milliseconds (default: off)",
    )
    p.add_argument(
        "--index",
        default=None,
        help="serve from a prebuilt frozen index ('repro index build'): "
        "the file path for one shard, or the build stem for a sharded "
        "deployment (shard k opens <stem>.shard<k>-of-<N>).  Workers "
        "mmap the file in O(1) and the OS page cache shares one copy "
        "across processes; see docs/INDEX_FORMAT.md",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="deterministic fault injection for the processes and remote "
        "backends: a path to a FaultPlan JSON file, or the JSON object "
        "inline (leading '{').  Chaos drills only — kills/delays/drops "
        "shard workers, and on the remote backend injects network faults "
        "(conn_drop/conn_hang/slow_link_ms/short_write) on a seeded "
        "schedule; see repro.faultinject",
    )
    p.add_argument(
        "--self-test",
        action="store_true",
        help="serve a synthetic workload, answer --self-test-queries "
        "HTTP queries, and exit",
    )
    p.add_argument(
        "--self-test-queries",
        type=int,
        default=1,
        help="queries the self-test answers and verifies (default: 1; "
        "raise it for chaos drills so faults land mid-traffic)",
    )
    _add_cost_options(p)
    _add_dp_backend_option(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run one standalone shard worker node (the remote half of "
        "'serve --backend remote')",
    )
    p.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on; the address must also appear in the "
        "frontend's --shard-map",
    )
    p.add_argument(
        "--restarts",
        type=int,
        default=0,
        help="respawn the serving process up to N times when it dies "
        "(chaos drills; 0 = serve in-process and leave restarts to an "
        "external supervisor)",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "index", help="build / inspect frozen mmap-able index files"
    )
    index_sub = p.add_subparsers(dest="index_command", required=True)

    p = index_sub.add_parser(
        "build",
        help="freeze a dataset's inverted index to the single-file "
        "mmap-able format (docs/INDEX_FORMAT.md)",
    )
    p.add_argument("--network", required=True)
    p.add_argument("--trips", required=True)
    p.add_argument("--out", required=True, help="output path (stem when sharded)")
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="write one file per round-robin shard "
        "(<out>.shard<k>-of-<N>; must match 'serve --shards')",
    )
    p.add_argument(
        "--representation",
        default="vertex",
        choices=["vertex", "edge"],
        help="symbol alphabet to index (default: vertex)",
    )
    p.add_argument(
        "--sort-by-departure",
        action="store_true",
        help="order postings by trajectory departure time (temporal "
        "pruning, §4.3; the result is closed to online inserts)",
    )
    p.set_defaults(func=_cmd_index_build)

    p = index_sub.add_parser(
        "inspect", help="print a frozen index file's header as JSON"
    )
    p.add_argument("path", help="index file to inspect")
    p.set_defaults(func=_cmd_index_inspect)

    p = sub.add_parser(
        "trace", help="fetch and render traces from a running server"
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8080", help="server base URL"
    )
    p.add_argument(
        "--slowest",
        action="store_true",
        help="show the slowest recorded traces instead of the most recent",
    )
    p.add_argument(
        "-n", "--count", type=int, default=5, help="traces to fetch"
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the raw /debug/traces JSON instead of rendered trees",
    )
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "report", help="render recorded benchmark results as markdown"
    )
    p.add_argument("--results", default="results", help="results directory")
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
