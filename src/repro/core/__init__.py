"""The paper's core contribution: subsequence filtering + bidirectional-trie
verification for subtrajectory similarity search under WED.

Public entry point: :class:`~repro.core.engine.SubtrajectorySearch`.
"""

from repro.core.cancellation import CancelToken
from repro.core.engine import (
    QueryResult,
    SubtrajectorySearch,
    query_signature,
    topk_signature,
)
from repro.core.eta_tuning import tune_eta
from repro.core.filtering import QueryElement, query_profile, tau_from_ratio
from repro.core.frozen import (
    DeltaOverlayIndex,
    FrozenInvertedIndex,
    IndexFormatError,
    inspect_index,
    round_robin_shards,
    shard_index_path,
)
from repro.core.invindex import InvertedIndex
from repro.core.mincand import (
    mincand_all,
    mincand_exact,
    mincand_greedy,
    mincand_prefix,
)
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.results import Match, MatchSet
from repro.core.temporal import TimeInterval
from repro.core.topk import TopKResult, topk_search
from repro.core.workers import ShardWorkerPool

__all__ = [
    "CancelToken",
    "DeltaOverlayIndex",
    "FrozenInvertedIndex",
    "IndexFormatError",
    "InvertedIndex",
    "Match",
    "MatchSet",
    "PartitionedSubtrajectorySearch",
    "QueryElement",
    "QueryResult",
    "ShardWorkerPool",
    "SubtrajectorySearch",
    "TimeInterval",
    "TopKResult",
    "inspect_index",
    "mincand_all",
    "mincand_exact",
    "mincand_greedy",
    "mincand_prefix",
    "query_profile",
    "query_signature",
    "round_robin_shards",
    "shard_index_path",
    "tau_from_ratio",
    "topk_search",
    "topk_signature",
    "tune_eta",
]
