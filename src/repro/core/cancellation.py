"""Cooperative cancellation for long-running queries.

Verification dominates query cost (§6) and, once started, used to run to
completion even after its caller stopped waiting — a deadline miss in the
serving layer abandoned the future but the shard task kept burning CPU.
:class:`CancelToken` closes that gap cooperatively: the execution layer
creates one token per query, hot loops (the candidate loop of
:meth:`~repro.core.verification.Verifier.verify_all`, the scan fallback,
the Smith–Waterman oracle) poll it between units of work, and the first
poll after expiry/cancellation raises
:class:`~repro.exceptions.QueryCancelledError`.

A token combines two triggers:

- a *deadline*: ``budget`` seconds from creation on the monotonic clock
  (polled, so no timers or signals are involved);
- an explicit :meth:`cancel` call (e.g. the executor noticed the client
  gave up, or a sibling shard already failed the query).

Tokens are duck-typed at the check sites — anything with a ``cancelled()
-> bool`` method works.  The cross-process backend
(:mod:`repro.core.workers`) exploits this: it rebuilds a worker-side
token from the remaining budget plus a shared cancellation flag, so the
same engine code cancels identically on both sides of a process
boundary.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Optional

from repro.exceptions import QueryCancelledError

__all__ = ["CancelToken", "raise_if_cancelled"]


class CancelToken:
    """A poll-based cancellation token with an optional deadline.

    ``budget`` is the deadline in seconds from now (``None`` = no
    deadline).  Thread-safe: any thread may :meth:`cancel`; any number of
    threads may poll :meth:`cancelled`.
    """

    __slots__ = ("_event", "_expires")

    def __init__(self, budget: Optional[float] = None) -> None:
        if budget is not None and budget <= 0:
            raise ValueError("budget must be positive")
        self._event = threading.Event()
        self._expires = None if budget is None else monotonic() + budget

    @property
    def expires(self) -> Optional[float]:
        """Monotonic-clock expiry, or ``None`` for no deadline."""
        return self._expires

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (possibly negative), or ``None``."""
        return None if self._expires is None else self._expires - monotonic()

    def cancel(self) -> None:
        """Trip the token explicitly (idempotent)."""
        self._event.set()

    def cancelled(self) -> bool:
        """True once cancelled or past the deadline.  Never un-trips."""
        if self._event.is_set():
            return True
        if self._expires is not None and monotonic() >= self._expires:
            self._event.set()  # latch, so later polls skip the clock read
            return True
        return False


def raise_if_cancelled(cancel, where: str = "query") -> None:
    """Raise :class:`QueryCancelledError` if ``cancel`` (a token or
    ``None``) has tripped.  The common guard at stage boundaries."""
    if cancel is not None and cancel.cancelled():
        raise QueryCancelledError(f"{where} cancelled (deadline expired or caller gone)")
