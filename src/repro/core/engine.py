"""The subtrajectory similarity search engine (Algorithm 2).

:class:`SubtrajectorySearch` indexes a :class:`TrajectoryDataset` once and
answers queries ``(Q, wed, tau)`` exactly:

1. *filter* — profile the query (``B(q)``, ``c(q)``, ``N_q``), pick a
   tau-subsequence with the configured selector (greedy 2-approximation by
   default — Algorithm 1), and collect candidates ``(id, j, iq)`` from the
   postings lists of all substitution neighbors;
2. *verify* — run bidirectional local verification with trie caching
   (Algorithms 3–6), or per-trajectory Smith–Waterman when configured as
   the OSF-SW ablation.

The result carries per-stage wall-clock timings (Table 4), the candidate
count (Fig. 11) and the verification counters (Table 5), so the benchmark
harness reads everything from one object.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Literal, Optional, Sequence, Tuple

from repro.core.cancellation import raise_if_cancelled
from repro.core.filtering import QueryElement, query_profile, tau_from_ratio
from repro.core.frozen import DeltaOverlayIndex, FrozenInvertedIndex
from repro.core.invindex import InvertedIndex
from repro.core.mincand import (
    mincand_all,
    mincand_exact,
    mincand_greedy,
    mincand_prefix,
)
from repro.core.results import Match, MatchSet
from repro.core.temporal import (
    TemporalMode,
    TimeInterval,
    filter_candidates,
    match_satisfies,
)
from repro.core.trie import TrieCache
from repro.core.verification import (
    Candidate,
    VerificationStats,
    Verifier,
    choose_dp_backend,
)
from repro.distance.costs import SubstitutionMatrixCache
from repro.distance.smith_waterman import all_matches
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = [
    "QueryResult",
    "SubtrajectorySearch",
    "cost_model_id",
    "query_signature",
    "topk_signature",
]

logger = logging.getLogger(__name__)

Selector = Literal["greedy", "exact", "prefix", "all"]
VerificationMode = Literal["trie", "local", "sw"]
DP_BACKENDS = ("python", "numpy", "auto")
INDEX_BACKENDS = ("dict", "frozen")

#: default capacity of the engine-level SubstitutionMatrix LRU (entries).
#: Sized for the serving layer's zipf repeat traffic (the hot head of the
#: query distribution).  The bound is entry-count, not bytes: each entry
#: pins its lazily-grown row tables (proportional to distinct symbols the
#: query's verifications touched), which can reach tens of MB per entry
#: on paper-scale workloads — deployments with very diverse traffic or
#: tight memory should lower this or set it to 0 (per-query matrices,
#: the pre-cache behaviour).
DEFAULT_SUBSTITUTION_CACHE = 32

#: default capacity (entries) of the engine-level TrieCache — warm DP
#: columns across repeated queries.  Sized like the substitution LRU (the
#: same zipf hot head), but additionally byte-budgeted: trie arenas keep
#: growing while cached, so the binding limit under heavy traffic is
#: usually DEFAULT_TRIE_CACHE_BYTES, not the entry count.
DEFAULT_TRIE_CACHE = 32

#: default byte budget across all cached trie arenas (per engine/shard
#: group).  Re-accounted after every cached verification; LRU entries are
#: shed until the total fits (see TrieCache.reconcile).
DEFAULT_TRIE_CACHE_BYTES = 256 * 1024 * 1024

_SELECTORS: Dict[str, Callable] = {
    "greedy": mincand_greedy,
    "exact": mincand_exact,
    "prefix": mincand_prefix,
    "all": mincand_all,
}


@dataclass(slots=True)
class QueryResult:
    """Answer plus instrumentation for one query."""

    matches: List[Match]
    tau: float
    subsequence: List[QueryElement]
    num_candidates: int
    mincand_seconds: float
    lookup_seconds: float
    verify_seconds: float
    verification: VerificationStats
    used_fallback: bool = False
    #: DP backend the verification stage actually ran ("python"/"numpy";
    #: empty for the SW mode and the scan fallback, which run no column
    #: DP) — how the ``dp_backend="auto"`` choice is observed end to end.
    dp_backend_used: str = ""
    #: ndarrays materialized on the verification hot path (see
    #: :attr:`repro.core.verification.Verifier.dp_array_allocations`);
    #: deliberately outside VerificationStats, which is backend-identical.
    dp_array_allocations: int = 0
    #: what the cross-query TrieCache did for this query: ``"hit"`` (warm
    #: columns reused), ``"miss"`` (verified cold, warmed the cache),
    #: ``"off"`` (cache disabled), or ``""`` when the trie-cache path was
    #: not taken at all (sw mode, python backend, scan fallback).  Merged
    #: shard results join the distinct per-shard statuses with ``+``.
    trie_cache_status: str = ""
    #: DP kernel launches during verification (batched rounds plus
    #: single-column steps; 0 for the python backend and a fully-warm
    #: rewalk) — like dp_array_allocations, outside VerificationStats.
    dp_rounds: int = 0
    #: False when this is a *partial* answer: one or more shards were
    #: unavailable and the caller opted into graceful degradation
    #: (``allow_partial``), so matches from the shards listed in
    #: :attr:`degraded_shards` are missing.  Partial answers are never
    #: cached as complete by the serving layer.
    complete: bool = True
    #: shard indices whose results are missing from a partial answer.
    degraded_shards: Tuple[int, ...] = ()

    @property
    def total_seconds(self) -> float:
        """End-to-end query latency across the three stages."""
        return self.mincand_seconds + self.lookup_seconds + self.verify_seconds

    def __len__(self) -> int:
        return len(self.matches)


def cost_model_id(costs) -> str:
    """A stable, human-readable identifier for a cost-model configuration.

    Combines the class name with every public *scalar* attribute (epsilon,
    eta, g_del, representation, ...).  Non-scalar state — the underlying
    graph, a custom ERP reference point — is NOT captured, so two models
    differing only in such state collide; a cache keyed on this id must
    therefore be scoped to one engine/cost-model instance (which is how
    :class:`repro.service.QueryService` uses it).  Used as the cost-model
    component of :func:`query_signature`.
    """
    params = [
        f"{key}={value!r}"
        for key, value in sorted(vars(costs).items())
        if not key.startswith("_") and isinstance(value, (bool, int, float, str))
    ]
    return f"{type(costs).__name__}({', '.join(params)})"


def query_signature(
    query: Sequence[int],
    costs,
    *,
    tau: Optional[float] = None,
    tau_ratio: Optional[float] = None,
    time_interval: Optional[TimeInterval] = None,
    temporal_mode: TemporalMode = "overlap",
) -> tuple:
    """A hashable, normalized key identifying one query's *answer*.

    Two invocations with the same signature against the same engine are
    guaranteed the same result set on an unchanged dataset, which is what
    the serving layer's result cache and request coalescing key on (the
    cost-model component only covers scalar configuration — see
    :func:`cost_model_id` — so signatures are comparable within one
    engine/cost-model scope, not across arbitrary models).  The signature
    covers the query
    path, the cost-model configuration, the threshold parameterization
    (``tau`` and ``tau_ratio`` are kept distinct — the ratio resolves
    against the query, not the dataset) and the temporal constraint.  The
    ``temporal_filter`` evaluation strategy (§4.3) is deliberately
    excluded: TF vs no-TF changes timing, never answers.
    """
    if (tau is None) == (tau_ratio is None):
        raise QueryError("exactly one of tau / tau_ratio must be given")
    threshold = (
        ("tau", float(tau)) if tau is not None else ("tau_ratio", float(tau_ratio))
    )
    constraint = (
        None
        if time_interval is None
        else (float(time_interval.start), float(time_interval.end), str(temporal_mode))
    )
    return (
        "q1",
        tuple(int(s) for s in query),
        cost_model_id(costs),
        threshold,
        constraint,
    )


def topk_signature(query: Sequence[int], costs) -> tuple:
    """A hashable key identifying one top-k query's *ranking*.

    Deliberately excludes ``k`` and the tau-expansion parameters
    (``initial_tau_ratio`` / ``growth``): the full per-trajectory ranking
    depends only on the query path and the cost model, so a cached top-k'
    answer at ``k' >= k`` serves ``k`` by truncation — the serving
    layer's reuse rule keys on this signature and compares ``k`` inside
    the cache entry.  The same :func:`cost_model_id` scoping caveat as
    :func:`query_signature` applies.
    """
    return ("topk1", tuple(int(s) for s in query), cost_model_id(costs))


class SubtrajectorySearch:
    """Exact subtrajectory similarity search under any WED cost model.

    Parameters
    ----------
    dataset:
        Trajectories to index; its representation (vertex/edge) must match
        the cost model's.
    costs:
        Any :class:`~repro.distance.costs.CostModel`.  Switching similarity
        functions needs no algorithmic changes — the paper's headline
        property.
    selector:
        tau-subsequence strategy: ``"greedy"`` (Algorithm 1, default),
        ``"exact"`` (brute force), ``"prefix"`` (DISON-style), ``"all"``
        (Torch-style).
    verification:
        ``"trie"`` = bidirectional tries (OSF-BT), ``"local"`` = local
        verification without caching, ``"sw"`` = per-trajectory
        Smith–Waterman oracle (OSF-SW).
    early_termination:
        Apply the Eq. 11 lower-bound cutoff during local verification.
    sort_by_departure:
        Order postings by trajectory departure time to accelerate
        temporal-constrained queries (§4.3).
    fallback_to_scan:
        When no tau-subsequence exists (``c(Q) < tau``, possible for
        continuous costs with tiny eta — §3.1), scan the whole dataset
        instead of raising.
    dp_backend:
        Verification DP backend: ``"auto"`` (default) resolves per query
        — the array-native kernel for long queries or expensive cost
        models, the pure-Python per-cell loop for short queries over
        vectorizable-row models (the one regime where kernel-launch
        overhead loses).  ``"numpy"`` / ``"python"`` force one backend.
        All choices return identical results; ``QueryResult.
        dp_backend_used`` reports what actually ran.
    substitution_cache_size:
        Capacity of the engine-level LRU of per-query
        :class:`~repro.distance.costs.SubstitutionMatrix` objects, keyed
        on the query-and-model prefix of :func:`query_signature`.
        Repeated queries (the serving layer's zipf traffic) skip
        substitution-row computation entirely on a hit — across tau and
        time-window variations too; matrices depend only on the query
        and the cost model, never on the dataset, so online inserts need
        no invalidation either.  ``0`` disables the cache.
    trie_cache_size / trie_cache_bytes:
        Capacity (entries) and byte budget of the engine-level
        :class:`~repro.core.trie.TrieCache` of per-query verification
        tries, keyed on the same query-and-model signature prefix as the
        substitution LRU.  Repeated queries start verification with
        every previously computed DP column *warm* — the walker advances
        through cached trie levels with vectorized gathers and launches
        a DP kernel only at the cold frontier — again across tau and
        time-window variations, and again needing no invalidation on
        online inserts (columns are keyed by data-symbol path, not by
        trajectory, so they are dataset-independent).  Arena bytes are
        re-accounted after each verification and LRU entries shed past
        the budget.  ``trie_cache_size=0`` fully disables the path
        (per-query tries, the pre-cache behaviour).  Warmth changes
        which columns are *recomputed*, never any emitted float: warm
        and cold answers are bit-identical.
    trie_cache:
        A prebuilt :class:`~repro.core.trie.TrieCache` to use instead of
        constructing one — how
        :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch`
        shares a single cache across its in-process shard engines (safe
        because trie columns are dataset-independent).  Overrides
        ``trie_cache_size`` / ``trie_cache_bytes``.
    index_backend:
        ``"dict"`` (default) builds the mutable
        :class:`~repro.core.invindex.InvertedIndex` in-process.
        ``"frozen"`` uses the array-packed
        :class:`~repro.core.frozen.FrozenInvertedIndex` as an immutable
        base behind a :class:`~repro.core.frozen.DeltaOverlayIndex`
        mutable front — opened from ``index_path`` when given (O(1)
        mmap; the OS page cache shares the file across every process
        mapping it), else frozen from the dataset in memory.  Both
        backends answer queries bit-identically.
    index_path:
        Path to a frozen index file built by ``repro index build`` (or
        :meth:`FrozenInvertedIndex.save`).  Requires
        ``index_backend="frozen"``.  The file's header is validated
        against the dataset (representation, departure-sort flag,
        trajectory count); trajectories appended to the dataset after
        the freeze are indexed into the delta overlay at construction.
    index_expected_shard:
        ``(shard_index, num_shards)`` provenance the opened file must
        declare — how
        :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch`
        guards against feeding shard ``k``'s engine a file frozen for a
        different shard or shard count.  ``None`` (default) requires an
        *unsharded* file.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs,
        *,
        selector: Selector = "greedy",
        verification: VerificationMode = "trie",
        early_termination: bool = True,
        sort_by_departure: bool = False,
        fallback_to_scan: bool = True,
        dp_backend: str = "auto",
        substitution_cache_size: int = DEFAULT_SUBSTITUTION_CACHE,
        trie_cache_size: int = DEFAULT_TRIE_CACHE,
        trie_cache_bytes: Optional[int] = DEFAULT_TRIE_CACHE_BYTES,
        trie_cache: Optional[TrieCache] = None,
        index_backend: str = "dict",
        index_path: Optional[str] = None,
        index_expected_shard: Optional[tuple] = None,
    ) -> None:
        if costs.representation != dataset.representation:
            raise QueryError(
                f"cost model works on {costs.representation!r} symbols but the "
                f"dataset uses {dataset.representation!r} representation"
            )
        if selector not in _SELECTORS:
            raise QueryError(f"unknown selector {selector!r}")
        if verification not in ("trie", "local", "sw"):
            raise QueryError(f"unknown verification mode {verification!r}")
        if dp_backend not in DP_BACKENDS:
            raise QueryError(f"unknown dp_backend {dp_backend!r}")
        if substitution_cache_size < 0:
            raise QueryError("substitution_cache_size must be >= 0")
        if trie_cache_size < 0:
            raise QueryError("trie_cache_size must be >= 0")
        if trie_cache_bytes is not None and trie_cache_bytes < 0:
            raise QueryError("trie_cache_bytes must be >= 0")
        if index_backend not in INDEX_BACKENDS:
            raise QueryError(f"unknown index_backend {index_backend!r}")
        if index_path is not None and index_backend != "frozen":
            raise QueryError("index_path requires index_backend='frozen'")
        self._dataset = dataset
        self._costs = costs
        self._selector = _SELECTORS[selector]
        self._verification: VerificationMode = verification
        self._early_termination = early_termination
        self._fallback = fallback_to_scan
        self._dp_backend = dp_backend
        self._sub_matrix_cache = SubstitutionMatrixCache(substitution_cache_size)
        self._trie_cache = (
            trie_cache
            if trie_cache is not None
            else TrieCache(trie_cache_size, trie_cache_bytes)
        )
        # Memoized: the model is fixed for this engine's lifetime, and
        # cost_model_id walks vars() — not something to redo per query.
        self._model_id = cost_model_id(costs)
        self._update_lock = threading.Lock()
        self._index_backend = index_backend
        # Memoized (num_postings, bytes) pair for index_stats(): the dict
        # backend's memory_bytes() is an O(postings) getsizeof walk — not
        # something to redo on every /healthz probe of a large index.
        self._index_bytes_memo: Optional[tuple] = None
        if index_backend == "dict":
            self.index = InvertedIndex(dataset, sort_by_departure=sort_by_departure)
        else:
            self.index = self._build_frozen_index(
                dataset, sort_by_departure, index_path, index_expected_shard
            )

    @staticmethod
    def _build_frozen_index(
        dataset: TrajectoryDataset,
        sort_by_departure: bool,
        index_path: Optional[str],
        expected_shard: Optional[tuple],
    ) -> DeltaOverlayIndex:
        """Open (or freeze) the immutable base and validate it against the
        dataset, then wrap it in the mutable delta overlay."""
        if index_path is None:
            base = FrozenInvertedIndex.freeze(
                dataset, sort_by_departure=sort_by_departure
            )
        else:
            base = FrozenInvertedIndex.open(index_path)
            if base.representation != dataset.representation:
                raise QueryError(
                    f"frozen index {index_path} holds "
                    f"{base.representation!r} symbols but the dataset uses "
                    f"{dataset.representation!r} representation"
                )
            if base.sorted_by_departure != sort_by_departure:
                raise QueryError(
                    f"frozen index {index_path} was built with "
                    f"sort_by_departure={base.sorted_by_departure}; the "
                    f"engine asked for {sort_by_departure}"
                )
            if base.num_trajectories > len(dataset):
                raise QueryError(
                    f"frozen index {index_path} covers "
                    f"{base.num_trajectories} trajectories but the dataset "
                    f"holds only {len(dataset)}"
                )
            shard = base.shard
            if expected_shard is None:
                if shard is not None:
                    raise QueryError(
                        f"frozen index {index_path} is shard "
                        f"{shard['index']} of {shard['of']}; this engine "
                        "expects an unsharded index"
                    )
            else:
                want = (int(expected_shard[0]), int(expected_shard[1]))
                got = (
                    None
                    if shard is None
                    else (int(shard["index"]), int(shard["of"]))
                )
                if got != want:
                    raise QueryError(
                        f"frozen index {index_path} declares shard "
                        f"{got}; this engine expects shard {want}"
                    )
        return DeltaOverlayIndex(base, dataset)

    # -- public API --------------------------------------------------------

    @property
    def costs(self):
        """The cost model this engine searches under."""
        return self._costs

    @property
    def dataset(self) -> TrajectoryDataset:
        """The indexed trajectory dataset."""
        return self._dataset

    @property
    def dp_backend(self) -> str:
        """The configured verification DP backend: ``"auto"``, ``"numpy"``
        or ``"python"`` (``"auto"`` resolves per query — see
        ``QueryResult.dp_backend_used`` for what a query actually ran)."""
        return self._dp_backend

    @property
    def index_backend(self) -> str:
        """The configured index backend: ``"dict"`` or ``"frozen"``."""
        return self._index_backend

    def index_stats(self) -> Dict[str, Any]:
        """The inverted index's backend, size, and (for a mapped frozen
        base) page-cache residency — surfaced via ``/healthz`` and the
        ``/metrics`` collectors.  The dict backend's byte figure is
        memoized on the posting count, so repeated probes of an unchanged
        index skip its O(postings) size walk."""
        index = self.index
        if isinstance(index, DeltaOverlayIndex):
            return index.stats()
        num = index.num_postings
        memo = self._index_bytes_memo
        if memo is None or memo[0] != num:
            memo = (num, index.memory_bytes())
            self._index_bytes_memo = memo
        return {
            "backend": "dict",
            "num_symbols": index.num_symbols,
            "num_postings": num,
            "bytes": memo[1],
            "mmap": False,
        }

    def substitution_cache_stats(self) -> Dict[str, int]:
        """Counters of the engine-level SubstitutionMatrix LRU
        (capacity / size / hits / misses) — surfaced via ``/healthz`` and
        the service stats so repeat-traffic savings are observable."""
        return self._sub_matrix_cache.stats()

    def trie_cache_stats(self) -> Dict[str, int]:
        """Counters of the engine-level TrieCache (capacity / size /
        bytes / hits / misses / evictions) — surfaced via ``/healthz``
        and the service stats so warm-trie savings are observable."""
        return self._trie_cache.stats()

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Every engine-level cache's counters in one snapshot — what
        ``/healthz`` and ``/stats`` consume, so one probe is one poll
        (the partitioned engine's processes backend crosses worker pipes
        here; see its override)."""
        return {
            "substitution": self.substitution_cache_stats(),
            "trie": self.trie_cache_stats(),
            "index": self.index_stats(),
        }

    def observability_cache_stats(self) -> Dict[str, Any]:
        """Cache stats shaped for the ``/metrics`` collectors: one
        ``(shard_label, counters)`` pair per reporting shard for each
        cache (and for the index).  A single-node engine is its own shard
        ``"0"``; see the partitioned engine's override for fan-out
        labeling."""
        return {
            "shards": 1,
            "reporting": 1,
            "substitution": [("0", self.substitution_cache_stats())],
            "trie": [("0", self.trie_cache_stats())],
            "index": [("0", self.index_stats())],
        }

    def add_trajectory(self, trajectory, *, validate: bool = False) -> int:
        """Append one trajectory to the dataset and index it online (§4.1:
        postings lists grow by appending records).

        Returns the new trajectory id.  Not available on departure-sorted
        indexes, which are built once over a closed dataset.

        Inserts are serialized against each other (safe from concurrent
        server threads).  Concurrent *queries* are safe on both index
        backends: the dict index replaces postings lists as immutable
        tuples, and the frozen backend never touches its mmap'd base —
        inserts land only in the
        :class:`~repro.core.frozen.DeltaOverlayIndex` dict overlay, which
        publishes the same immutable tuples, so every individual lookup
        sees a consistent (base + delta) list.  On either backend,
        publication is atomic per *trajectory*: the index stages every
        touched symbol's new postings and installs them with a single
        ``dict.update``, so a query racing the insert sees either none of
        the new trajectory's postings or all of them — never a prefix
        that would miss matches anchored on the unpublished rest.
        """
        with self._update_lock:
            if self.index.sorted_by_departure:
                # Fail before the dataset commits: the index would reject
                # the append afterwards, stranding an orphan trajectory.
                raise ValueError("cannot append to a departure-sorted index")
            edges = None
            if self._dataset.representation == "edge":
                # Force the edge conversion *before* mutating anything: on a
                # non-walk it raises here, where no rollback is needed,
                # instead of inside index.append_trajectory after the
                # dataset has already committed the trajectory.
                edges = tuple(trajectory.edge_representation(self._dataset.graph))
            tid = self._dataset.add(trajectory, validate=validate)
            if edges is not None:
                # Seed the lazy symbol cache so the conversion runs once.
                self._dataset.prime_edge_cache(tid, edges)
            self.index.append_trajectory(tid)
            return tid

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
        cancel=None,
        trace=None,
    ) -> QueryResult:
        """All subtrajectories within WED ``tau`` of ``query``
        (Definition 3: strict inequality).

        Exactly one of ``tau`` / ``tau_ratio`` must be given; ``tau_ratio``
        uses the paper's parameterization ``tau = ratio * sum c(q)``.

        ``cancel`` is an optional cooperative cancellation token (see
        :mod:`repro.core.cancellation`): it is polled at stage boundaries
        and inside the verification loops, and a tripped token raises
        :class:`~repro.exceptions.QueryCancelledError` instead of wasting
        CPU on an answer nobody is waiting for.

        ``trace`` is an optional parent :class:`~repro.obs.tracing.Span`:
        the engine attaches one child span per stage (mincand / lookup /
        verify), replayed from the stage clocks it measures anyway — zero
        extra timing calls — and annotated with the stage counters
        (candidates, DP columns/rounds/backend, trie-cache status).
        """
        tau = self._resolve_tau(query, tau, tau_ratio)
        if tau <= 0:
            if trace is not None:
                trace.set("tau", float(tau))
                trace.set("degenerate", "tau<=0")
            return QueryResult([], tau, [], 0, 0.0, 0.0, 0.0, VerificationStats())
        self._check_assumption(query, tau)
        raise_if_cancelled(cancel, "query")

        # Stage 1: MinCand — choose the tau-subsequence.
        t0 = time.perf_counter()
        profile = query_profile(query, self._costs, self.index)
        try:
            subsequence = self._selector(profile, tau)
        except QueryError:
            if not self._fallback:
                raise
            return self._scan_fallback(
                query, tau, t0, time_interval, temporal_mode, cancel, trace
            )
        t1 = time.perf_counter()

        # Stage 2: index lookup — gather candidates.  Sorted-postings
        # pruning is part of the TF strategy (§4.3), so the no-TF ablation
        # must not benefit from it.
        raise_if_cancelled(cancel, "query")
        candidates = self._collect_candidates(
            subsequence, time_interval if temporal_filter else None
        )
        if time_interval is not None and temporal_filter:
            candidates = filter_candidates(self._dataset, candidates, time_interval)
        t2 = time.perf_counter()

        # Stage 3: verification.
        matches = MatchSet()
        stats = VerificationStats()
        backend_used = ""
        allocations = 0
        trie_status = ""
        dp_rounds = 0
        if self._verification == "sw":
            stats = self._verify_sw(candidates, query, tau, matches, cancel)
        else:
            backend_used = self._dp_backend
            if backend_used == "auto":
                backend_used = choose_dp_backend(len(query), self._costs)
            matrix = None
            trie_entry = None
            if backend_used == "numpy":
                matrix = self._substitution_matrix(query, subsequence, candidates)
                if self._verification == "trie":
                    trie_entry, trie_status = self._trie_entry(query)
            verifier = Verifier(
                self._dataset.symbols,
                query,
                self._costs,
                tau,
                use_trie=self._verification == "trie",
                early_termination=self._early_termination,
                dp_backend=backend_used,
                symbols_array_of=self._dataset.symbols_array,
                matrix=matrix,
                trie_entry=trie_entry,
                cancel=cancel,
            )
            try:
                verifier.verify_all(candidates, matches)
            finally:
                if trie_entry is not None:
                    # Arenas grew during verification (cancelled or not):
                    # re-account trie_cache_bytes and shed LRU entries
                    # past the byte budget.
                    self._trie_cache.reconcile()
            stats = verifier.stats
            allocations = verifier.dp_array_allocations
            dp_rounds = verifier.dp_rounds
        t3 = time.perf_counter()

        result = matches.to_list()
        if time_interval is not None:
            result = [
                m
                for m in result
                if match_satisfies(self._dataset, m, time_interval, temporal_mode)
            ]
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "query |Q|=%d tau=%.4g: |Q'|=%d, %d candidates, %d matches "
                "(mincand %.2fms, lookup %.2fms, verify %.2fms)",
                len(query),
                tau,
                len(subsequence),
                len(candidates),
                len(result),
                (t1 - t0) * 1e3,
                (t2 - t1) * 1e3,
                (t3 - t2) * 1e3,
            )
        if trace is not None:
            # Stage spans replayed from the clocks above — the trace adds
            # record-keeping, never a fourth perf_counter read pair.
            trace.set("tau", float(tau))
            trace.set("query_length", len(query))
            trace.set("matches", len(result))
            trace.add("mincand", t0, t1, subsequence=len(subsequence))
            trace.add("lookup", t1, t2, candidates=len(candidates))
            trace.add(
                "verify",
                t2,
                t3,
                candidates=stats.candidates,
                visited_columns=stats.visited_columns,
                computed_columns=stats.computed_columns,
                emitted=stats.emitted,
                dp_backend=backend_used or self._verification,
                dp_rounds=dp_rounds,
                dp_array_allocations=allocations,
                trie_cache=trie_status or "n/a",
            )
        return QueryResult(
            matches=result,
            tau=tau,
            subsequence=subsequence,
            num_candidates=len(candidates),
            mincand_seconds=t1 - t0,
            lookup_seconds=t2 - t1,
            verify_seconds=t3 - t2,
            verification=stats,
            dp_backend_used=backend_used,
            dp_array_allocations=allocations,
            trie_cache_status=trie_status,
            dp_rounds=dp_rounds,
        )

    def topk(
        self,
        query: Sequence[int],
        k: int,
        *,
        initial_tau_ratio: float = 0.05,
        growth: float = 2.0,
        cancel=None,
        trace=None,
    ):
        """The ``k`` most similar subtrajectories, one per trajectory —
        :func:`repro.core.topk.topk_search` run against this engine (see
        there for the threshold-doubling scheme and the result type)."""
        from repro.core.topk import topk_search  # circular at import time

        return topk_search(
            self,
            query,
            k,
            initial_tau_ratio=initial_tau_ratio,
            growth=growth,
            cancel=cancel,
            trace=trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubtrajectorySearch({len(self._dataset)} trajectories, "
            f"costs={type(self._costs).__name__}, "
            f"verification={self._verification!r})"
        )

    def candidates(
        self, query: Sequence[int], *, tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
    ) -> List[Candidate]:
        """The candidate set alone (filter-power experiments, Fig. 11)."""
        tau = self._resolve_tau(query, tau, tau_ratio)
        profile = query_profile(query, self._costs, self.index)
        subsequence = self._selector(profile, tau)
        return self._collect_candidates(subsequence, None)

    # -- internals ------------------------------------------------------------

    def _trie_entry(self, query: Sequence[int]):
        """The cross-query TrieCache entry for this query plus its
        lookup status (``(entry, "hit"/"miss")``, or ``(None, "off")``
        when the cache is disabled).

        Keyed on the query-and-cost-model *prefix* of
        :func:`query_signature`, exactly like the substitution LRU: trie
        columns depend on neither the threshold nor the temporal
        constraint (only the early-termination *frontier* differs, i.e.
        which columns exist so far — never their floats), so requests
        varying tau or the time window share one entry — and they depend
        on nothing in the dataset (columns are keyed by data-symbol
        path), so entries stay valid across online inserts too.
        """
        cache = self._trie_cache
        if not cache.capacity:
            return None, "off"
        return cache.lookup(("trie", tuple(int(s) for s in query), self._model_id))

    def _substitution_matrix(self, query: Sequence[int], subsequence, candidates):
        """The per-query SubstitutionMatrix, served from the engine LRU.

        On a hit, both the substitution rows and the per-direction
        contiguous copies hanging off the matrix are reused — the whole
        row-computation stage of verification disappears for repeated
        queries.  On a miss the matrix is built with dense rows for the
        anchors that actually occur in the data (nonempty postings): every
        candidate's anchor symbol lies in the chosen subsequence's
        neighborhoods, and the matrix also fills lazily, so skipping
        absent symbols only defers work, never recomputes it.

        The key is the query-and-cost-model *prefix* of
        :func:`query_signature`: matrices depend on neither the threshold
        nor the temporal constraint (only which rows end up dense, a
        performance detail), so requests varying tau or the time window
        share one entry — and they depend on nothing in the dataset, so
        entries stay valid across online inserts too.
        """
        cache = self._sub_matrix_cache
        key = None
        if cache.capacity:
            key = ("sub", tuple(int(s) for s in query), self._model_id)
            matrix = cache.get(key)
            if matrix is not None:
                return matrix
        anchors = None
        if candidates:
            index = self.index
            anchors = [
                b
                for element in subsequence
                for b in element.neighborhood
                if index.frequency(b)
            ]
        matrix = self._costs.sub_matrix(query, anchors=anchors)
        if key is not None:
            cache.put(key, matrix)
        return matrix

    def _resolve_tau(
        self,
        query: Sequence[int],
        tau: Optional[float],
        tau_ratio: Optional[float],
    ) -> float:
        if len(query) == 0:
            raise QueryError("empty query")
        if (tau is None) == (tau_ratio is None):
            raise QueryError("exactly one of tau / tau_ratio must be given")
        if tau_ratio is not None:
            return tau_from_ratio(query, self._costs, tau_ratio)
        assert tau is not None
        return tau

    def _check_assumption(self, query: Sequence[int], tau: float) -> None:
        # §2.3: sum of insertion costs must reach tau, otherwise the empty
        # subtrajectory "matches" and the problem is degenerate.
        total_ins = sum(self._costs.ins(q) for q in query)
        if total_ins < tau:
            raise QueryError(
                f"degenerate query: sum of insertion costs {total_ins:.6g} < "
                f"tau={tau:.6g} (the empty string would match)"
            )

    def _collect_candidates(
        self,
        subsequence: Sequence[QueryElement],
        interval: Optional[TimeInterval],
    ) -> List[Candidate]:
        out: List[Candidate] = []
        index = self.index
        use_sorted = interval is not None and getattr(index, "_sorted", False)
        for element in subsequence:
            iq = element.position
            for b in element.neighborhood:
                postings = (
                    index.postings_departing_before(b, interval.end)  # type: ignore[union-attr]
                    if use_sorted
                    else index.postings(b)
                )
                for tid, j in postings:
                    out.append((tid, j, iq))
        return out

    def _verify_sw(
        self,
        candidates: Sequence[Candidate],
        query: Sequence[int],
        tau: float,
        matches: MatchSet,
        cancel=None,
    ) -> VerificationStats:
        """OSF-SW: run the Smith–Waterman oracle once per candidate
        trajectory (finds the same matches, without locality or caching)."""
        stats = VerificationStats()
        seen: set = set()
        for tid, _, _ in candidates:
            if tid in seen:
                continue
            raise_if_cancelled(cancel, "verification")
            seen.add(tid)
            data = self._dataset.symbols(tid)
            stats.candidates += 1
            stats.sw_columns += len(data)
            stats.visited_columns += len(data)
            stats.computed_columns += len(data)
            for s, t, d in all_matches(data, query, self._costs, tau):
                matches.add(tid, s, t, d)
                stats.emitted += 1
        return stats

    def _scan_fallback(
        self,
        query: Sequence[int],
        tau: float,
        t0: float,
        interval: Optional[TimeInterval],
        temporal_mode: TemporalMode,
        cancel=None,
        trace=None,
    ) -> QueryResult:
        """Exact full scan used when no tau-subsequence exists."""
        t1 = time.perf_counter()
        matches = MatchSet()
        stats = VerificationStats()
        for tid in range(len(self._dataset)):
            raise_if_cancelled(cancel, "scan fallback")
            data = self._dataset.symbols(tid)
            stats.candidates += 1
            stats.sw_columns += len(data)
            for s, t, d in all_matches(data, query, self._costs, tau):
                matches.add(tid, s, t, d)
                stats.emitted += 1
        t2 = time.perf_counter()
        result = matches.to_list()
        if interval is not None:
            result = [
                m
                for m in result
                if match_satisfies(self._dataset, m, interval, temporal_mode)
            ]
        if trace is not None:
            trace.set("tau", float(tau))
            trace.set("matches", len(result))
            trace.set("fallback", "scan")
            trace.add("mincand", t0, t1)
            trace.add(
                "scan", t1, t2, candidates=stats.candidates, emitted=stats.emitted
            )
        return QueryResult(
            matches=result,
            tau=tau,
            subsequence=[],
            num_candidates=len(self._dataset),
            mincand_seconds=t1 - t0,
            lookup_seconds=0.0,
            verify_seconds=t2 - t1,
            verification=stats,
            used_fallback=True,
        )
