"""Per-query eta tuning for continuous cost functions (§3.1 future work).

For ERP/NetERP the neighborhood threshold ``eta`` trades filter tightness
against candidate volume: growing ``eta`` raises every ``c(q)`` (tighter
lower bound, shorter tau-subsequences) but inflates ``B(q)`` (more
postings per chosen element).  The paper fixes one global ``eta`` per
dataset (App. D) and leaves per-query optimization as future work; this
module implements it:

1. candidate ``eta`` grid: geometric steps around ``tau / |Q|`` — the
   value that *guarantees* a tau-subsequence exists (every ``c(q) >= eta``);
2. for each ``eta``, profile the query against the index and run MinCand;
3. pick the ``eta`` whose optimized subsequence predicts the fewest
   candidates (the MinCand objective is exactly the candidate count, §3.2).

The search costs one MinCand run (``O(|Q|^2)``) plus ``|Q|`` neighborhood
queries per grid point — negligible next to verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.filtering import query_profile
from repro.core.invindex import InvertedIndex
from repro.core.mincand import mincand_greedy
from repro.distance.costs import CostModel
from repro.exceptions import QueryError

__all__ = ["EtaChoice", "tune_eta"]


@dataclass(frozen=True, slots=True)
class EtaChoice:
    """One evaluated grid point."""

    eta: float
    feasible: bool
    predicted_candidates: Optional[int]


def tune_eta(
    cost_factory: Callable[[float], CostModel],
    query: Sequence[int],
    tau: float,
    index: InvertedIndex,
    *,
    grid: Optional[Sequence[float]] = None,
    grid_points: int = 6,
    grid_span: float = 8.0,
) -> tuple[float, List[EtaChoice]]:
    """Pick the ``eta`` minimizing the predicted candidate count.

    ``cost_factory(eta)`` must build the cost model for a trial ``eta``
    (e.g. ``lambda eta: ERPCost(graph, eta=eta)``).  Returns the winning
    ``eta`` plus the full evaluation trace.  When ``grid`` is omitted, a
    geometric grid of ``grid_points`` values spanning ``grid_span`` around
    the feasibility guarantee ``tau / |Q|`` is used.

    Raises :class:`QueryError` when no grid point admits a
    tau-subsequence (should not happen when the default grid is used,
    since ``eta = tau/|Q|`` guarantees feasibility — §3.1).
    """
    if len(query) == 0:
        raise QueryError("empty query")
    if tau <= 0:
        raise QueryError("tau must be positive")
    if grid is None:
        anchor = tau / len(query)
        lo = anchor / grid_span
        ratio = grid_span ** (2.0 / max(1, grid_points - 1))
        grid = [lo * (ratio**i) for i in range(grid_points)]

    trace: List[EtaChoice] = []
    best_eta: Optional[float] = None
    best_obj: Optional[int] = None
    for eta in grid:
        costs = cost_factory(eta)
        profile = query_profile(query, costs, index)
        try:
            chosen = mincand_greedy(profile, tau)
        except QueryError:
            trace.append(EtaChoice(eta, False, None))
            continue
        objective = sum(e.candidate_count for e in chosen)
        trace.append(EtaChoice(eta, True, objective))
        if best_obj is None or objective < best_obj:
            best_obj = objective
            best_eta = eta
    if best_eta is None:
        raise QueryError(
            "no eta in the grid admits a tau-subsequence; widen the grid "
            "(eta = tau/|Q| always does — check the cost factory)"
        )
    return best_eta, trace
