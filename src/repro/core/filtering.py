"""Subsequence filtering (§3.1, Theorem 1).

For every query element ``q`` at position ``iq`` we precompute its
substitution neighborhood ``B(q)`` (Definition 4), its filtering cost
``c(q)`` (Eq. 7), and — given an inverted index — the number of candidate
postings ``N_q = sum over b in B(q) of n(b)``.  A subsequence ``Q'`` with
``c(Q') >= tau`` (a *tau-subsequence*) then certifies that any matching
subtrajectory shares at least one symbol with ``B(Q')``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.invindex import InvertedIndex
from repro.distance.costs import CostModel
from repro.exceptions import QueryError

__all__ = ["QueryElement", "query_profile", "tau_from_ratio"]


@dataclass(frozen=True, slots=True)
class QueryElement:
    """Per-position filtering data for one query symbol.

    ``position`` is ``iq`` (0-based index into the query), ``cost`` is
    ``c(q)``, ``neighborhood`` is ``B(q)``, and ``candidate_count`` is
    ``N_q`` (0 when no index was supplied).
    """

    position: int
    symbol: int
    cost: float
    neighborhood: Tuple[int, ...]
    candidate_count: int


def query_profile(
    query: Sequence[int],
    costs: CostModel,
    index: Optional[InvertedIndex] = None,
) -> List[QueryElement]:
    """Compute :class:`QueryElement` for every position of ``query``.

    Neighborhoods and filter costs are memoized per distinct symbol, so
    repeated vertices in the query are profiled once.
    """
    if len(query) == 0:
        raise QueryError("empty query")
    cache: dict = {}
    out: List[QueryElement] = []
    for iq, q in enumerate(query):
        entry = cache.get(q)
        if entry is None:
            neigh = tuple(dict.fromkeys(costs.neighbors(q)))  # unique, ordered
            cq = costs.filter_cost(q)
            nq = sum(index.frequency(b) for b in neigh) if index is not None else 0
            entry = (neigh, cq, nq)
            cache[q] = entry
        neigh, cq, nq = entry
        out.append(QueryElement(iq, q, cq, neigh, nq))
    return out


def tau_from_ratio(query: Sequence[int], costs: CostModel, tau_ratio: float) -> float:
    """The paper's threshold parameterization (§6.1):
    ``tau = tau_ratio * sum over q in Q of c(q)``."""
    if not 0.0 <= tau_ratio <= 1.0:
        raise QueryError(f"tau_ratio must be in [0, 1], got {tau_ratio}")
    total = sum(costs.filter_cost(q) for q in query)
    return tau_ratio * total
