"""Frozen, array-packed, memory-mappable inverted index (ROADMAP §2).

The dict-backed :class:`~repro.core.invindex.InvertedIndex` stores one
Python tuple per posting — flexible, but every worker process that loads
it re-pickles and privately re-materializes the whole structure, which is
the main obstacle between reproduction scale (|T| ≈ 800) and the
10^5–10^6-trajectory production target.  This module packs the same
postings into flat ``numpy`` column arrays:

- ``symbols``   — sorted distinct symbols (``int32``),
- ``offsets``   — per-symbol prefix offsets into the postings columns
  (``int64``, length ``num_symbols + 1``),
- ``tids`` / ``positions`` — all postings concatenated in symbol order
  (``int32`` each),
- ``departures`` — optional parallel ``float64`` departure keys when the
  index is departure-sorted (§4.3 temporal pruning).

A lookup is one ``np.searchsorted`` into ``symbols`` plus two array
slices — no per-posting objects exist at all.  The arrays serialize to a
versioned single-file container (see ``docs/INDEX_FORMAT.md`` for the
byte-level specification) that :meth:`FrozenInvertedIndex.open` maps with
``mmap`` in O(1): opening a multi-gigabyte index touches only the header
page, and because every opener maps the same file, the OS page cache
shares one physical copy across all worker processes on a node.

A frozen index is immutable.  Online inserts go through
:class:`DeltaOverlayIndex` — a frozen base plus a dict-backed delta
overlay with the exact append semantics of the mutable index — which is
what :class:`~repro.core.engine.SubtrajectorySearch` uses for its
``index_backend="frozen"`` mode.  Both backends return bit-identical
query answers (hypothesis-pinned in ``tests/test_core_frozen.py``).
"""

from __future__ import annotations

import json
import mmap
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import IndexError_
from repro.trajectory.dataset import TrajectoryDataset

__all__ = [
    "DeltaOverlayIndex",
    "FrozenInvertedIndex",
    "IndexFormatError",
    "inspect_index",
    "round_robin_shards",
    "shard_index_path",
]

Posting = Tuple[int, int]  # (trajectory id, position)

#: file magic: 8 bytes at offset 0 of every frozen index file.
MAGIC = b"REPROIDX"
#: current (and only) container format version.
FORMAT_VERSION = 1
#: every section starts at a multiple of this within the data region.
SECTION_ALIGNMENT = 64

_EMPTY: Tuple[Posting, ...] = ()
_INT32_MAX = 2**31 - 1


class IndexFormatError(IndexError_):
    """Raised when a frozen index file is unreadable: wrong magic, an
    unsupported (newer) format version, a corrupted header, or a file
    truncated short of its declared sections."""


def _align_up(n: int, alignment: int = SECTION_ALIGNMENT) -> int:
    return (n + alignment - 1) // alignment * alignment


def shard_index_path(stem: Union[str, Path], shard: int, num_shards: int) -> str:
    """The conventional file name for one shard of a sharded frozen index.

    ``repro index build --shards N`` writes these and ``repro serve
    --index`` resolves them: the stem itself for a single shard, else
    ``<stem>.shard<k>-of-<N>``.
    """
    if num_shards <= 1:
        return str(stem)
    return f"{stem}.shard{shard}-of-{num_shards}"


def round_robin_shards(
    dataset: TrajectoryDataset, num_shards: int
) -> List[TrajectoryDataset]:
    """Split a dataset into ``min(num_shards, len(dataset))`` shard datasets
    by round-robin trajectory assignment — byte-for-byte the split
    :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch` builds,
    so index files frozen from these shards match its shard engines."""
    num_shards = max(1, min(num_shards, len(dataset)))
    shards = [
        TrajectoryDataset(dataset.graph, dataset.representation)
        for _ in range(num_shards)
    ]
    for tid in range(len(dataset)):
        shards[tid % num_shards].add(dataset[tid])
    return shards


def _read_header(f) -> Tuple[Dict[str, Any], int, int]:
    """Parse the fixed preamble + JSON header of an open file.

    Returns ``(header, version, data_start)``; raises
    :class:`IndexFormatError` on any malformation.
    """
    preamble = f.read(16)
    if len(preamble) < 16 or preamble[:8] != MAGIC:
        raise IndexFormatError(
            f"not a frozen index file (bad magic {preamble[:8]!r}; "
            f"expected {MAGIC!r})"
        )
    version = int.from_bytes(preamble[8:10], "little")
    if version > FORMAT_VERSION:
        raise IndexFormatError(
            f"frozen index format version {version} is newer than this "
            f"reader (supports <= {FORMAT_VERSION}); rebuild the index or "
            "upgrade the library"
        )
    header_len = int.from_bytes(preamble[12:16], "little")
    raw = f.read(header_len)
    if len(raw) < header_len:
        raise IndexFormatError(
            f"truncated frozen index: header declares {header_len} bytes, "
            f"file holds {len(raw)}"
        )
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"corrupted frozen index header: {exc}") from exc
    if not isinstance(header, dict) or "sections" not in header:
        raise IndexFormatError("corrupted frozen index header: no section table")
    return header, version, _align_up(16 + header_len)


def inspect_index(path: Union[str, Path]) -> Dict[str, Any]:
    """The header of a frozen index file plus file-level facts, without
    loading (or mapping) any array data — what ``repro index inspect``
    prints.  Raises :class:`IndexFormatError` on malformed files."""
    path = Path(path)
    file_bytes = path.stat().st_size
    with path.open("rb") as f:
        header, version, data_start = _read_header(f)
    declared_end = data_start + max(
        (int(sec["offset"]) + int(sec["nbytes"]) for sec in header["sections"].values()),
        default=0,
    )
    if file_bytes < declared_end:
        raise IndexFormatError(
            f"truncated frozen index: sections end at byte {declared_end}, "
            f"file holds {file_bytes}"
        )
    return {
        "path": str(path),
        "format_version": version,
        "file_bytes": file_bytes,
        "data_start": data_start,
        **{k: v for k, v in header.items()},
    }


def _resident_bytes_of(buffer: np.ndarray) -> Optional[int]:
    """Best-effort ``mincore(2)`` residency of a mapped byte buffer:
    how many of the mapping's bytes are currently in the page cache.
    Returns ``None`` where the syscall is unavailable (non-POSIX, or any
    ctypes failure) — callers treat residency as optional telemetry."""
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        page = mmap.PAGESIZE
        length = buffer.nbytes
        if length == 0:
            return 0
        pages = (length + page - 1) // page
        vec = (ctypes.c_ubyte * pages)()
        rc = libc.mincore(
            ctypes.c_void_p(buffer.ctypes.data),
            ctypes.c_size_t(length),
            vec,
        )
        if rc != 0:
            return None
        resident = sum(v & 1 for v in vec) * page
        return min(resident, length)
    except Exception:  # noqa: BLE001 — purely diagnostic, never fail a probe
        return None


class FrozenInvertedIndex:
    """Array-packed, immutable postings lists with O(1) mmap open.

    Construct with :meth:`freeze` (from a dataset, in memory) or
    :meth:`open` (from a file written by :meth:`save`, memory-mapped).
    The lookup API mirrors :class:`~repro.core.invindex.InvertedIndex`
    (``postings`` / ``frequency`` / ``postings_departing_before``) and
    returns postings in the identical order, so query answers cannot
    differ between backends.
    """

    def __init__(
        self,
        *,
        symbols: np.ndarray,
        offsets: np.ndarray,
        tids: np.ndarray,
        positions: np.ndarray,
        departures: Optional[np.ndarray],
        meta: Dict[str, Any],
        path: Optional[Path] = None,
        mmap_buffer: Optional[np.ndarray] = None,
        mmap_handle=None,
        build_seconds: float = 0.0,
        open_seconds: float = 0.0,
    ) -> None:
        self._symbols = symbols
        self._offsets = offsets
        self._tids = tids
        self._positions = positions
        self._departures = departures
        self._meta = meta
        self._path = path
        self._mmap_buffer = mmap_buffer
        self._mmap_handle = mmap_handle  # keeps the mapping alive
        self._sorted = bool(meta.get("sorted_by_departure", False))
        #: seconds spent packing the arrays (0.0 for an opened file).
        self.build_seconds = build_seconds
        #: seconds spent opening/mapping the file (0.0 for a fresh freeze).
        self.open_seconds = open_seconds

    # -- construction --------------------------------------------------------

    @classmethod
    def freeze(
        cls,
        dataset: TrajectoryDataset,
        *,
        sort_by_departure: bool = False,
        shard: Optional[Tuple[int, int]] = None,
        global_trajectories: Optional[int] = None,
    ) -> "FrozenInvertedIndex":
        """Pack a dataset's postings into frozen arrays (in memory).

        The build walks trajectories in id order — exactly the traversal
        of the dict index — so per-symbol postings come out in the same
        ``(tid, position)`` order; ``sort_by_departure`` applies the same
        stable departure-time sort.  ``shard`` (``(index, of)``) and
        ``global_trajectories`` are optional provenance recorded in the
        header so a sharded deployment can detect mismatched files.
        """
        t0 = time.perf_counter()
        postings: Dict[int, List[Posting]] = {}
        for tid in range(len(dataset)):
            for pos, sym in enumerate(dataset.symbols(tid)):
                postings.setdefault(sym, []).append((tid, pos))
        symbol_list = sorted(postings)
        if symbol_list and not (
            -_INT32_MAX <= symbol_list[0] and symbol_list[-1] <= _INT32_MAX
        ):
            raise IndexError_("symbol ids do not fit int32")
        if len(dataset) > _INT32_MAX:
            raise IndexError_("trajectory ids do not fit int32")
        total = sum(len(p) for p in postings.values())
        symbols = np.asarray(symbol_list, dtype=np.int32)
        offsets = np.zeros(len(symbol_list) + 1, dtype=np.int64)
        tids = np.empty(total, dtype=np.int32)
        positions = np.empty(total, dtype=np.int32)
        departures = np.empty(total, dtype=np.float64) if sort_by_departure else None
        cursor = 0
        for i, sym in enumerate(symbol_list):
            plist = postings[sym]
            if sort_by_departure:
                plist.sort(key=lambda p: dataset[p[0]].start_time)
            end = cursor + len(plist)
            tids[cursor:end] = [p[0] for p in plist]
            positions[cursor:end] = [p[1] for p in plist]
            if departures is not None:
                departures[cursor:end] = [
                    dataset[p[0]].start_time for p in plist
                ]
            offsets[i + 1] = end
            cursor = end
        meta: Dict[str, Any] = {
            "representation": dataset.representation,
            "sorted_by_departure": bool(sort_by_departure),
            "num_trajectories": len(dataset),
            "num_symbols": len(symbol_list),
            "num_postings": total,
        }
        if shard is not None:
            meta["shard"] = {
                "index": int(shard[0]),
                "of": int(shard[1]),
                "global_trajectories": int(
                    len(dataset) if global_trajectories is None else global_trajectories
                ),
            }
        return cls(
            symbols=symbols,
            offsets=offsets,
            tids=tids,
            positions=positions,
            departures=departures,
            meta=meta,
            build_seconds=time.perf_counter() - t0,
        )

    # -- serialization -------------------------------------------------------

    def _sections(self) -> List[Tuple[str, np.ndarray]]:
        out = [
            ("symbols", self._symbols),
            ("offsets", self._offsets),
            ("tids", self._tids),
            ("positions", self._positions),
        ]
        if self._departures is not None:
            out.append(("departures", self._departures))
        return out

    def save(self, path: Union[str, Path]) -> int:
        """Write the single-file container (see ``docs/INDEX_FORMAT.md``)
        and return the bytes written.  The write goes to a ``.tmp``
        sibling first and renames into place, so a crashed build never
        leaves a half-written index at the target path."""
        path = Path(path)
        sections: Dict[str, Dict[str, Any]] = {}
        cursor = 0
        arrays = self._sections()
        for name, arr in arrays:
            cursor = _align_up(cursor)
            little = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
            sections[name] = {
                "dtype": little.dtype.str,
                "shape": list(arr.shape),
                "offset": cursor,
                "nbytes": int(arr.nbytes),
            }
            cursor += arr.nbytes
        header = {**self._meta, "sections": sections}
        raw = json.dumps(header, sort_keys=True).encode("utf-8")
        data_start = _align_up(16 + len(raw))
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as f:
            f.write(MAGIC)
            f.write(FORMAT_VERSION.to_bytes(2, "little"))
            f.write(b"\x00\x00")  # reserved flags
            f.write(len(raw).to_bytes(4, "little"))
            f.write(raw)
            f.write(b"\x00" * (data_start - 16 - len(raw)))
            for name, arr in arrays:
                pad = data_start + sections[name]["offset"] - f.tell()
                f.write(b"\x00" * pad)
                f.write(
                    arr.astype(arr.dtype.newbyteorder("<"), copy=False).tobytes()
                )
            total = f.tell()
        os.replace(tmp, path)
        return total

    @classmethod
    def open(cls, path: Union[str, Path]) -> "FrozenInvertedIndex":
        """Memory-map a file written by :meth:`save` — O(1) regardless of
        index size: only the header is read; array sections become typed
        views into one shared read-only mapping, paged in on demand by
        the OS (and shared across every process mapping the same file).

        Raises :class:`IndexFormatError` for non-index files, newer
        format versions, corrupted headers, and truncated files.
        """
        t0 = time.perf_counter()
        path = Path(path)
        with path.open("rb") as f:
            header, _, data_start = _read_header(f)
            file_bytes = os.fstat(f.fileno()).st_size
            declared_end = data_start + max(
                (
                    int(sec["offset"]) + int(sec["nbytes"])
                    for sec in header["sections"].values()
                ),
                default=0,
            )
            if file_bytes < declared_end:
                raise IndexFormatError(
                    f"truncated frozen index {path}: sections end at byte "
                    f"{declared_end}, file holds {file_bytes}"
                )
            if file_bytes == 0:
                raise IndexFormatError(f"empty frozen index file {path}")
            handle = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        buffer = np.frombuffer(handle, dtype=np.uint8)
        views: Dict[str, np.ndarray] = {}
        for name, sec in header["sections"].items():
            dtype = np.dtype(sec["dtype"])
            shape = tuple(int(s) for s in sec["shape"])
            count = int(np.prod(shape)) if shape else 1
            if count * dtype.itemsize != int(sec["nbytes"]):
                raise IndexFormatError(
                    f"corrupted frozen index {path}: section {name!r} "
                    f"declares {sec['nbytes']} bytes for shape {shape} "
                    f"of {dtype}"
                )
            views[name] = np.frombuffer(
                handle, dtype=dtype, count=count,
                offset=data_start + int(sec["offset"]),
            ).reshape(shape)
        for required in ("symbols", "offsets", "tids", "positions"):
            if required not in views:
                raise IndexFormatError(
                    f"corrupted frozen index {path}: missing section "
                    f"{required!r}"
                )
        symbols, offsets = views["symbols"], views["offsets"]
        tids, positions = views["tids"], views["positions"]
        if (
            len(offsets) != len(symbols) + 1
            or len(tids) != len(positions)
            or (len(offsets) and int(offsets[-1]) != len(tids))
        ):
            raise IndexFormatError(
                f"corrupted frozen index {path}: inconsistent section shapes"
            )
        departures = views.get("departures")
        if header.get("sorted_by_departure") and departures is None:
            raise IndexFormatError(
                f"corrupted frozen index {path}: departure-sorted header "
                "but no departures section"
            )
        meta = {k: v for k, v in header.items() if k != "sections"}
        return cls(
            symbols=symbols,
            offsets=offsets,
            tids=tids,
            positions=positions,
            departures=departures,
            meta=meta,
            path=path,
            mmap_buffer=buffer,
            mmap_handle=handle,
            open_seconds=time.perf_counter() - t0,
        )

    # -- lookups -------------------------------------------------------------

    def _slice(self, symbol: int) -> Tuple[int, int]:
        i = int(np.searchsorted(self._symbols, symbol))
        if i >= len(self._symbols) or int(self._symbols[i]) != symbol:
            return 0, 0
        return int(self._offsets[i]), int(self._offsets[i + 1])

    def postings(self, symbol: int) -> Sequence[Posting]:
        """``L_q``: every ``(id, position)`` where ``symbol`` occurs, in
        the same order the dict index stores them."""
        lo, hi = self._slice(symbol)
        if lo == hi:
            return _EMPTY
        return list(
            zip(self._tids[lo:hi].tolist(), self._positions[lo:hi].tolist())
        )

    def postings_arrays(self, symbol: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(tids, positions)`` column views for ``symbol``
        (empty arrays when absent) — the array-native lookup the packed
        layout exists for.  Treat the views as read-only."""
        lo, hi = self._slice(symbol)
        return self._tids[lo:hi], self._positions[lo:hi]

    def frequency(self, symbol: int) -> int:
        """``n(q)``: total occurrence count of ``symbol`` in the dataset."""
        lo, hi = self._slice(symbol)
        return hi - lo

    def postings_departing_before(self, symbol: int, latest: float) -> Sequence[Posting]:
        """Postings of trajectories departing at or before ``latest``
        (requires a departure-sorted build; binary search, §4.3)."""
        if not self._sorted:
            raise ValueError("index not sorted by departure time")
        lo, hi = self._slice(symbol)
        if lo == hi:
            return _EMPTY
        assert self._departures is not None
        cut = lo + int(
            np.searchsorted(self._departures[lo:hi], latest, side="right")
        )
        if cut == lo:
            return _EMPTY
        return list(
            zip(self._tids[lo:cut].tolist(), self._positions[lo:cut].tolist())
        )

    # -- introspection -------------------------------------------------------

    @property
    def sorted_by_departure(self) -> bool:
        """Whether postings are departure-ordered (closed to appends)."""
        return self._sorted

    @property
    def representation(self) -> Optional[str]:
        """The symbol alphabet the index was built over."""
        return self._meta.get("representation")

    @property
    def num_trajectories(self) -> int:
        """Trajectory count of the dataset this index was frozen from."""
        return int(self._meta.get("num_trajectories", 0))

    @property
    def num_symbols(self) -> int:
        """Distinct symbols with non-empty postings."""
        return len(self._symbols)

    @property
    def num_postings(self) -> int:
        """Total posting count (== total symbols in the dataset)."""
        return len(self._tids)

    @property
    def path(self) -> Optional[Path]:
        """The backing file, or ``None`` for an in-memory freeze."""
        return self._path

    @property
    def is_mmap(self) -> bool:
        """Whether the arrays are views into a shared file mapping."""
        return self._mmap_handle is not None

    @property
    def shard(self) -> Optional[Dict[str, int]]:
        """Shard provenance recorded at freeze time, if any."""
        return self._meta.get("shard")

    def memory_bytes(self) -> int:
        """Bytes held by the packed arrays (== file payload bytes; for a
        mapping this is *shared* address space, not private RSS)."""
        total = sum(arr.nbytes for _, arr in self._sections())
        return int(total)

    def file_bytes(self) -> Optional[int]:
        """On-disk size of the backing file (``None`` when in-memory)."""
        if self._path is None:
            return None
        try:
            return self._path.stat().st_size
        except OSError:
            return None

    def resident_bytes(self) -> Optional[int]:
        """Page-cache residency of the mapping via ``mincore(2)``:
        how many of the mapped bytes are physically in memory right now.
        ``None`` for in-memory indexes and on platforms without the
        syscall."""
        if self._mmap_buffer is None:
            return None
        return _resident_bytes_of(self._mmap_buffer)

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/healthz`` and the metrics collectors."""
        out: Dict[str, Any] = {
            "backend": "frozen",
            "num_symbols": self.num_symbols,
            "num_postings": self.num_postings,
            "bytes": self.memory_bytes(),
            "mmap": self.is_mmap,
        }
        if self._path is not None:
            out["path"] = str(self._path)
            out["file_bytes"] = self.file_bytes()
            resident = self.resident_bytes()
            if resident is not None:
                out["resident_bytes"] = resident
        return out


class DeltaOverlayIndex:
    """A frozen base with a dict-backed delta overlay: the mutable front
    of ``index_backend="frozen"``.

    Lookups merge base postings (packed arrays) with delta postings
    (plain tuples, exactly the mutable index's layout): base first, then
    delta, which is the order the dict index would hold after the same
    appends — so both backends stay bit-identical through online inserts.
    Appends publish one immutable tuple per symbol, preserving the
    per-symbol atomicity (and its documented per-trajectory race window)
    of :meth:`~repro.core.invindex.InvertedIndex.append_trajectory`.
    Departure-sorted bases reject appends, like the dict variant.
    """

    def __init__(self, base: FrozenInvertedIndex, dataset: TrajectoryDataset) -> None:
        self._base = base
        self._dataset = dataset
        self._delta: Dict[int, Tuple[Posting, ...]] = {}
        self._delta_postings = 0
        self._sorted = base.sorted_by_departure
        # Index any trajectories appended to the dataset after the freeze
        # (none when the engine validated counts at construction).
        for tid in range(base.num_trajectories, len(dataset)):
            self._index_one(tid)

    @property
    def base(self) -> FrozenInvertedIndex:
        """The immutable frozen base."""
        return self._base

    @property
    def sorted_by_departure(self) -> bool:
        """Whether postings are departure-ordered (closed to appends)."""
        return self._sorted

    @property
    def delta_postings(self) -> int:
        """Postings added by online inserts since the freeze."""
        return self._delta_postings

    # -- incremental updates -------------------------------------------------

    def _index_one(self, tid: int) -> None:
        # Atomic per-trajectory publication (mirrors the dict backend):
        # stage every touched symbol's new postings tuple, then install
        # them with one dict.update — a lock-free reader never observes a
        # half-indexed trajectory.
        staged: Dict[int, Tuple[Posting, ...]] = {}
        added = 0
        for pos, sym in enumerate(self._dataset.symbols(tid)):
            staged[sym] = staged.get(
                sym, self._delta.get(sym, _EMPTY)
            ) + ((tid, pos),)
            added += 1
        self._delta.update(staged)
        self._delta_postings += added

    def append_trajectory(self, tid: int) -> None:
        """Index one trajectory appended to the dataset (delta only; the
        frozen base is never touched)."""
        if self._sorted:
            raise ValueError("cannot append to a departure-sorted index")
        self._index_one(tid)

    # -- lookups -------------------------------------------------------------

    def postings(self, symbol: int) -> Sequence[Posting]:
        """``L_q`` across base and delta (base postings first)."""
        base = self._base.postings(symbol)
        delta = self._delta.get(symbol)
        if delta is None:
            return base
        if not base:
            return delta
        return list(base) + list(delta)

    def frequency(self, symbol: int) -> int:
        """``n(q)`` across base and delta."""
        return self._base.frequency(symbol) + len(self._delta.get(symbol, _EMPTY))

    def postings_departing_before(self, symbol: int, latest: float) -> Sequence[Posting]:
        """Temporal-pruned postings (sorted bases only; a sorted base
        rejects appends, so the delta is empty by construction)."""
        if not self._sorted:
            raise ValueError("index not sorted by departure time")
        return self._base.postings_departing_before(symbol, latest)

    # -- introspection -------------------------------------------------------

    @property
    def num_symbols(self) -> int:
        """Distinct symbols with non-empty postings (base ∪ delta)."""
        extra = sum(
            1 for sym in self._delta if self._base.frequency(sym) == 0
        )
        return self._base.num_symbols + extra

    @property
    def num_postings(self) -> int:
        """Total posting count across base and delta."""
        return self._base.num_postings + self._delta_postings

    def memory_bytes(self) -> int:
        """Packed-array bytes plus the delta overlay's object sizes."""
        total = self._base.memory_bytes() + sys.getsizeof(self._delta)
        for sym, plist in self._delta.items():
            total += sys.getsizeof(sym) + sys.getsizeof(plist)
            total += sum(sys.getsizeof(p) for p in plist)
        return total

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/healthz`` and the metrics collectors."""
        out = self._base.stats()
        out["delta_postings"] = self._delta_postings
        out["num_postings"] = self.num_postings
        return out
