"""Inverted index over trajectory symbols (§4.1) — the dict-backed backend.

One postings list per symbol; a posting is ``(trajectory_id, position)``.
Postings can optionally be ordered by trajectory departure time so that
temporal constraints can prune candidates with a binary search instead of a
scan (§4.3).

This is one of two interchangeable index backends behind
:class:`~repro.core.engine.SubtrajectorySearch`:

- ``index_backend="dict"`` (this module): mutable python tuples, built
  in-process — the right default at reproduction scale and for datasets
  taking frequent online inserts.
- ``index_backend="frozen"`` (:mod:`repro.core.frozen`): the same
  postings packed into flat ``int32``/``int64`` arrays, memory-mapped
  from a versioned single-file container (byte layout specified in
  ``docs/INDEX_FORMAT.md``) and shared read-only across worker
  processes, with a dict-backed delta overlay for online inserts.

Both backends return bit-identical query results (hypothesis-pinned in
``tests/test_core_frozen.py``).
"""

from __future__ import annotations

import bisect
import sys
import time
from typing import Dict, List, Sequence, Tuple

from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["InvertedIndex"]

Posting = Tuple[int, int]  # (trajectory id, position)

_EMPTY: Tuple[Posting, ...] = ()


class InvertedIndex:
    """Postings lists ``L_q`` for every symbol occurring in the dataset.

    ``sort_by_departure=True`` orders each list by the owning trajectory's
    first timestamp and keeps a parallel key array for binary search —
    the paper's optimization for interval-constrained queries.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        sort_by_departure: bool = False,
    ) -> None:
        t0 = time.perf_counter()
        self._dataset = dataset
        self._sorted = sort_by_departure
        postings: Dict[int, List[Posting]] = {}
        for tid in range(len(dataset)):
            for pos, sym in enumerate(dataset.symbols(tid)):
                postings.setdefault(sym, []).append((tid, pos))
        self._departures: Dict[int, List[float]] = {}
        if sort_by_departure:
            for sym, plist in postings.items():
                plist.sort(key=lambda p: dataset[p[0]].start_time)
                self._departures[sym] = [dataset[p[0]].start_time for p in plist]
        self._postings: Dict[int, Tuple[Posting, ...]] = {
            sym: tuple(plist) for sym, plist in postings.items()
        }
        self.build_seconds = time.perf_counter() - t0

    @property
    def sorted_by_departure(self) -> bool:
        """Whether postings are departure-ordered (closed to appends)."""
        return self._sorted

    # -- incremental updates (§4.1: append a record) -----------------------

    def append_trajectory(self, tid: int) -> None:
        """Index one trajectory that was appended to the dataset.

        Only valid for unsorted indexes — the sorted variant is built once
        over a closed dataset (it orders by departure time).

        Publication is atomic per *trajectory*: the new postings are
        staged aside and installed with a single ``dict.update``, so a
        concurrent lock-free reader either sees none of the trajectory's
        symbols or all of them — never a prefix whose candidate counts
        would disagree with the engine's already-published length tables.
        """
        if self._sorted:
            raise ValueError("cannot append to a departure-sorted index")
        staged: Dict[int, Tuple[Posting, ...]] = {}
        for pos, sym in enumerate(self._dataset.symbols(tid)):
            staged[sym] = staged.get(
                sym, self._postings.get(sym, _EMPTY)
            ) + ((tid, pos),)
        self._postings.update(staged)

    # -- lookups ------------------------------------------------------------

    def postings(self, symbol: int) -> Sequence[Posting]:
        """``L_q``: every ``(id, position)`` where ``symbol`` occurs."""
        return self._postings.get(symbol, _EMPTY)

    def frequency(self, symbol: int) -> int:
        """``n(q)``: total occurrence count of ``symbol`` in the dataset."""
        return len(self._postings.get(symbol, _EMPTY))

    def postings_departing_before(self, symbol: int, latest: float) -> Sequence[Posting]:
        """Postings of trajectories departing at or before ``latest``.

        Requires ``sort_by_departure``; a trajectory departing after the end
        of the query interval cannot overlap it, so a binary search bounds
        the scan (§4.3).
        """
        if not self._sorted:
            raise ValueError("index not sorted by departure time")
        plist = self._postings.get(symbol, _EMPTY)
        if not plist:
            return _EMPTY
        hi = bisect.bisect_right(self._departures[symbol], latest)
        return plist[:hi]

    # -- introspection -----------------------------------------------------------

    @property
    def num_symbols(self) -> int:
        """Distinct symbols with non-empty postings."""
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        """Total posting count (== total symbols in the dataset)."""
        return sum(len(p) for p in self._postings.values())

    def memory_bytes(self) -> int:
        """Rough memory footprint of the postings (index-size metric for
        Table 6)."""
        total = sys.getsizeof(self._postings)
        for sym, plist in self._postings.items():
            total += sys.getsizeof(sym) + sys.getsizeof(plist)
            total += sum(sys.getsizeof(p) for p in plist)
        return total
