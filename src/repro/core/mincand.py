"""The minimum-candidate problem (Definition 5) and its solvers.

Choosing the tau-subsequence ``Q'`` that minimizes the candidate count is
NP-hard (Proposition 2, by reduction from the Minimum Knapsack Problem).
Four selectors are provided:

- :func:`mincand_greedy` — Algorithm 1, the primal-dual 2-approximation of
  Carnes & Shmoys (Propositions 3 and 4: exact when ``c(q)`` is constant);
- :func:`mincand_exact` — brute-force optimum, for tests and small-query
  ablations;
- :func:`mincand_prefix` — DISON-style shortest prefix with
  ``sum c(q) >= tau`` (§6.1 baseline);
- :func:`mincand_all` — Torch-style "use every symbol" (§6.1 baseline).

All selectors return a subset of the supplied :class:`QueryElement` list
whose total filter cost reaches ``tau``, or raise
:class:`~repro.exceptions.QueryError` when no subsequence can (the
``c(Q) < tau`` degenerate case discussed in §3.1).
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence

from repro.core.filtering import QueryElement
from repro.exceptions import QueryError

__all__ = ["mincand_all", "mincand_exact", "mincand_greedy", "mincand_prefix"]

_EPS = 1e-12


def _check_feasible(elements: Sequence[QueryElement], tau: float) -> None:
    if sum(e.cost for e in elements) + _EPS < tau:
        raise QueryError(
            f"no tau-subsequence exists: sum of filter costs "
            f"{sum(e.cost for e in elements):.6g} < tau={tau:.6g} "
            "(for continuous cost functions, increase eta — §3.1)"
        )


def mincand_greedy(elements: Sequence[QueryElement], tau: float) -> List[QueryElement]:
    """Algorithm 1: greedily add the element with the best value-for-price.

    Maintains the dual weights ``w_q``; each round picks the element
    minimizing ``v_q = (N_q - w_q) / min(c_q, tau - c(Q'))`` and raises all
    remaining weights by ``min(c_q, tau - c(Q')) * v_{q*}``.
    """
    if tau <= 0:
        return []
    _check_feasible(elements, tau)
    remaining = [e for e in elements if e.cost > _EPS]
    w = {e.position: 0.0 for e in remaining}
    chosen: List[QueryElement] = []
    c_sum = 0.0
    while c_sum + _EPS < tau:
        slack = tau - c_sum
        best = None
        best_v = float("inf")
        for e in remaining:
            denom = min(e.cost, slack)
            v = (e.candidate_count - w[e.position]) / denom
            # Deterministic tie-break: earlier query position wins.
            if v < best_v - _EPS or (v < best_v + _EPS and (best is None or e.position < best.position)):
                best = e
                best_v = v
        if best is None:  # pragma: no cover - guarded by _check_feasible
            raise QueryError("greedy ran out of elements before reaching tau")
        for e in remaining:
            w[e.position] += min(e.cost, slack) * best_v
        remaining.remove(best)
        chosen.append(best)
        c_sum += best.cost
    return sorted(chosen, key=lambda e: e.position)


def mincand_exact(
    elements: Sequence[QueryElement],
    tau: float,
    *,
    max_elements: int = 20,
) -> List[QueryElement]:
    """Brute-force optimum of Definition 5 (test oracle).

    Enumerates subsets by increasing size and keeps the feasible subset with
    the smallest candidate count; refuses queries longer than
    ``max_elements`` to avoid exponential blowups in production use.
    """
    if tau <= 0:
        return []
    _check_feasible(elements, tau)
    if len(elements) > max_elements:
        raise QueryError(
            f"mincand_exact limited to {max_elements} elements, got {len(elements)}"
        )
    best: List[QueryElement] | None = None
    best_obj = float("inf")
    for r in range(1, len(elements) + 1):
        for subset in combinations(elements, r):
            if sum(e.cost for e in subset) + _EPS < tau:
                continue
            obj = sum(e.candidate_count for e in subset)
            if obj < best_obj:
                best_obj = obj
                best = list(subset)
    assert best is not None  # feasibility checked above
    return sorted(best, key=lambda e: e.position)


def mincand_prefix(elements: Sequence[QueryElement], tau: float) -> List[QueryElement]:
    """DISON-style selector: the shortest *prefix* with ``c >= tau``."""
    if tau <= 0:
        return []
    _check_feasible(elements, tau)
    chosen: List[QueryElement] = []
    c_sum = 0.0
    for e in sorted(elements, key=lambda e: e.position):
        chosen.append(e)
        c_sum += e.cost
        if c_sum + _EPS >= tau:
            return chosen
    return chosen  # pragma: no cover - guarded by _check_feasible


def mincand_all(elements: Sequence[QueryElement], tau: float) -> List[QueryElement]:
    """Torch-style selector: every query position (no optimization)."""
    del tau  # Torch scans postings for all symbols regardless of threshold
    return list(elements)
