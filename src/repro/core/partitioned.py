"""Partitioned (shared-nothing) subtrajectory search.

The paper leaves distribution to future work, noting that the whole-
matching partitioners (first/last point [41, 64]) do not apply to
subtrajectory search (§2.1).  The key observation here: subtrajectory
search decomposes *perfectly by trajectory* — a match lives entirely
inside one trajectory — so hash-partitioning trajectories over shards
gives exact answers with no cross-shard coordination beyond a union.

:class:`PartitionedSubtrajectorySearch` simulates such a deployment in a
single process: one engine per shard, queries fan out to every shard
(serially here; embarrassingly parallel in a real cluster), results are
merged with ids mapped back to the global space.  Temporal constraints and
all engine options pass straight through.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.engine import QueryResult, SubtrajectorySearch
from repro.core.results import Match
from repro.core.temporal import TemporalMode, TimeInterval
from repro.core.verification import VerificationStats
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["PartitionedSubtrajectorySearch"]


class PartitionedSubtrajectorySearch:
    """Exact search over trajectory shards.

    ``num_shards`` engines are built over disjoint trajectory subsets
    (round-robin assignment, which balances shard sizes).  All constructor
    keyword arguments are forwarded to every shard engine.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs,
        *,
        num_shards: int = 4,
        **engine_kwargs,
    ) -> None:
        if num_shards < 1:
            raise QueryError("num_shards must be >= 1")
        if len(dataset) == 0:
            raise QueryError("cannot shard an empty dataset")
        num_shards = min(num_shards, len(dataset))
        self._global_ids: List[List[int]] = [[] for _ in range(num_shards)]
        shards = [
            TrajectoryDataset(dataset.graph, dataset.representation)
            for _ in range(num_shards)
        ]
        for tid in range(len(dataset)):
            shard = tid % num_shards
            shards[shard].add(dataset[tid])
            self._global_ids[shard].append(tid)
        self._engines = [
            SubtrajectorySearch(shard, costs, **engine_kwargs) for shard in shards
        ]

    @property
    def num_shards(self) -> int:
        """Number of shard engines actually built."""
        return len(self._engines)

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
    ) -> QueryResult:
        """Fan out to every shard and merge (exact, same semantics as the
        single-node engine)."""
        matches: List[Match] = []
        tau_used = 0.0
        candidates = 0
        mincand = lookup = verify = 0.0
        stats = VerificationStats()
        for engine, id_map in zip(self._engines, self._global_ids):
            result = engine.query(
                query,
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_filter=temporal_filter,
                temporal_mode=temporal_mode,
            )
            tau_used = result.tau
            candidates += result.num_candidates
            mincand += result.mincand_seconds
            lookup += result.lookup_seconds
            verify += result.verify_seconds
            s = result.verification
            stats.candidates += s.candidates
            stats.sw_columns += s.sw_columns
            stats.visited_columns += s.visited_columns
            stats.computed_columns += s.computed_columns
            stats.emitted += s.emitted
            matches.extend(
                Match(id_map[m.trajectory_id], m.start, m.end, m.distance)
                for m in result.matches
            )
        matches.sort(key=lambda m: (m.trajectory_id, m.start, m.end))
        return QueryResult(
            matches=matches,
            tau=tau_used,
            subsequence=[],
            num_candidates=candidates,
            mincand_seconds=mincand,
            lookup_seconds=lookup,
            verify_seconds=verify,
            verification=stats,
        )
