"""Partitioned (shared-nothing) subtrajectory search.

The paper leaves distribution to future work, noting that the whole-
matching partitioners (first/last point [41, 64]) do not apply to
subtrajectory search (§2.1).  The key observation here: subtrajectory
search decomposes *perfectly by trajectory* — a match lives entirely
inside one trajectory — so hash-partitioning trajectories over shards
gives exact answers with no cross-shard coordination beyond a union.

:class:`PartitionedSubtrajectorySearch` simulates such a deployment in a
single process: one engine per shard, queries fan out to every shard,
results are merged with ids mapped back to the global space.  The fan-out
runs serially by default and on a thread pool when ``max_workers`` is set;
either way the merge is deterministic (shard order, then sorted by global
``(id, start, end)``).  The per-shard work is also exposed as plain
callables (:meth:`shard_query_callables` + :meth:`merge_shard_results`) so
an external scheduler — :class:`repro.service.Executor` — can run the
fan-out on its own pool and impose deadlines between shards.  Temporal
constraints and all engine options pass straight through.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, List, Optional, Sequence

from repro.core.engine import QueryResult, SubtrajectorySearch
from repro.core.results import Match
from repro.core.temporal import TemporalMode, TimeInterval
from repro.core.verification import VerificationStats
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["PartitionedSubtrajectorySearch"]


class PartitionedSubtrajectorySearch:
    """Exact search over trajectory shards.

    ``num_shards`` engines are built over disjoint trajectory subsets
    (round-robin assignment, which balances shard sizes).  All constructor
    keyword arguments are forwarded to every shard engine.

    ``max_workers`` opts in to parallel fan-out: shard queries run on a
    shared thread pool of that size (capped at the shard count).  The
    default ``None`` keeps the historical serial behaviour.  Parallel and
    serial fan-out produce identical results — the merge collects shard
    results in shard order regardless of completion order.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs,
        *,
        num_shards: int = 4,
        max_workers: Optional[int] = None,
        **engine_kwargs,
    ) -> None:
        if num_shards < 1:
            raise QueryError("num_shards must be >= 1")
        if len(dataset) == 0:
            raise QueryError("cannot shard an empty dataset")
        if max_workers is not None and max_workers < 1:
            raise QueryError("max_workers must be >= 1")
        num_shards = min(num_shards, len(dataset))
        self._global_ids: List[List[int]] = [[] for _ in range(num_shards)]
        shards = [
            TrajectoryDataset(dataset.graph, dataset.representation)
            for _ in range(num_shards)
        ]
        for tid in range(len(dataset)):
            shard = tid % num_shards
            shards[shard].add(dataset[tid])
            self._global_ids[shard].append(tid)
        self._engines = [
            SubtrajectorySearch(shard, costs, **engine_kwargs) for shard in shards
        ]
        self._costs = costs
        self._update_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        if max_workers is not None and num_shards > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=min(max_workers, num_shards),
                thread_name_prefix="repro-shard",
            )

    @property
    def num_shards(self) -> int:
        """Number of shard engines actually built."""
        return len(self._engines)

    @property
    def costs(self):
        """The cost model shared by every shard engine."""
        return self._costs

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._global_ids)

    def close(self) -> None:
        """Shut down the fan-out thread pool (no-op for serial mode)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- online updates -----------------------------------------------------

    def add_trajectory(self, trajectory, *, validate: bool = False) -> int:
        """Append one trajectory, continuing the round-robin assignment
        (global id ``g`` lives on shard ``g % num_shards``, exactly as at
        construction).  Returns the new global trajectory id.

        Serialized against concurrent inserts so global ids stay dense and
        unique when called from server threads."""
        with self._update_lock:
            gid = len(self)
            shard = gid % self.num_shards
            # Reserve the global id *before* the shard engine can match the
            # new trajectory: a concurrent query that sees the trajectory
            # must find its id in the map (the reverse order would let the
            # merge hit an unmapped shard-local id).  An id mapped early is
            # harmless — no match can reference it until the engine insert
            # lands.
            self._global_ids[shard].append(gid)
            try:
                self._engines[shard].add_trajectory(trajectory, validate=validate)
            except BaseException:
                self._global_ids[shard].pop()
                raise
            return gid

    # -- shard fan-out ------------------------------------------------------

    def shard_query_callables(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
    ) -> List[Callable[[], QueryResult]]:
        """One zero-argument callable per shard, each returning that shard's
        :class:`QueryResult` (shard-local trajectory ids).

        The callables are independent and thread-safe to run concurrently;
        pass their results *in shard order* to :meth:`merge_shard_results`.
        """
        return [
            partial(
                engine.query,
                query,
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_filter=temporal_filter,
                temporal_mode=temporal_mode,
            )
            for engine in self._engines
        ]

    def merge_shard_results(self, results: Sequence[QueryResult]) -> QueryResult:
        """Union shard results (given in shard order) into one global
        :class:`QueryResult`: ids mapped back to the global space, matches
        sorted by ``(id, start, end)``, timings and counters summed."""
        if len(results) != len(self._engines):
            raise QueryError(
                f"expected {len(self._engines)} shard results, got {len(results)}"
            )
        matches: List[Match] = []
        tau_used = 0.0
        candidates = 0
        mincand = lookup = verify = 0.0
        stats = VerificationStats()
        for result, id_map in zip(results, self._global_ids):
            tau_used = result.tau
            candidates += result.num_candidates
            mincand += result.mincand_seconds
            lookup += result.lookup_seconds
            verify += result.verify_seconds
            s = result.verification
            stats.candidates += s.candidates
            stats.sw_columns += s.sw_columns
            stats.visited_columns += s.visited_columns
            stats.computed_columns += s.computed_columns
            stats.emitted += s.emitted
            matches.extend(
                Match(id_map[m.trajectory_id], m.start, m.end, m.distance)
                for m in result.matches
            )
        matches.sort(key=lambda m: (m.trajectory_id, m.start, m.end))
        return QueryResult(
            matches=matches,
            tau=tau_used,
            subsequence=[],
            num_candidates=candidates,
            mincand_seconds=mincand,
            lookup_seconds=lookup,
            verify_seconds=verify,
            verification=stats,
        )

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
    ) -> QueryResult:
        """Fan out to every shard and merge (exact, same semantics as the
        single-node engine)."""
        calls = self.shard_query_callables(
            query,
            tau=tau,
            tau_ratio=tau_ratio,
            time_interval=time_interval,
            temporal_filter=temporal_filter,
            temporal_mode=temporal_mode,
        )
        if self._pool is None:
            results = [call() for call in calls]
        else:
            results = list(self._pool.map(lambda call: call(), calls))
        return self.merge_shard_results(results)
