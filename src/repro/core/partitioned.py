"""Partitioned (shared-nothing) subtrajectory search.

The paper leaves distribution to future work, noting that the whole-
matching partitioners (first/last point [41, 64]) do not apply to
subtrajectory search (§2.1).  The key observation here: subtrajectory
search decomposes *perfectly by trajectory* — a match lives entirely
inside one trajectory — so hash-partitioning trajectories over shards
gives exact answers with no cross-shard coordination beyond a union.

:class:`PartitionedSubtrajectorySearch` simulates such a deployment on a
single machine with three interchangeable fan-out backends:

- ``"serial"`` — shards queried one after another in the caller's thread
  (the historical default; lowest overhead for tiny shards);
- ``"threads"`` — shard queries run on a shared thread pool.  Overlaps
  the non-GIL-bound parts only: pure-Python verification serializes on
  the GIL, so this tops out near one core;
- ``"processes"`` — each shard's engine lives in a long-lived worker
  process (:class:`~repro.core.workers.ShardWorkerPool`), fed pickled
  query descriptors over pipes.  CPU-bound verification then genuinely
  parallelizes: a single query uses up to one core per shard;
- ``"remote"`` — each shard's engine lives in a standalone worker node
  (``repro worker --listen``; :mod:`repro.core.remote`), reached over a
  length-prefixed socket transport and addressed by a JSON shard map.
  Same protocol, supervision, journal-replay and retry semantics as
  ``processes`` — plus reconnect-with-backoff, heartbeats, per-call
  deadlines, and injectable network faults, because links fail in ways
  pipes cannot.

Whatever the backend, the merge is deterministic (shard order, then
sorted by global ``(id, start, end)``) and answers are element-for-
element identical to a single-node engine.  The per-shard work is also
exposed as plain callables (:meth:`shard_query_callables` +
:meth:`merge_shard_results`) so an external scheduler —
:class:`repro.service.Executor` — can run the fan-out on its own pool
and impose deadlines between shards.  Temporal constraints, cooperative
cancellation tokens, and all engine options pass straight through.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.cancellation import raise_if_cancelled
from repro.core.engine import (
    DEFAULT_TRIE_CACHE,
    DEFAULT_TRIE_CACHE_BYTES,
    QueryResult,
    SubtrajectorySearch,
)
from repro.core.frozen import shard_index_path
from repro.core.results import Match
from repro.core.trie import TrieCache
from repro.core.temporal import TemporalMode, TimeInterval
from repro.core.verification import VerificationStats
from repro.core.supervision import WorkerState
from repro.core.workers import ShardWorkerPool
from repro.exceptions import QueryError, ShardUnavailableError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["PartitionedSubtrajectorySearch"]

_BACKENDS = ("serial", "threads", "processes", "remote")
#: backends whose shard engines live in another process: workers build
#: their own engines, caches cannot be shared, faults can be injected.
_OUT_OF_PROCESS = ("processes", "remote")


class _GlobalDatasetView:
    """Read-only view of the partitioned corpus in *global* id order.

    The parent keeps a per-shard dataset mirror on every backend (shard
    engines alias it in-process; worker inserts are mirrored after the
    authoritative replica acks), and round-robin assignment makes the
    global↔local mapping arithmetic: global id ``g`` is local id
    ``g // num_shards`` on shard ``g % num_shards``.  That is all a
    whole-corpus consumer — e.g. the top-k exhaustion sweep — needs, so
    this view exposes the single-node dataset surface it reads
    (``len()`` + ``symbols``) without materializing a merged copy.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "PartitionedSubtrajectorySearch") -> None:
        self._owner = owner

    def __len__(self) -> int:
        return len(self._owner)

    def symbols(self, tid: int):
        n = self._owner.num_shards
        return self._owner._shards[tid % n].symbols(tid // n)


class PartitionedSubtrajectorySearch:
    """Exact search over trajectory shards.

    ``num_shards`` engines are built over disjoint trajectory subsets
    (round-robin assignment, which balances shard sizes).  All constructor
    keyword arguments are forwarded to every shard engine.

    Engine keyword arguments — including ``dp_backend`` (the adaptive
    ``"auto"`` default every shard engine inherits) and
    ``substitution_cache_size`` (each shard engine keeps its own
    SubstitutionMatrix LRU; see :meth:`substitution_cache_stats` for the
    aggregate) — are forwarded verbatim to each shard's
    :class:`~repro.core.engine.SubtrajectorySearch` (in-process or inside
    its worker process).

    The warm trie cache is the one exception to shard-local state: trie
    columns are dataset-independent (keyed by data-symbol path, never by
    trajectory), so on the in-process backends (``serial``/``threads``)
    all shard engines share **one** :class:`~repro.core.trie.TrieCache` —
    shard A's verification warms shard B's, and a fan-out query's shards
    walk the same tries concurrently (safe: writer rounds serialize on
    each trie's lock, readers are lock-free).  ``trie_cache_size`` /
    ``trie_cache_bytes`` size that shared cache, or pass a prebuilt
    ``trie_cache``.  The ``processes`` backend cannot share memory across
    workers, so there the knobs size one cache *per worker* and
    :meth:`trie_cache_stats` sums them.

    ``index_backend="frozen"`` with an ``index_path`` *stem* resolves one
    frozen index file per shard (``<stem>.shard<k>-of-<N>`` as written by
    ``repro index build --shards N``, or the stem itself for one shard)
    and forwards it to the owning shard engine along with the expected
    shard provenance, so a mismatched file fails loudly at construction.
    On the ``processes`` backend this is the whole point: each worker
    mmaps its shard's file in O(1) instead of rebuilding (or unpickling)
    postings, and the OS page cache shares the bytes across workers.

    ``backend`` selects the fan-out strategy (see the module docstring).
    For backward compatibility it defaults to ``"threads"`` when
    ``max_workers`` is given and ``"serial"`` otherwise; pass it
    explicitly for ``"processes"``.  ``max_workers`` sizes the threads
    backend's pool (capped at the shard count, default = shard count)
    and is rejected on the other backends — the processes backend always
    runs one worker per shard.  All backends produce identical results:
    the merge collects shard results in shard order regardless of
    completion order.

    The processes backend holds OS resources (worker processes, pipes);
    call :meth:`close` when done.  Unclosed engines are cleaned up at
    interpreter exit, and the class works as a context manager.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        costs,
        *,
        num_shards: int = 4,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        start_method: Optional[str] = None,
        supervise: bool = True,
        fault_plan=None,
        breaker_failures: int = 3,
        breaker_cooldown: float = 1.0,
        respawn_backoff: float = 0.05,
        respawn_backoff_cap: float = 2.0,
        shard_map: Optional[Sequence[str]] = None,
        connect_timeout: float = 5.0,
        remote_call_timeout: Optional[float] = None,
        **engine_kwargs,
    ) -> None:
        if num_shards < 1:
            raise QueryError("num_shards must be >= 1")
        if len(dataset) == 0:
            raise QueryError("cannot shard an empty dataset")
        if max_workers is not None and max_workers < 1:
            raise QueryError("max_workers must be >= 1")
        if backend is None:
            backend = "threads" if max_workers is not None else "serial"
        if backend not in _BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r} (expected one of {_BACKENDS})"
            )
        if backend != "threads" and max_workers is not None:
            raise QueryError(
                f"backend={backend!r} does not take max_workers (the thread "
                "pool is the threads backend's; processes always runs one "
                "worker per shard)"
            )
        if backend not in _OUT_OF_PROCESS and fault_plan is not None:
            # In-process shards cannot die independently of the parent —
            # there is nothing for a fault plan to act on.
            raise QueryError(
                f"backend={backend!r} does not take a fault_plan (fault "
                "injection targets out-of-process shard workers)"
            )
        if backend == "remote":
            if shard_map is None:
                raise QueryError(
                    "backend='remote' needs a shard_map: one 'host:port' "
                    "worker-node address per shard"
                )
            # The shard map IS the shard layout: one node, one shard.
            num_shards = len(shard_map)
            if num_shards > len(dataset):
                raise QueryError(
                    f"shard map has {num_shards} nodes but the dataset has "
                    f"only {len(dataset)} trajectories (a node would own an "
                    "empty shard)"
                )
        elif shard_map is not None:
            raise QueryError(
                f"backend={backend!r} does not take a shard_map (node "
                "addresses drive the remote backend)"
            )
        num_shards = min(num_shards, len(dataset))
        index_path = engine_kwargs.pop("index_path", None)
        if index_path is not None and engine_kwargs.get("index_backend") != "frozen":
            raise QueryError("index_path requires index_backend='frozen'")
        # Per-shard engine kwargs: shard k opens its own frozen file and
        # must find its own shard provenance in the header.
        per_shard_kwargs: Optional[List[Dict[str, Any]]] = None
        if index_path is not None:
            per_shard_kwargs = [
                {
                    "index_path": shard_index_path(index_path, i, num_shards),
                    "index_expected_shard": (
                        None if num_shards == 1 else (i, num_shards)
                    ),
                }
                for i in range(num_shards)
            ]
        self._backend = backend
        self._dp_backend = str(engine_kwargs.get("dp_backend", "auto"))
        self._trie_cache: Optional[TrieCache] = None
        if backend in _OUT_OF_PROCESS:
            if "trie_cache" in engine_kwargs:
                # Fail here with the real reason, not deep in the worker
                # spawn as an opaque "cannot pickle thread lock".
                raise QueryError(
                    f"backend={backend!r} cannot share a prebuilt trie_cache "
                    "across worker processes; pass trie_cache_size / "
                    "trie_cache_bytes to size each worker's own cache"
                )
        else:
            # One shared cross-query trie cache for all in-process shard
            # engines (columns are dataset-independent — see the class
            # docstring); workers keep per-process caches instead.
            shared = engine_kwargs.pop("trie_cache", None)
            if shared is None:
                size = engine_kwargs.pop("trie_cache_size", DEFAULT_TRIE_CACHE)
                max_bytes = engine_kwargs.pop(
                    "trie_cache_bytes", DEFAULT_TRIE_CACHE_BYTES
                )
                if size < 0:
                    raise QueryError("trie_cache_size must be >= 0")
                if max_bytes is not None and max_bytes < 0:
                    raise QueryError("trie_cache_bytes must be >= 0")
                shared = TrieCache(size, max_bytes)
            self._trie_cache = shared
            engine_kwargs = dict(engine_kwargs, trie_cache=shared)
        self._global_ids: List[List[int]] = [[] for _ in range(num_shards)]
        self._shards = [
            TrajectoryDataset(dataset.graph, dataset.representation)
            for _ in range(num_shards)
        ]
        for tid in range(len(dataset)):
            shard = tid % num_shards
            self._shards[shard].add(dataset[tid])
            self._global_ids[shard].append(tid)
        self._costs = costs
        self._update_lock = threading.Lock()
        self._closed = False
        self._engines: List[SubtrajectorySearch] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._workers: Optional[ShardWorkerPool] = None
        if backend in _OUT_OF_PROCESS:
            # Engines are built inside the workers — index memory and
            # build time live there, once, not in the parent too.  With a
            # frozen index_path the workers ship only the *path*: each
            # opens its shard's file by mmap instead of rebuilding.  On
            # "remote" the workers are standalone nodes from shard_map
            # and a respawn is a reconnect.
            self._workers = ShardWorkerPool(
                self._shards,
                costs,
                engine_kwargs,
                start_method=start_method,
                per_shard_kwargs=per_shard_kwargs,
                supervise=supervise,
                fault_plan=fault_plan,
                breaker_failures=breaker_failures,
                breaker_cooldown=breaker_cooldown,
                respawn_backoff=respawn_backoff,
                respawn_backoff_cap=respawn_backoff_cap,
                shard_map=list(shard_map) if backend == "remote" else None,
                connect_timeout=connect_timeout,
                call_timeout=remote_call_timeout,
            )
        else:
            self._engines = [
                SubtrajectorySearch(
                    shard,
                    costs,
                    **(
                        engine_kwargs
                        if per_shard_kwargs is None
                        else {**engine_kwargs, **per_shard_kwargs[i]}
                    ),
                )
                for i, shard in enumerate(self._shards)
            ]
            if backend == "threads" and num_shards > 1:
                workers = num_shards if max_workers is None else max_workers
                self._pool = ThreadPoolExecutor(
                    max_workers=min(workers, num_shards),
                    thread_name_prefix="repro-shard",
                )

    @property
    def num_shards(self) -> int:
        """Number of shards actually built."""
        return len(self._global_ids)

    @property
    def backend(self) -> str:
        """The fan-out backend: ``serial``, ``threads``, ``processes``,
        or ``remote``."""
        return self._backend

    def nodes(self) -> List[Optional[str]]:
        """Per-shard worker-node addresses (all ``None`` except on the
        remote backend)."""
        self._check_open()
        if self._workers is not None:
            return self._workers.nodes()
        return [None] * self.num_shards

    @property
    def costs(self):
        """The cost model shared by every shard engine."""
        return self._costs

    @property
    def dataset(self):
        """The whole corpus as a read-only global-id-ordered view (the
        surface :func:`repro.core.topk.topk_search` scans; backed by the
        per-shard mirrors, so it is current on every backend)."""
        return _GlobalDatasetView(self)

    @property
    def dp_backend(self) -> str:
        """The verification DP backend every shard engine is configured
        with (``"auto"`` resolves per query inside each shard)."""
        return self._dp_backend

    # -- supervision snapshots ----------------------------------------------

    def worker_states(self) -> List[WorkerState]:
        """Per-shard supervision snapshots (``/healthz`` / ``/metrics``).

        On the processes backend these come from the pool's supervisor
        (liveness, pid, restart count, breaker state).  In-process shards
        share the parent's fate, so the other backends report synthetic
        always-alive states — the endpoint shape is backend-uniform.
        """
        self._check_open()
        if self._workers is not None:
            return self._workers.worker_states()
        return [
            WorkerState(
                shard=shard,
                alive=True,
                pid=None,
                restarts=0,
                breaker="closed",
                consecutive_failures=0,
            )
            for shard in range(self.num_shards)
        ]

    def restarts_total(self) -> int:
        """Completed shard-worker respawns — reconnects on the remote
        backend (0 on in-process backends)."""
        self._check_open()
        return 0 if self._workers is None else self._workers.restarts_total()

    def retry_after(self) -> float:
        """Seconds until the soonest open breaker admits a probe (0 when
        every shard is serving) — the HTTP 503 ``Retry-After`` basis."""
        self._check_open()
        return 0.0 if self._workers is None else self._workers.retry_after()

    #: summed fields of each engine-level cache's counters.
    _SUB_FIELDS = ("capacity", "size", "hits", "misses")
    _TRIE_FIELDS = ("capacity", "size", "bytes", "hits", "misses", "evictions")
    _INDEX_FIELDS = (
        "num_symbols",
        "num_postings",
        "delta_postings",
        "bytes",
        "file_bytes",
        "resident_bytes",
    )

    def _aggregate(
        self, parts: Sequence[Optional[Dict[str, int]]], fields: Sequence[str]
    ) -> Dict[str, int]:
        """Sum per-shard counter dicts; ``None`` parts (busy workers on a
        non-blocking poll) are skipped and ``shards_reporting`` says how
        many answered."""
        agg = {field: 0 for field in fields}
        agg["shards"] = self.num_shards
        agg["shards_reporting"] = 0
        for part in parts:
            if part is None:
                continue
            agg["shards_reporting"] += 1
            for field in fields:
                agg[field] += int(part.get(field, 0))
        return agg

    def substitution_cache_stats(self) -> Dict[str, int]:
        """Aggregated SubstitutionMatrix-LRU counters across shards.

        Sums capacity/size/hits/misses over every shard engine.  On the
        processes backend the workers are polled without blocking — a
        worker busy with an in-flight query is skipped rather than
        stalling a health probe behind a long verification —
        ``shards_reporting`` says how many answered.
        """
        self._check_open()
        if self._workers is not None:
            parts = self._workers.substitution_cache_stats()
        else:
            parts = [engine.substitution_cache_stats() for engine in self._engines]
        return self._aggregate(parts, self._SUB_FIELDS)

    def trie_cache_stats(self) -> Dict[str, int]:
        """TrieCache counters across shards.

        On the in-process backends all shards share one cache, so its
        counters are reported directly (``shards_reporting`` = every
        shard, since every shard feeds the same cache).  On the processes
        backend each worker keeps its own cache; the counters are summed
        over the workers, polled without blocking — a worker busy with an
        in-flight query is skipped rather than stalling a health probe —
        and ``shards_reporting`` says how many answered.
        """
        self._check_open()
        if self._workers is None:
            stats: Dict[str, int] = dict(self._trie_cache.stats())
            stats["shards"] = self.num_shards
            stats["shards_reporting"] = self.num_shards
            return stats
        return self._aggregate(self._workers.trie_cache_stats(), self._TRIE_FIELDS)

    def _aggregate_index(
        self, parts: Sequence[Optional[Dict[str, Any]]]
    ) -> Dict[str, Any]:
        """Sum per-shard index counters and carry the non-numeric facts:
        the backend name (uniform across shards by construction) and
        whether *every* reporting shard serves from an mmap."""
        agg: Dict[str, Any] = self._aggregate(parts, self._INDEX_FIELDS)
        reporting = [p for p in parts if p is not None]
        agg["backend"] = reporting[0].get("backend", "") if reporting else ""
        agg["mmap"] = bool(reporting) and all(p.get("mmap") for p in reporting)
        return agg

    def index_stats(self) -> Dict[str, Any]:
        """Aggregated inverted-index stats across shards (backend, summed
        sizes/bytes, whether every shard serves from an mmap).  On the
        processes backend the workers are polled without blocking — busy
        workers are skipped, ``shards_reporting`` says how many answered.
        """
        self._check_open()
        if self._workers is not None:
            combined = self._workers.cache_stats()
            parts = [None if p is None else p.get("index") for p in combined]
        else:
            parts = [engine.index_stats() for engine in self._engines]
        return self._aggregate_index(parts)

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Both engine-level caches' aggregates from ONE worker poll.

        ``/healthz`` and ``/stats`` consume this instead of calling the
        per-cache methods back to back: on the processes backend that
        would cross every worker's pipe twice and could report the two
        caches from different snapshots (a worker turning busy between
        the polls would count toward one and not the other).
        """
        self._check_open()
        if self._workers is None:
            return {
                "substitution": self.substitution_cache_stats(),
                "trie": self.trie_cache_stats(),
                "index": self.index_stats(),
            }
        combined = self._workers.cache_stats()
        return {
            "substitution": self._aggregate(
                [None if p is None else p.get("substitution") for p in combined],
                self._SUB_FIELDS,
            ),
            "trie": self._aggregate(
                [None if p is None else p.get("trie") for p in combined],
                self._TRIE_FIELDS,
            ),
            "index": self._aggregate_index(
                [None if p is None else p.get("index") for p in combined]
            ),
        }

    def observability_cache_stats(self) -> Dict[str, Any]:
        """Per-shard (unaggregated) cache counters for ``/metrics``.

        Unlike :meth:`cache_stats` (which sums for ``/stats``), the
        metrics endpoint wants one labelled sample per cache instance:
        in-process backends report one substitution cache per shard and
        the single **shared** trie cache; the processes backend reports
        both caches per worker from ONE non-blocking poll (busy workers
        are skipped, ``reporting`` says how many answered).
        """
        self._check_open()
        out: Dict[str, Any] = {"shards": self.num_shards}
        if self._workers is None:
            out["reporting"] = self.num_shards
            out["substitution"] = [
                (str(i), engine.substitution_cache_stats())
                for i, engine in enumerate(self._engines)
            ]
            out["trie"] = [("shared", dict(self._trie_cache.stats()))]
            out["index"] = [
                (str(i), engine.index_stats())
                for i, engine in enumerate(self._engines)
            ]
            return out
        combined = self._workers.cache_stats()
        substitution = []
        trie = []
        index = []
        reporting = 0
        for i, part in enumerate(combined):
            if part is None:
                continue
            reporting += 1
            substitution.append((str(i), part["substitution"]))
            trie.append((str(i), part["trie"]))
            if "index" in part:
                index.append((str(i), part["index"]))
        out["reporting"] = reporting
        out["substitution"] = substitution
        out["trie"] = trie
        out["index"] = index
        return out

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._global_ids)

    def close(self) -> None:
        """Release fan-out resources (thread pool / worker processes).

        Idempotent, and safe on any backend.  Process workers still alive
        at interpreter exit are terminated by an ``atexit`` hook, but an
        explicit (or context-manager) close is the orderly path.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._workers is not None:
            self._workers.close()

    def _check_open(self) -> None:
        # Uniform across backends: a closed engine fails loudly instead of
        # silently degrading (threads would otherwise fall back to serial).
        if self._closed:
            raise QueryError("engine is closed")

    def __enter__(self) -> "PartitionedSubtrajectorySearch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- online updates -----------------------------------------------------

    def add_trajectory(self, trajectory, *, validate: bool = False) -> int:
        """Append one trajectory, continuing the round-robin assignment
        (global id ``g`` lives on shard ``g % num_shards``, exactly as at
        construction).  Returns the new global trajectory id.

        Serialized against concurrent inserts so global ids stay dense and
        unique when called from server threads.  On the processes backend
        the insert is *replicated* to the owning worker with the expected
        shard-local id attached; the worker acknowledges synchronously
        (read-your-writes) and raises
        :class:`~repro.exceptions.WorkerError` if its replica disagrees."""
        self._check_open()
        with self._update_lock:
            gid = len(self)
            shard = gid % self.num_shards
            # Reserve the global id *before* the shard engine can match the
            # new trajectory: a concurrent query that sees the trajectory
            # must find its id in the map (the reverse order would let the
            # merge hit an unmapped shard-local id).  An id mapped early is
            # harmless — no match can reference it until the engine insert
            # lands.
            self._global_ids[shard].append(gid)
            try:
                if self._workers is not None:
                    local_id = len(self._shards[shard])
                    self._workers.replicate_add(
                        shard, local_id, trajectory, validate=validate
                    )
                    # The worker (the authoritative replica) committed and
                    # agreed on the id; mirror into the parent's copy so a
                    # later rebuild/export sees the same shard contents.
                    self._shards[shard].add(trajectory)
                else:
                    self._engines[shard].add_trajectory(
                        trajectory, validate=validate
                    )
            except BaseException:
                self._global_ids[shard].pop()
                raise
            return gid

    # -- shard fan-out ------------------------------------------------------

    def shard_query_callables(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
        cancel=None,
        trace=None,
    ) -> List[Callable[[], QueryResult]]:
        """One zero-argument callable per shard, each returning that shard's
        :class:`QueryResult` (shard-local trajectory ids).

        The callables are independent and thread-safe to run concurrently;
        pass their results *in shard order* to :meth:`merge_shard_results`.
        ``cancel`` (a cooperative cancellation token) is threaded into
        every shard query — tripping it stops all shards' verification
        loops within one iteration, on every backend.  ``trace`` (a
        :class:`repro.obs.tracing.Span`, or None) makes each callable open
        a per-shard child span covering its own execution window — spans
        open inside the callable, so an external scheduler's queueing
        delay is visible as the gap between the parent span and the shard
        spans.
        """
        self._check_open()
        kwargs = dict(
            tau=tau,
            tau_ratio=tau_ratio,
            time_interval=time_interval,
            temporal_filter=temporal_filter,
            temporal_mode=temporal_mode,
        )
        if self._workers is not None:
            return [
                partial(
                    self._worker_shard_query,
                    shard, list(query), kwargs, cancel, trace,
                )
                for shard in range(self.num_shards)
            ]
        return [
            partial(
                self._in_process_shard_query,
                shard, engine, query, kwargs, cancel, trace,
            )
            for shard, engine in enumerate(self._engines)
        ]

    def _in_process_shard_query(
        self, shard, engine, query, kwargs, cancel, trace
    ) -> QueryResult:
        if trace is None:
            return engine.query(query, cancel=cancel, **kwargs)
        span = trace.child("shard", shard=shard, backend=self._backend)
        try:
            return engine.query(query, cancel=cancel, trace=span, **kwargs)
        except BaseException as exc:
            span.set("error", type(exc).__name__)
            raise
        finally:
            span.finish()

    def _worker_shard_query(
        self, shard, query, kwargs, cancel, trace
    ) -> QueryResult:
        if trace is None:
            return self._workers.query_shard(shard, query, kwargs, cancel)
        span = trace.child("shard", shard=shard, backend=self._backend)
        try:
            result, exported = self._workers.query_shard(
                shard, query, kwargs, cancel, trace_ctx=span.context()
            )
            span.graft(exported)
            return result
        except BaseException as exc:
            span.set("error", type(exc).__name__)
            raise
        finally:
            span.finish()

    def merge_shard_results(
        self, results: Sequence[Optional[QueryResult]]
    ) -> QueryResult:
        """Union shard results (given in shard order) into one global
        :class:`QueryResult`: ids mapped back to the global space, matches
        sorted by ``(id, start, end)``, timings and counters summed.

        A ``None`` entry is a *degraded* shard (its worker stayed down and
        the caller opted into ``allow_partial``): its matches are simply
        missing, the merged result carries ``complete=False`` and the
        shard's index in ``degraded_shards``.  All ``None`` raises
        :class:`~repro.exceptions.ShardUnavailableError` — there is
        nothing to serve a partial answer from."""
        if len(results) != self.num_shards:
            raise QueryError(
                f"expected {self.num_shards} shard results, got {len(results)}"
            )
        degraded = tuple(
            shard for shard, result in enumerate(results) if result is None
        )
        if len(degraded) == self.num_shards:
            raise ShardUnavailableError(
                "every shard is unavailable (nothing to serve a partial "
                "result from)"
            )
        matches: List[Match] = []
        tau_used = 0.0
        candidates = 0
        mincand = lookup = verify = 0.0
        allocations = 0
        dp_rounds = 0
        backend_used = ""
        trie_statuses: List[str] = []
        stats = VerificationStats()
        for result, id_map in zip(results, self._global_ids):
            if result is None:
                continue
            tau_used = result.tau
            candidates += result.num_candidates
            mincand += result.mincand_seconds
            lookup += result.lookup_seconds
            verify += result.verify_seconds
            allocations += result.dp_array_allocations
            dp_rounds += result.dp_rounds
            backend_used = backend_used or result.dp_backend_used
            status = result.trie_cache_status
            if status and status not in trie_statuses:
                trie_statuses.append(status)
            s = result.verification
            stats.candidates += s.candidates
            stats.sw_columns += s.sw_columns
            stats.visited_columns += s.visited_columns
            stats.computed_columns += s.computed_columns
            stats.emitted += s.emitted
            stats.duplicate_candidates += s.duplicate_candidates
            matches.extend(
                Match(id_map[m.trajectory_id], m.start, m.end, m.distance)
                for m in result.matches
            )
        matches.sort(key=lambda m: (m.trajectory_id, m.start, m.end))
        return QueryResult(
            matches=matches,
            tau=tau_used,
            subsequence=[],
            num_candidates=candidates,
            mincand_seconds=mincand,
            lookup_seconds=lookup,
            verify_seconds=verify,
            verification=stats,
            dp_backend_used=backend_used,
            dp_array_allocations=allocations,
            dp_rounds=dp_rounds,
            trie_cache_status="+".join(sorted(trie_statuses)),
            complete=not degraded,
            degraded_shards=degraded,
        )

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
        cancel=None,
        trace=None,
        allow_partial: bool = False,
    ) -> QueryResult:
        """Fan out to every shard and merge (exact, same semantics as the
        single-node engine).  ``cancel`` optionally carries a deadline /
        cancellation token through to every shard's verification loop.
        ``trace`` (a :class:`repro.obs.tracing.Span`, or None) collects
        one child span per shard — on the processes backend the workers'
        own engine-stage spans are stitched underneath them.

        ``allow_partial`` opts into graceful degradation on the processes
        backend: a shard whose worker stays down (even after the pool's
        respawn-and-retry) yields no matches instead of failing the whole
        query, and the merged result says so (``complete=False`` +
        ``degraded_shards``).  In-process shards share the parent's fate
        and cannot independently fail, so the flag is accepted but inert
        on the other backends."""
        self._check_open()
        raise_if_cancelled(cancel, "query")
        if self._workers is not None:
            kwargs: Dict[str, Any] = dict(
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_filter=temporal_filter,
                temporal_mode=temporal_mode,
            )
            # Send to every worker before collecting any reply: all shard
            # processes verify concurrently (no parent-side threads needed).
            if trace is None:
                results = self._workers.query_all(
                    list(query), kwargs, cancel, allow_partial=allow_partial
                )
            else:
                spans = [
                    trace.child("shard", shard=i, backend=self._backend)
                    for i in range(self.num_shards)
                ]
                try:
                    # on_reply closes each shard's span the moment its
                    # reply is collected, so span ends track per-shard
                    # completion rather than the full fan-out; on_event
                    # pins retry/degrade decisions onto the shard spans.
                    payloads = self._workers.query_all(
                        list(query),
                        kwargs,
                        cancel,
                        trace_ctxs=[span.context() for span in spans],
                        on_reply=lambda i: spans[i].finish(),
                        allow_partial=allow_partial,
                        on_event=lambda i, event: spans[i].set("fault", event),
                    )
                finally:
                    for span in spans:  # no-op on already-finished spans
                        span.finish()
                results = []
                for span, payload in zip(spans, payloads):
                    if payload is None:
                        results.append(None)
                        continue
                    result, exported = payload
                    span.graft(exported)
                    results.append(result)
            merged = self.merge_shard_results(results)
        else:
            calls = self.shard_query_callables(
                query,
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_filter=temporal_filter,
                temporal_mode=temporal_mode,
                cancel=cancel,
                trace=trace,
            )
            if self._pool is None:
                results = [call() for call in calls]
            else:
                results = list(self._pool.map(lambda call: call(), calls))
            merged = self.merge_shard_results(results)
        if trace is not None:
            trace.set("shards", self.num_shards)
            trace.set("matches", len(merged.matches))
            trace.set("candidates", merged.num_candidates)
        return merged

    def topk(
        self,
        query: Sequence[int],
        k: int,
        *,
        initial_tau_ratio: float = 0.05,
        growth: float = 2.0,
        cancel=None,
        allow_partial: bool = False,
        trace=None,
    ):
        """The ``k`` most similar subtrajectories across all shards —
        :func:`repro.core.topk.topk_search` run with this engine as the
        probe target.  The tau-doubling loop sits *above* the shard
        fan-out: every probe round is one ordinary :meth:`query` (worker
        pipes / remote RPC, supervision, retry-once, journal replay all
        unchanged), and ``allow_partial`` degrades probe rounds exactly
        like range queries (the result is then ``complete=False``)."""
        from repro.core.topk import topk_search  # circular at import time

        self._check_open()
        return topk_search(
            self,
            query,
            k,
            initial_tau_ratio=initial_tau_ratio,
            growth=growth,
            cancel=cancel,
            allow_partial=allow_partial,
            trace=trace,
        )
