"""Standalone shard worker nodes: ``repro worker --listen HOST:PORT``.

A worker node is the remote half of the ``backend="remote"`` serving
tier.  It owns no configuration of its own — it listens on a TCP port
and serves whatever shard each connecting pool ships it:

- every accepted connection starts with a ``hello`` frame carrying the
  shard index, the shard's dataset snapshot, the cost model, engine
  kwargs, the worker-side fault table, and the request-ordinal offsets
  consumed by the shard's previous incarnations;
- the node builds a **fresh engine per connection** and answers with the
  same req-0 readiness handshake the pipe workers use (engine length =
  the client's journal-replay watermark, plus the node pid).  Connection
  = incarnation is what makes reconnection sound: an engine surviving a
  dropped connection could hold an insert whose ack was lost in flight,
  leaving it permanently ahead of the client's expected ids — rebuilding
  from the shipped snapshot and letting the client replay its journal
  past the watermark restores bit-identical state instead;
- after the handshake the connection speaks the exact pipe protocol of
  :func:`repro.core.workers._worker_main` — that function *is* the serve
  loop, run over a small adapter that frames replies and splits
  out-of-band ``("cancel", req_id)`` frames into the engine's shared
  cancellation flag (a reader thread consumes them, so cancellation
  works mid-verification without breaking one-reply-per-request);
- injected worker faults ride along in the hello: a ``kill_before`` rule
  ``os._exit``\\ s the node process itself, which is precisely the
  node-kill chaos drill — :func:`run_worker_node` optionally wraps the
  serving process in a respawn loop (``--restarts``) so a killed node
  rebinds its port (``SO_REUSEADDR``) and the client's reconnect backoff
  finds it again.

Multiple connections are served concurrently (each in its own thread):
during a client's reconnect storm the half-dead old connection must
never block the new one from handshaking.
"""

from __future__ import annotations

import json
import logging
import multiprocessing as mp
import queue
import signal
import socket
import threading
from typing import Any, Dict, List, Optional

from repro.core import transport
from repro.core.workers import _worker_main, default_start_method
from repro.exceptions import TransportError

__all__ = [
    "WorkerNodeServer",
    "load_shard_map",
    "node_child_main",
    "run_worker_node",
]

logger = logging.getLogger(__name__)

#: how long an accepted connection may take to produce its hello frame
#: before the node drops it (port scanners, half-connected clients).
_HELLO_TIMEOUT = 30.0

_EOF = object()


class _Flag:
    """Duck-types the ``multiprocessing.Value`` cancellation flag the
    worker loop's tokens poll: a plain attribute is enough in-process
    (single writer — the reader thread; GIL-atomic reads)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class _NodeConn:
    """Adapts one framed socket to the ``Connection`` surface
    :func:`~repro.core.workers._worker_main` consumes.

    A reader thread drains the socket continuously: ``("cancel",
    req_id)`` frames fold into the shared flag (so a cancel lands while
    the serve loop is deep in verification), everything else queues for
    :meth:`recv`.  Transport failures surface as :class:`EOFError` /
    :class:`BrokenPipeError` — the exceptions the worker loop already
    treats as "client gone"."""

    def __init__(self, framed: transport.FramedSocket, flag: _Flag) -> None:
        self._framed = framed
        self._flag = flag
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-node-reader", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                msg = self._framed.recv()
            except Exception:  # noqa: BLE001 — any transport failure = EOF
                self._queue.put(_EOF)
                return
            if isinstance(msg, tuple) and msg and msg[0] == "cancel":
                self._flag.value = max(self._flag.value, int(msg[1]))
                continue
            self._queue.put(msg)

    def recv(self) -> Any:
        msg = self._queue.get()
        if msg is _EOF:
            raise EOFError("client disconnected")
        return msg

    def send(self, message: Any) -> None:
        try:
            self._framed.send(message)
        except TransportError as exc:
            raise BrokenPipeError(str(exc)) from exc

    def close(self) -> None:
        self._framed.close()


class WorkerNodeServer:
    """One listening worker node (see the module docstring).

    ``port=0`` binds an ephemeral port; the resolved address is available
    as :attr:`host` / :attr:`port` before :meth:`serve_forever` is called
    — tests run nodes on background threads against ephemeral ports.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_frame: int = transport.DEFAULT_MAX_FRAME,
    ) -> None:
        self._sock = transport.listen(host, port)
        self.host, self.port = self._sock.getsockname()[:2]
        self._max_frame = max_frame
        self._closed = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`close`.  Each
        connection gets its own thread — a lingering half-dead connection
        must never block a reconnecting client's handshake."""
        logger.info("worker node listening on %s", self.address)
        while not self._closed:
            try:
                raw, addr = self._sock.accept()
            except OSError:
                break  # closed
            threading.Thread(
                target=self._serve_connection,
                args=(raw,),
                name=f"repro-node-conn-{addr[1] if len(addr) > 1 else 0}",
                daemon=True,
            ).start()

    def _serve_connection(self, raw) -> None:
        framed = transport.FramedSocket(raw, max_frame=self._max_frame)
        try:
            hello = framed.recv(deadline=_HELLO_TIMEOUT)
            if not (
                isinstance(hello, tuple)
                and len(hello) >= 3
                and hello[0] == "hello"
                and isinstance(hello[2], dict)
            ):
                raise TransportError(f"expected a hello frame, got {hello!r}")
            spec: Dict[str, Any] = hello[2]
        except Exception:  # noqa: BLE001 — a bad client must not kill the node
            logger.warning("dropping connection with bad hello", exc_info=True)
            framed.close()
            return
        flag = _Flag()
        conn = _NodeConn(framed, flag)
        try:
            # The pipe worker loop IS the serve loop: same engine build,
            # same handshake, same protocol, same fault hooks.
            _worker_main(
                conn,
                flag,
                int(spec.get("shard", 0)),
                spec.get("dataset"),
                spec.get("costs"),
                dict(spec.get("engine_kwargs") or {}),
                spec.get("faults"),
                dict(spec.get("request_offsets") or {}),
            )
        finally:
            conn.close()

    def close(self) -> None:
        self._closed = True
        # close() alone does not wake a thread blocked in accept() on
        # Linux; shutdown() does (and may return ENOTCONN — fine).
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def node_child_main(host: str, port: int) -> None:
    """Serving entry point — top-level so ``spawn`` contexts can pickle
    it for the :func:`run_worker_node` respawn wrapper."""
    try:
        # A forked child inherits the wrapper's terminate-the-child
        # handler; restore the default so SIGTERM just kills this node.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)
    except ValueError:
        pass  # not the main thread
    WorkerNodeServer(host, port).serve_forever()


def run_worker_node(
    host: str,
    port: int,
    *,
    restarts: int = 0,
    start_method: Optional[str] = None,
) -> int:
    """Run a worker node, optionally under a respawn wrapper.

    With ``restarts=0`` the node serves in the calling process (the
    plain deployment; an external supervisor — systemd, k8s — owns the
    restart policy).  With ``restarts=N`` the serving process runs as a
    child that is respawned up to N times when it dies — the node-side
    half of node-kill chaos drills: an injected ``kill_before`` takes
    the child down, ``SO_REUSEADDR`` lets the replacement rebind
    immediately, and the client's reconnect backoff absorbs the gap.
    Returns the final exit code.
    """
    if restarts <= 0:
        node_child_main(host, port)
        return 0
    ctx = mp.get_context(start_method or default_start_method())
    current: Dict[str, Any] = {}

    def _forward_term(signum, frame):  # noqa: ARG001 — signal signature
        proc = current.get("proc")
        if proc is not None and proc.is_alive():
            proc.terminate()
        raise SystemExit(128 + signum)

    try:
        # Terminating the wrapper must take the serving child with it —
        # an orphaned node would squat the port past the drill.
        signal.signal(signal.SIGTERM, _forward_term)
        signal.signal(signal.SIGINT, _forward_term)
    except ValueError:
        pass  # not the main thread (tests drive this in-process)
    used = 0
    while True:
        proc = ctx.Process(
            target=node_child_main, args=(host, port), name="repro-worker-node"
        )
        current["proc"] = proc
        proc.start()
        proc.join()
        code = proc.exitcode or 0
        if used >= restarts:
            return code
        used += 1
        logger.warning(
            "worker node on %s:%d died (exitcode %s); restart %d/%d",
            host, port, code, used, restarts,
        )


def load_shard_map(spec: str) -> List[str]:
    """Parse a ``--shard-map`` value: a path to a JSON file, or inline
    JSON (detected by a leading ``[`` or ``{``).  Accepted shapes::

        ["127.0.0.1:7701", "127.0.0.1:7702"]
        {"nodes": ["127.0.0.1:7701", "127.0.0.1:7702"]}

    One address per shard, in shard order.  Every address is validated
    as ``HOST:PORT`` here so a typo fails at config load, not mid-
    connect."""
    text = spec.strip()
    if not (text.startswith("[") or text.startswith("{")):
        with open(spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    payload = json.loads(text)
    if isinstance(payload, dict):
        payload = payload.get("nodes")
    if (
        not isinstance(payload, list)
        or not payload
        or not all(isinstance(item, str) for item in payload)
    ):
        raise ValueError(
            "shard map must be a non-empty list of 'host:port' strings "
            "(or {\"nodes\": [...]})"
        )
    for address in payload:
        transport.parse_hostport(address)
    return [str(item) for item in payload]
