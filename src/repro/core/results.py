"""Result types for subtrajectory similarity search (Definition 3).

A match identifies a subtrajectory ``P^(id)[start..end]`` (0-based,
inclusive) whose WED to the query is strictly below the threshold.  The
same ``(id, start, end)`` triple can be discovered through several
candidate anchors; :class:`MatchSet` deduplicates and keeps the smallest
distance found, which — by Lemma 1 — converges to the exact WED once all
candidates are verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["Match", "MatchSet"]


@dataclass(frozen=True, slots=True, order=True)
class Match:
    """One query answer ``(id, s, t)`` with its WED to the query."""

    trajectory_id: int
    start: int
    end: int
    distance: float

    @property
    def length(self) -> int:
        """Number of symbols in the matched subtrajectory."""
        return self.end - self.start + 1


class MatchSet:
    """Deduplicating accumulator over ``(id, start, end)`` triples."""

    def __init__(self) -> None:
        self._best: Dict[Tuple[int, int, int], float] = {}

    def add(self, trajectory_id: int, start: int, end: int, distance: float) -> None:
        """Record a match, keeping the smallest distance per triple."""
        key = (trajectory_id, start, end)
        cur = self._best.get(key)
        if cur is None or distance < cur:
            self._best[key] = distance

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, key: Tuple[int, int, int]) -> bool:
        return key in self._best

    def __iter__(self) -> Iterator[Match]:
        return iter(self.to_list())

    def to_list(self) -> List[Match]:
        """Matches sorted by (id, start, end) for deterministic output."""
        return [
            Match(tid, s, t, d)
            for (tid, s, t), d in sorted(self._best.items())
        ]

    def keys(self) -> List[Tuple[int, int, int]]:
        """Sorted (id, start, end) triples."""
        return sorted(self._best)
