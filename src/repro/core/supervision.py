"""Supervision primitives for the shard-worker tier: breaker + backoff.

:mod:`repro.core.workers` keeps each shard's engine in a child process;
this module holds the policy objects its supervisor runs on.  They are
deliberately transport-agnostic — the socket-backed multi-node tier
(``backend="remote"``; ROADMAP §1) supervises remote shard nodes with
exactly the same state machines, where a "respawn" is a reconnect:

- :class:`CircuitBreaker` — the classic three-state breaker, per shard.
  *Closed* passes queries through; ``failure_threshold`` consecutive
  shard failures *open* it (queries fail fast / degrade instead of each
  eating a worker round-trip + respawn against a flapping shard); after
  ``cooldown`` seconds one *half-open* probe query is let through — its
  outcome closes or re-opens the breaker.
- :class:`RespawnBackoff` — bounded exponential backoff with seeded
  jitter between respawn attempts, so a worker that dies at birth (bad
  node, poisoned shard file) cannot hot-loop fork+engine-build, and a
  thundering herd of shards never respawns in lockstep.
- :class:`WorkerState` — one shard's supervision snapshot, the unit
  ``/healthz`` and the ``repro_worker_*`` / ``repro_shard_breaker_state``
  metric families report.

All methods are thread-safe where it matters: breakers are consulted on
the query path while the supervisor thread records respawn outcomes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from random import Random
from time import monotonic
from typing import Dict, List, Optional

__all__ = ["BREAKER_STATES", "CircuitBreaker", "RespawnBackoff", "WorkerState"]

#: breaker states in metric-gauge order: the exported
#: ``repro_shard_breaker_state`` value is the index into this tuple.
BREAKER_STATES = ("closed", "half_open", "open")


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    The breaker counts *shard-level* outcomes (a query answered vs. a
    worker that died / stayed unreachable), not client-level ones — a
    deadline miss is the client's budget, not the shard's health, and is
    never recorded here.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        clock=monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def _effective_state(self) -> str:
        # Time-based open → half-open transition, evaluated lazily so the
        # breaker needs no timer thread.
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = "half_open"
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """Whether a query may be sent to the shard right now.

        In half-open state exactly one caller wins the probe slot; the
        rest are rejected until the probe's outcome is recorded."""
        with self._lock:
            state = self._effective_state()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker will admit its half-open probe
        (0 when closed, half-open, or already due) — the figure a client
        can use as ``Retry-After``."""
        with self._lock:
            if self._effective_state() != "open":
                return 0.0
            return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._effective_state()
            if state == "half_open" or (
                state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_in_flight = False


class RespawnBackoff:
    """Bounded exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt k (0-based) is
    ``min(cap, base * 2**k) * u`` with ``u`` drawn uniformly from
    ``[0.5, 1.5)`` by a :class:`random.Random` seeded at construction —
    reproducible for the chaos suite, desynchronized across shards via
    per-shard seeds.
    """

    def __init__(self, *, base: float = 0.05, cap: float = 2.0, seed: int = 0) -> None:
        if base < 0 or cap < base:
            raise ValueError("need 0 <= base <= cap")
        self.base = base
        self.cap = cap
        self._rng = Random(seed)

    def delay(self, attempt: int) -> float:
        raw = min(self.cap, self.base * (2 ** max(0, attempt)))
        return raw * (0.5 + self._rng.random())


@dataclass
class WorkerState:
    """One shard's supervision snapshot (the ``/healthz`` unit)."""

    shard: int
    alive: bool
    pid: Optional[int]
    restarts: int
    breaker: str
    consecutive_failures: int
    #: seconds until the supervisor may try the next respawn (0 when the
    #: worker is alive or a respawn is due now).
    respawn_wait: float = 0.0
    last_error: str = ""
    #: events the supervisor recorded for this shard (bounded).
    events: List[str] = field(default_factory=list)
    #: remote node address ("host:port") when the shard is served over a
    #: socket; None for in-process and child-process shards.
    node: Optional[str] = None
    #: seconds until this shard's open breaker admits a probe (0 when it
    #: is serving) — the basis of the HTTP 503 ``Retry-After`` header.
    retry_after: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "shard": self.shard,
            "alive": self.alive,
            "pid": self.pid,
            "restarts": self.restarts,
            "breaker": self.breaker,
            "consecutive_failures": self.consecutive_failures,
            "respawn_wait": round(self.respawn_wait, 3),
            "last_error": self.last_error,
        }
        if self.node is not None:
            payload["node"] = self.node
        if self.retry_after > 0:
            payload["retry_after"] = round(self.retry_after, 3)
        return payload
