"""Temporal constraints on matches (§2.3, §4.3).

A temporal constraint restricts the timestamps of the *matched positions*:
for a match ``P[s..t]`` with timestamps ``[T_s, T_t]`` and a query interval
``I``, the paper considers containment (``[T_s, T_t] ⊆ I``) and overlap
(``[T_s, T_t] ∩ I ≠ ∅``).

Two evaluation strategies (§4.3):

- *postprocessing* (no-TF): solve the similarity search, then filter;
- *candidate filtering* (TF): before verification, drop candidates whose
  whole-trajectory interval ``[T_1, T_n]`` cannot satisfy the constraint —
  sound because the matched interval is contained in the trajectory
  interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.results import Match
from repro.core.verification import Candidate
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["TemporalMode", "TimeInterval", "filter_candidates", "match_satisfies"]

TemporalMode = Literal["overlap", "within"]


@dataclass(frozen=True, slots=True)
class TimeInterval:
    """A closed interval ``[start, end]`` on the timestamp axis."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"empty interval [{self.start}, {self.end}]")

    def overlaps(self, other: "TimeInterval") -> bool:
        """Closed-interval intersection test."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, other: "TimeInterval") -> bool:
        """True iff ``other`` lies entirely inside this interval."""
        return self.start <= other.start and other.end <= self.end


def match_satisfies(
    dataset: TrajectoryDataset,
    match: Match,
    interval: TimeInterval,
    mode: TemporalMode = "overlap",
) -> bool:
    """Whether the matched subtrajectory's time span satisfies the
    constraint.  For edge representation, symbol position ``k`` spans
    vertices ``k .. k+1``, so the time span widens by one vertex."""
    traj = dataset[match.trajectory_id]
    s, t = match.start, match.end
    if dataset.representation == "edge":
        t = t + 1
    span = TimeInterval(traj.timestamps[s], traj.timestamps[t])  # type: ignore[index]
    if mode == "overlap":
        return interval.overlaps(span)
    return interval.contains(span)


def filter_candidates(
    dataset: TrajectoryDataset,
    candidates: Sequence[Candidate],
    interval: TimeInterval,
) -> list[Candidate]:
    """TF pruning: keep candidates whose whole-trajectory interval overlaps
    the query interval.

    Sound for both modes: the matched interval ``[T_s, T_t]`` lies inside
    ``[T_1, T_n]``, so if the trajectory interval misses ``I`` entirely,
    no matched interval can overlap (let alone be contained in) ``I``.
    """
    out = []
    seen: dict[int, bool] = {}
    for cand in candidates:
        tid = cand[0]
        keep = seen.get(tid)
        if keep is None:
            t0, t1 = dataset[tid].time_interval()
            keep = interval.overlaps(TimeInterval(t0, t1))
            seen[tid] = keep
        if keep:
            out.append(cand)
    return out
