"""Top-k subtrajectory similarity search.

The paper's effectiveness study (§6.2.1, Table 3) uses a top-k setting
when thresholded search returns too few results.  This module implements
top-k on top of the exact threshold engine by *iterative threshold
doubling*: query with a small ``tau``, and widen until ``k`` distinct
trajectories respond.  Every intermediate result is exact, so the final
top-k is exact as well.

The loop runs *above* the engine — each probe is one ordinary range
query, so on a :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch`
every round fans out to all shards through the unchanged range-query
descriptors (worker pipes, remote-node RPC, supervision, retry-once and
journal replay all apply as-is).  Per-trajectory bests accumulate
*across* rounds, and the current k-th-best distance feeds back as the
stopping bound on tau: a range probe at ``tau`` surfaces every match
with distance ``< tau``, so once ``k`` distinct trajectories are in
hand their k-th-best distance ``d_k < tau`` upper-bounds any unseen
trajectory's best distance (``>= tau > d_k``) — no wider probe can
change the answer, and expansion stops there instead of growing toward
the degenerate-query ceiling.  The cross-round accumulation is also
what keeps degraded rounds sound: a shard that answered round ``i`` and
died in round ``i+1`` keeps its round-``i`` contributions, and the
result is flagged ``complete=False`` rather than silently short.

When the expansion does hit the ceiling (``tau`` may not reach the
query's total insertion cost), a Smith–Waterman sweep over the unseen
remainder completes the answer; the sweep checks the cancellation token
between trajectories so an expired deadline stops within one
trajectory's O(|P||Q|) scan.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.apps._common import best_match_per_trajectory
from repro.core.cancellation import raise_if_cancelled
from repro.core.results import Match
from repro.distance.smith_waterman import best_match
from repro.exceptions import QueryError

__all__ = ["TopKResult", "topk_search"]

def _rank_key(m: Match) -> tuple:
    """Ranking order of the final list: distance first, then the
    deterministic (id, start, end) tie-break so equal-distance answers
    are stable across backends and runs."""
    return (m.distance, m.trajectory_id, m.start, m.end)


@dataclass(slots=True)
class TopKResult:
    """The ``k`` best per-trajectory matches plus search provenance.

    Behaves as a sequence of :class:`~repro.core.results.Match` (ranked
    best-first), so code written against the old ``List[Match]`` return
    of :func:`topk_search` keeps working unchanged.
    """

    #: ranked matches, best first; at most ``k`` (fewer when the dataset
    #: holds fewer trajectories).
    matches: List[Match]
    #: the k this answer was computed for.
    k: int
    #: trajectories tied at the k-th distance that ``matches[:k]`` cut —
    #: callers that care about tie completeness can detect the truncation
    #: instead of mistaking the cut for a strict ranking.
    ties_at_k: int = 0
    #: threshold probe rounds run (tau expansions = ``tau_rounds - 1``).
    tau_rounds: int = 0
    #: the last threshold probed.
    tau_final: float = 0.0
    #: trajectories scanned by the Smith–Waterman exhaustion sweep (0
    #: when threshold expansion alone answered).
    swept: int = 0
    #: candidates verified across all probe rounds.
    num_candidates: int = 0
    #: engine stage seconds summed across all probe rounds.
    mincand_seconds: float = 0.0
    lookup_seconds: float = 0.0
    verify_seconds: float = 0.0
    #: False when any probe round was served partially (``allow_partial``
    #: with shards down): trajectories on the shards listed in
    #: :attr:`degraded_shards` may be missing or mis-ranked.  Never
    #: silently short — the flag travels with the answer.
    complete: bool = True
    degraded_shards: Tuple[int, ...] = ()

    @property
    def total_seconds(self) -> float:
        """Engine time summed over every probe round."""
        return self.mincand_seconds + self.lookup_seconds + self.verify_seconds

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self.matches)

    def __getitem__(self, index):
        return self.matches[index]

    def covers(self, k: int) -> bool:
        """Whether this answer can serve a request for ``k`` results: it
        was computed at ``k' >= k``, or it already ranks the entire
        dataset (``matches`` ran out before ``k'`` — no deeper answer
        exists)."""
        return k <= self.k or len(self.matches) < self.k

    def at_k(self, k: int) -> "TopKResult":
        """This answer re-cut for a smaller (or covered) ``k``.

        The serving layer's reuse rule: a cached top-k' at ``k' >= k``
        answers ``k`` by truncation, with :attr:`ties_at_k` recomputed
        for the new cut.  Raises :class:`~repro.exceptions.QueryError`
        when this answer does not cover ``k`` (see :meth:`covers`).
        """
        if k <= 0:
            raise QueryError("k must be positive")
        if not self.covers(k):
            raise QueryError(
                f"top-{self.k} answer cannot serve k={k} (only a full "
                "ranking answers beyond its own k)"
            )
        if k == self.k:
            return self
        if len(self.matches) <= k:
            # The ranking ran out of trajectories before the new cut:
            # nothing is truncated (ties_at_k was already 0).
            return replace(self, k=k)
        matches = self.matches[:k]
        kth = matches[-1].distance
        ties = sum(1 for m in self.matches[k:] if m.distance == kth)
        if self.matches and self.matches[-1].distance == kth:
            # The stored cut at self.k fell on the same distance: the
            # entries it dropped are ties at the new cut too.
            ties += self.ties_at_k
        return replace(self, matches=matches, k=k, ties_at_k=ties)


def _engine_surfaces(engine):
    """The public ``costs`` / ``dataset`` accessors top-k builds on.

    Raises a typed :class:`~repro.exceptions.QueryError` (not a bare
    ``AttributeError``) when the engine does not expose them — the
    actionable message names what a supported engine provides.
    """
    costs = getattr(engine, "costs", None)
    dataset = getattr(engine, "dataset", None)
    if costs is None or dataset is None:
        raise QueryError(
            f"{type(engine).__name__} does not support top-k search: the "
            "engine must expose public 'costs' and 'dataset' accessors "
            "(SubtrajectorySearch and PartitionedSubtrajectorySearch do)"
        )
    return costs, dataset


def topk_search(
    engine,
    query: Sequence[int],
    k: int,
    *,
    initial_tau_ratio: float = 0.05,
    growth: float = 2.0,
    cancel=None,
    allow_partial: bool = False,
    trace=None,
) -> TopKResult:
    """The ``k`` most similar subtrajectories, one per trajectory.

    ``engine`` is a :class:`~repro.core.engine.SubtrajectorySearch` or a
    :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch` (any
    backend — each threshold probe is one ordinary fan-out range query).
    Returns a :class:`TopKResult` of up to ``k`` matches ordered by
    ``(distance, trajectory_id, start, end)``; fewer when the dataset
    holds fewer trajectories.  Ties at the k-th distance are cut
    deterministically and counted in :attr:`TopKResult.ties_at_k`.

    ``cancel`` (a :class:`~repro.core.cancellation.CancelToken`) is
    threaded into every probe round *and* the exhaustion sweep, which
    checks it between trajectories.  ``allow_partial`` opts probe rounds
    into graceful degradation on engines that support it (shards down
    mark the answer ``complete=False``).  ``trace`` (a
    :class:`repro.obs.tracing.Span`, or None) collects one child span
    per probe round plus a sweep span.
    """
    if k <= 0:
        raise QueryError("k must be positive")
    if growth <= 1.0:
        raise QueryError("growth must exceed 1")
    if initial_tau_ratio <= 0:
        raise QueryError("initial_tau_ratio must be positive")
    costs, dataset = _engine_surfaces(engine)
    total_ins = sum(costs.ins(q) for q in query)
    if total_ins <= 0:
        raise QueryError("query has zero total insertion cost")
    c_total = sum(costs.filter_cost(q) for q in query)
    tau = max(min(initial_tau_ratio * c_total, total_ins * 0.5), 1e-9)

    probe_kwargs: Dict[str, object] = {}
    if allow_partial and hasattr(engine, "merge_shard_results"):
        # Only partitioned engines degrade; the single-node engine's
        # query() does not take the flag.
        probe_kwargs["allow_partial"] = True

    best: Dict[int, Match] = {}
    degraded: set = set()
    rounds = 0
    swept = 0
    candidates = 0
    mincand = lookup = verify = 0.0
    while True:
        raise_if_cancelled(cancel, "topk probe")
        span = (
            None
            if trace is None
            else trace.child("topk_round", round=rounds, tau=float(tau))
        )
        try:
            result = engine.query(
                query, tau=tau, cancel=cancel, trace=span, **probe_kwargs
            )
        except BaseException as exc:
            if span is not None:
                span.set("error", type(exc).__name__)
            raise
        finally:
            if span is not None:
                span.finish()
        rounds += 1
        degraded.update(result.degraded_shards)
        candidates += result.num_candidates
        mincand += result.mincand_seconds
        lookup += result.lookup_seconds
        verify += result.verify_seconds
        # Accumulate across rounds (same §6.2.1 tie-break as one round):
        # a shard that answered an earlier round keeps its contribution
        # even if it degrades later.
        best = best_match_per_trajectory(list(best.values()) + result.matches)
        if len(best) >= k:
            # k-th-best feedback: every match with distance < tau is in
            # hand, so the k-th best distance d_k < tau and every unseen
            # trajectory sits at >= tau > d_k — tau has reached the
            # tightening bound and no wider probe can change the answer.
            break
        next_tau = tau * growth
        if next_tau >= total_ins:
            # Threshold expansion exhausted (tau must stay below the
            # query's total insertion cost): sweep the trajectories that
            # still have no match with the O(|P||Q|) best-substring scan.
            sweep_span = (
                None if trace is None else trace.child("topk_sweep")
            )
            # Under degradation the sweep must not quietly resurrect a
            # dead shard's trajectories from the coordinator's mirror:
            # a partial answer is *exactly* the live-shard answer, so
            # skip trajectories placed on shards that failed to probe.
            num_shards = getattr(engine, "num_shards", 0)
            try:
                for tid in range(len(dataset)):
                    if tid in best:
                        continue
                    if degraded and num_shards and tid % num_shards in degraded:
                        continue
                    # The whole point of threading the token here: the
                    # sweep is O(|T|·|P||Q|) and must stop within one
                    # trajectory of a cancel/deadline, not run to the end.
                    raise_if_cancelled(cancel, "topk sweep")
                    s, t, d = best_match(dataset.symbols(tid), query, costs)
                    if t >= s:
                        best[tid] = Match(tid, s, t, d)
                    swept += 1
            except BaseException as exc:
                if sweep_span is not None:
                    sweep_span.set("error", type(exc).__name__)
                raise
            finally:
                if sweep_span is not None:
                    sweep_span.set("swept", swept)
                    sweep_span.finish()
            break
        tau = next_tau

    ranked = sorted(best.values(), key=_rank_key)
    top = ranked[:k]
    ties = 0
    if len(ranked) > k and top:
        kth = top[-1].distance
        ties = sum(1 for m in ranked[k:] if m.distance == kth)
    result = TopKResult(
        matches=top,
        k=k,
        ties_at_k=ties,
        tau_rounds=rounds,
        tau_final=tau,
        swept=swept,
        num_candidates=candidates,
        mincand_seconds=mincand,
        lookup_seconds=lookup,
        verify_seconds=verify,
        complete=not degraded,
        degraded_shards=tuple(sorted(degraded)),
    )
    if trace is not None:
        trace.set("k", int(k))
        trace.set("tau_rounds", rounds)
        trace.set("ties_at_k", ties)
        trace.set("swept", swept)
        if degraded:
            trace.set("degraded_shards", sorted(degraded))
    return result
