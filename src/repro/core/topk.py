"""Top-k subtrajectory similarity search.

The paper's effectiveness study (§6.2.1, Table 3) uses a top-k setting
when thresholded search returns too few results.  This module implements
top-k on top of the exact threshold engine by *iterative threshold
doubling*: query with a small ``tau``, and widen until ``k`` distinct
trajectories respond.  Every intermediate result is exact, so the final
top-k is exact as well; the degenerate-query bound (``tau`` must stay
below the query's total insertion cost) caps the expansion, after which a
Smith–Waterman sweep over the unseen remainder completes the answer.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.apps._common import best_match_per_trajectory
from repro.core.engine import SubtrajectorySearch
from repro.core.results import Match
from repro.distance.smith_waterman import best_match
from repro.exceptions import QueryError

__all__ = ["topk_search"]


def topk_search(
    engine: SubtrajectorySearch,
    query: Sequence[int],
    k: int,
    *,
    initial_tau_ratio: float = 0.05,
    growth: float = 2.0,
) -> List[Match]:
    """The ``k`` most similar subtrajectories, one per trajectory.

    Returns up to ``k`` matches ordered by ``(distance, trajectory_id)``;
    fewer when the dataset holds fewer than ``k`` trajectories.  Ties at
    the k-th distance are broken deterministically by trajectory id.
    """
    if k <= 0:
        raise QueryError("k must be positive")
    if growth <= 1.0:
        raise QueryError("growth must exceed 1")
    costs = engine._costs  # noqa: SLF001 - engine-internal cooperation
    dataset = engine._dataset  # noqa: SLF001
    total_ins = sum(costs.ins(q) for q in query)
    if total_ins <= 0:
        raise QueryError("query has zero total insertion cost")
    c_total = sum(costs.filter_cost(q) for q in query)
    tau = max(min(initial_tau_ratio * c_total, total_ins * 0.5), 1e-9)

    best: dict = {}
    while True:
        result = engine.query(query, tau=tau)
        best = best_match_per_trajectory(result.matches)
        if len(best) >= k:
            break
        next_tau = tau * growth
        if next_tau >= total_ins:
            # Threshold expansion exhausted: sweep the trajectories that
            # still have no match with the O(|P||Q|) best-substring scan.
            for tid in range(len(dataset)):
                if tid in best:
                    continue
                s, t, d = best_match(dataset.symbols(tid), query, costs)
                if t >= s:
                    best[tid] = Match(tid, s, t, d)
            break
        tau = next_tau

    ranked = sorted(
        best.values(), key=lambda m: (m.distance, m.trajectory_id, m.start, m.end)
    )
    return ranked[:k]
