"""Length-prefixed socket transport for the multi-node serving tier.

:mod:`repro.core.workers` speaks a transport-agnostic protocol: small
pickled request tuples, exactly one reply per request.  Over a
:func:`multiprocessing.Pipe` the OS frames messages for free; over a TCP
socket nothing does — so this module supplies the framing seam the
remote backend (ROADMAP §1) runs on:

- every message is one **frame**: a 4-byte big-endian unsigned length
  prefix followed by exactly that many payload bytes (the pickle);
- frames are bounded by an explicit ``max_frame`` (default 64 MiB): an
  oversized outgoing pickle fails *before* any byte hits the wire, and an
  oversized incoming length prefix fails *before* any payload is
  consumed — in both cases the stream stays byte-aligned
  (:class:`~repro.exceptions.FrameTooLargeError`), it is merely useless
  and must be re-established;
- partial reads are first-class: :class:`FrameDecoder` buffers arbitrary
  byte splits (a slow link delivering one byte at a time reassembles the
  identical frame sequence) and EOF inside a frame raises
  :class:`~repro.exceptions.FrameTruncatedError` instead of silently
  yielding garbage;
- :class:`FramedSocket` wraps a connected TCP socket with the same
  ``send`` / ``recv`` / ``poll`` / ``close`` surface as a
  ``multiprocessing.Connection``, so the worker-pool request loop runs
  unchanged over either transport.  Per-call deadlines derive from the
  remaining query budget the pool already ships with each request
  (``recv(deadline=...)``), so a half-open connection costs at most the
  caller's own budget, never an unbounded hang;
- deterministic network chaos hooks: the client-side proxy applies a
  :class:`~repro.faultinject.NetworkFaults` table around its sends
  (``slow_link_ms`` sleeps, ``short_write`` forces one-byte-sized
  ``sendall`` slices so the peer's reassembly is exercised for real,
  ``conn_drop`` tears the socket down after the request leaves,
  ``conn_hang`` turns the link half-open: bytes go nowhere and no reply
  ever arrives, which only a deadline can unmask).

Wire format (all integers big-endian)::

    +----------------+----------------------+
    | length: uint32 | payload bytes        |
    +----------------+----------------------+

The payload is a pickle (protocol :data:`pickle.HIGHEST_PROTOCOL`);
both ends of this transport are trusted repro processes — the shard map
is operator configuration, exactly like the worker pipe endpoints.
"""

from __future__ import annotations

import pickle
import socket
import struct
from time import monotonic, sleep
from typing import Any, Iterator, List, Optional, Tuple

from repro.exceptions import (
    FrameTooLargeError,
    FrameTruncatedError,
    TransportError,
)

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "FramedSocket",
    "connect",
    "encode_frame",
    "listen",
]

#: 4-byte unsigned big-endian length prefix.
_HEADER = struct.Struct("!I")
HEADER_BYTES = _HEADER.size

#: default per-frame byte bound — far above any query descriptor or
#: stripped QueryResult, far below a runaway pickle.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

#: recv buffer size; also the granularity at which a read deadline is
#: rechecked on a slow link.
_RECV_CHUNK = 1 << 16


def encode_frame(payload: bytes, *, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame for ``payload``: length prefix + payload bytes.

    Raises :class:`FrameTooLargeError` before producing anything when the
    payload exceeds ``max_frame`` — an oversized message must never be
    half-sent.
    """
    size = len(payload)
    if size > max_frame:
        raise FrameTooLargeError(
            f"outgoing frame of {size} bytes exceeds max_frame={max_frame}"
        )
    return _HEADER.pack(size) + payload


class FrameDecoder:
    """Incremental frame reassembly over arbitrary byte splits.

    Feed chunks in whatever sizes the socket delivers; completed payloads
    come back in order from :meth:`frames`.  The decoder validates each
    length prefix the moment its 4 bytes are complete — an oversized
    frame raises :class:`FrameTooLargeError` with zero payload bytes
    consumed, so the failure is attributable and the buffer inspectable.
    :meth:`eof` distinguishes a clean close (between frames) from a
    truncated one (mid-frame → :class:`FrameTruncatedError`).
    """

    def __init__(self, *, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        if max_frame < 0:
            raise ValueError("max_frame must be >= 0")
        self.max_frame = max_frame
        self._chunks: List[bytes] = []
        self._buffered = 0
        #: payload length of the frame being assembled, or None while the
        #: length prefix itself is still incomplete.
        self._need: Optional[int] = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 = clean boundary)."""
        return self._buffered

    def feed(self, data: bytes) -> None:
        """Buffer one received chunk (may be empty; empty is a no-op)."""
        if data:
            self._chunks.append(data)
            self._buffered += len(data)

    def _take(self, n: int) -> bytes:
        """Remove exactly ``n`` buffered bytes (caller checked they exist)."""
        out = bytearray()
        while len(out) < n:
            chunk = self._chunks[0]
            want = n - len(out)
            if len(chunk) <= want:
                out += chunk
                self._chunks.pop(0)
            else:
                out += chunk[:want]
                self._chunks[0] = chunk[want:]
        self._buffered -= n
        return bytes(out)

    def frames(self) -> Iterator[bytes]:
        """Yield every payload completed by the bytes fed so far."""
        while True:
            if self._need is None:
                if self._buffered < HEADER_BYTES:
                    return
                (size,) = _HEADER.unpack(self._take(HEADER_BYTES))
                if size > self.max_frame:
                    raise FrameTooLargeError(
                        f"incoming frame declares {size} bytes, "
                        f"exceeding max_frame={self.max_frame}"
                    )
                self._need = size
            if self._buffered < self._need:
                return
            need, self._need = self._need, None
            yield self._take(need)

    def eof(self) -> None:
        """Declare end-of-stream; raises :class:`FrameTruncatedError` if
        it lands inside a frame (buffered bytes or a pending length)."""
        if self._need is not None or self._buffered:
            expected = (
                f"{self._need} payload bytes"
                if self._need is not None
                else "a length prefix"
            )
            raise FrameTruncatedError(
                f"stream ended mid-frame: expected {expected}, "
                f"have {self._buffered} buffered byte(s)"
            )


class FramedSocket:
    """A connected TCP socket speaking length-prefixed pickled frames.

    Duck-types the ``multiprocessing.Connection`` surface the worker
    pool's request loop uses — ``send(obj)`` / ``recv()`` /
    ``poll(timeout)`` / ``close()`` — so pipe and socket shards share one
    code path.  Additions the pipe never needed:

    - ``recv(deadline=...)`` bounds a read by an absolute remaining
      budget (seconds); expiry raises :class:`TransportError` — the hook
      that makes a half-open connection (``conn_hang``) detectable;
    - ``send(obj, chunk=n)`` slices the frame into ``n``-byte ``sendall``
      calls (the ``short_write`` fault: the peer must reassemble);
    - ``hang()`` / ``drop()`` — deterministic chaos: a hung socket
      swallows sends and never becomes readable, a dropped one is torn
      down mid-conversation.

    Not thread-safe for concurrent ``recv``; one out-of-band ``send``
    (the cancel frame) racing a blocked ``recv`` is fine — TCP sockets
    are full-duplex.
    """

    def __init__(
        self, sock: socket.socket, *, max_frame: int = DEFAULT_MAX_FRAME
    ) -> None:
        self._sock: Optional[socket.socket] = sock
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._ready: List[bytes] = []
        self._eof = False
        self._hung = False
        self.max_frame = max_frame
        try:
            # Request/reply over small frames: never wait on Nagle.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP socket (e.g. a unix socketpair in tests)

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._sock is None

    def fileno(self) -> int:
        if self._sock is None:
            raise TransportError("socket is closed")
        return self._sock.fileno()

    def peer(self) -> str:
        """``host:port`` of the remote end (diagnostics), best-effort."""
        try:
            host, port = self._sock.getpeername()[:2]  # type: ignore[union-attr]
            return f"{host}:{port}"
        except (OSError, AttributeError, TypeError):
            return "<disconnected>"

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def drop(self) -> None:
        """Abruptly tear the connection down (the ``conn_drop`` fault):
        the peer sees an immediate EOF/reset, not an orderly shutdown."""
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.close()

    def hang(self) -> None:
        """Turn the link half-open (the ``conn_hang`` fault): subsequent
        sends are swallowed and no frame ever becomes readable, exactly
        like a peer that silently stopped ACKing.  Only a deadline (or
        ``close``) gets a caller out."""
        self._hung = True

    @property
    def hung(self) -> bool:
        return self._hung

    # -- send ---------------------------------------------------------------

    def send(self, obj: Any, *, chunk: Optional[int] = None) -> None:
        """Pickle ``obj`` and send it as one frame.

        ``chunk`` forces the frame onto the wire in slices of that many
        bytes (fault injection's ``short_write``); the frame content is
        unchanged — only the peer's reassembly is exercised.
        """
        if self._hung:
            return  # half-open: bytes vanish, no error — that's the point
        if self._sock is None:
            raise TransportError("socket is closed")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = encode_frame(payload, max_frame=self.max_frame)
        try:
            if chunk is None or chunk >= len(frame):
                self._sock.sendall(frame)
            else:
                step = max(1, int(chunk))
                for start in range(0, len(frame), step):
                    self._sock.sendall(frame[start : start + step])
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    # -- receive ------------------------------------------------------------

    def _pump(self, timeout: Optional[float]) -> bool:
        """Read once from the socket (bounded by ``timeout``) into the
        decoder.  Returns True if at least one complete frame is ready.
        Raises on EOF mid-frame, oversized frames, and OS errors."""
        if self._ready:
            return True
        if self._eof or self._hung:
            return False
        if self._sock is None:
            raise TransportError("socket is closed")
        try:
            self._sock.settimeout(timeout)
            data = self._sock.recv(_RECV_CHUNK)
        except socket.timeout:
            return False
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not data:
            self._eof = True
            self._decoder.eof()  # mid-frame EOF raises FrameTruncatedError
            raise TransportError("connection closed by peer")
        self._decoder.feed(data)
        self._ready.extend(self._decoder.frames())
        return bool(self._ready)

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a complete frame is available within ``timeout``."""
        if self._ready:
            return True
        if self._hung:
            # A half-open link never becomes readable; honor the wait so
            # deadline-driven callers don't busy-spin.
            if timeout > 0:
                sleep(timeout)
            return False
        return self._pump(max(0.0, timeout))

    def recv(self, *, deadline: Optional[float] = None) -> Any:
        """The next frame's unpickled object.

        ``deadline`` is a *relative* budget in seconds (None = wait
        forever); expiry raises :class:`TransportError` so a vanished or
        hung peer costs at most the caller's own remaining budget.
        """
        expires = None if deadline is None else monotonic() + max(0.0, deadline)
        while not self._ready:
            if expires is None:
                step: Optional[float] = None
            else:
                step = expires - monotonic()
                if step <= 0:
                    raise TransportError(
                        f"no reply within the {deadline:.3f}s call deadline"
                    )
            # Hung links never become readable: poll in slices so the
            # deadline is honored even though recv() would block forever.
            if self._hung:
                if expires is None:
                    raise TransportError("connection is hung with no deadline")
                sleep(min(0.01, max(0.0, step if step is not None else 0.01)))
                continue
            self._pump(step)
        return pickle.loads(self._ready.pop(0))


def listen(host: str, port: int, *, backlog: int = 8) -> socket.socket:
    """A bound, listening TCP socket (``SO_REUSEADDR`` so a restarted
    node can rebind its address immediately)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except OSError:
        sock.close()
        raise
    return sock


def connect(
    host: str,
    port: int,
    *,
    timeout: Optional[float] = 5.0,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> FramedSocket:
    """Connect to a worker node and wrap the socket for framing.

    Raises :class:`TransportError` (never a bare ``OSError``) so callers
    treat an unreachable node exactly like a dead worker."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
    except OSError as exc:
        raise TransportError(f"cannot connect to {host}:{port}: {exc}") from exc
    return FramedSocket(sock, max_frame=max_frame)


def parse_hostport(spec: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (the shard-map / ``--listen`` address form)."""
    host, sep, port_text = str(spec).rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {spec!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad port in {spec!r}: {port_text!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host, port
