"""DP-column tries for verification caching (§5.2).

Each trie caches the dynamic-programming columns produced while verifying
candidates in one direction (forward or backward) for one anchor position
``iq`` of the query.  A path from the root spells a sequence of data
symbols; the node at its end stores the DP column ``A(x)`` for that data
prefix against the fixed query part ``Q^d``.  Because trajectories in a
road network share prefixes (out-degree is tiny), later candidates walk
cached nodes instead of recomputing columns — the cache-miss rate is the
CMR metric of §6.4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["TrieNode", "VerificationTrie"]


class TrieNode:
    """One cached DP column.

    ``column`` is ``A(x)`` of Algorithm 5 (length ``|Q^d| + 1``) — a Python
    list (pure-Python DP) or an ``np.ndarray`` (array-native DP);
    ``column_min`` caches ``min(column)``, the early-termination lower bound
    ``LB`` of Eq. 11, and ``column_last`` caches ``column[-1]`` (the E value
    read once per visit).  Callers that already know them (the vectorized
    StepDP extracts both in batched C passes) pass them in to skip the
    Python scans; both are plain floats so hot-loop comparisons and emitted
    distances never carry numpy scalars.
    """

    __slots__ = ("children", "column", "column_min", "column_last")

    def __init__(
        self,
        column: Sequence[float],
        column_min: Optional[float] = None,
        column_last: Optional[float] = None,
    ) -> None:
        self.children: Dict[int, "TrieNode"] = {}
        self.column: Sequence[float] = column
        self.column_min: float = (
            float(min(column)) if column_min is None else column_min
        )
        self.column_last: float = (
            float(column[-1]) if column_last is None else column_last
        )

    def find_child(self, symbol: int) -> Optional["TrieNode"]:
        """The cached child for ``symbol``, or None (a cache miss)."""
        return self.children.get(symbol)

    def create_child(self, symbol: int, column: Sequence[float]) -> "TrieNode":
        """Cache ``column`` as the child for ``symbol`` and return it."""
        child = TrieNode(column)
        self.children[symbol] = child
        return child


class VerificationTrie:
    """A trie rooted at the empty data prefix.

    The root column is ``wed(eps, Q^d_{1:j})`` for all ``j`` — the
    cumulative insertion costs of the query part.
    """

    def __init__(self, root_column: Sequence[float]) -> None:
        self.root = TrieNode(root_column)

    def node_count(self) -> int:
        """Number of cached columns (root included) — a cache-size metric."""
        count = 0
        stack: List[TrieNode] = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
