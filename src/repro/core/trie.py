"""DP-column tries for verification caching (§5.2), arena-backed.

Each trie caches the dynamic-programming columns produced while verifying
candidates in one direction (forward or backward) for one anchor position
``iq`` of the query.  A path from the root spells a sequence of data
symbols; the column reached at its end is the DP column ``A(x)`` for that
data prefix against the fixed query part ``Q^d``.  Because trajectories in
a road network share prefixes (out-degree is tiny), later candidates walk
cached columns instead of recomputing them — the cache-miss rate is the
CMR metric of §6.4.

Memory layout (the PR 5 slot-native rework): on the array-native backend
the trie is **fully slot-native** — no node objects at all.  Every level
of the old layout had the same column width (``|Q^d| + 1``), so all
columns live as rows of **one** growable ``(capacity, width)`` float64
matrix, with slot 0 holding the root column.  Structure lives in one
``edges`` dict mapping ``(parent_slot, symbol) -> child_slot``, and the
two scalars the hot walk reads per visit (``min(column)`` — the Eq. 11
early-termination bound — and ``column[-1]`` — the emitted E value) live
twice: in parallel ``mins`` / ``lasts`` float64 vectors so a warm
level-synchronous walker can gather a whole frontier with ``np.take``,
and in plain-float ``mins_list`` / ``lasts_list`` mirrors so scalar hot
loops never touch numpy scalars.  This is what makes the trie *portable
across queries*: a :class:`TrieCache` entry is just the trie objects, and
a repeated query walks them warm with no per-node object graph to rebuild
or traverse.

Concurrency contract (shared tries are walked by concurrent server
threads): readers are lock-free; writers serialize on :attr:`
VerificationTrie.lock` and must publish in the order *grow arrays → write
column/mins/lasts → publish edge*.  A reader that observes an edge is
therefore guaranteed fully-written backing entries in whatever array
references it fetches afterwards (CPython's GIL orders the stores), and
grown arrays always contain every previously published slot — no torn
columns.  Rows are never mutated after their edge is published.

The pure-Python backend (the ablation baseline) and the
``use_trie=False`` ablation keep the historical one-column-per-node
:class:`TrieNode` storage: nothing is shared there, so an arena would
only pin memory.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TrieCache", "TrieCacheEntry", "TrieNode", "VerificationTrie"]

#: rows a fresh arena starts with; growth doubles.
_INITIAL_ROWS = 32

# Per-column python-object bytes beyond the float arrays, *measured* on
# this interpreter instead of the old hard-coded 150-byte guess (which
# drifted on wide alphabets, where the edges dict dominates).  Each
# published column costs one edges entry — a 2-tuple key plus two boxed
# ints (slots and symbols exceed the small-int intern range on real
# graphs, so the boxes are real) and the boxed child-slot value — and two
# boxed floats appended to the scalar mirrors.  The containers' own
# tables (dict hash table, list cells) are NOT folded in here: ``nbytes``
# reads them exactly via ``sys.getsizeof`` at accounting time, which is
# O(1) per container and tracks hash-table growth for free.
_EDGE_OBJECT_BYTES = (
    sys.getsizeof((1 << 20, 1 << 20)) + 3 * sys.getsizeof(1 << 20)
)
_FLOAT_OBJECT_BYTES = sys.getsizeof(0.5)


class TrieNode:
    """One cached DP column of the *per-node* (non-arena) layout.

    ``column_min`` caches ``min(column)``, the early-termination lower
    bound ``LB`` of Eq. 11, and ``column_last`` caches ``column[-1]`` (the
    E value read once per visit); both are plain floats so hot-loop
    comparisons and emitted distances never carry numpy scalars.

    Used by the pure-Python backend's tries and by the ``use_trie=False``
    ablation's detached columns; the array-native trie stores no nodes
    (see the module docstring).
    """

    __slots__ = ("children", "column", "column_min", "column_last")

    def __init__(
        self,
        column: Sequence[float],
        column_min: Optional[float] = None,
        column_last: Optional[float] = None,
    ) -> None:
        self.children: dict = {}
        self.column: Sequence[float] = column
        if column_min is None:
            column_min = float(min(column))
        if column_last is None:
            column_last = float(column[-1])
        self.column_min: float = column_min
        self.column_last: float = column_last

    def find_child(self, symbol: int) -> Optional["TrieNode"]:
        """The cached child for ``symbol``, or None (a cache miss)."""
        return self.children.get(symbol)

    def create_child(self, symbol: int, column: Sequence[float]) -> "TrieNode":
        """Cache ``column`` as the child for ``symbol`` and return it."""
        child = TrieNode(column)
        self.children[symbol] = child
        return child


class VerificationTrie:
    """A trie rooted at the empty data prefix.

    The root column is ``wed(eps, Q^d_{1:j})`` for all ``j`` — the
    cumulative insertion costs of the query part.

    With ``arena=True`` the trie is slot-native: one growable
    ``(capacity, width)`` matrix holds every column (slot 0 = root), the
    ``edges`` dict holds the structure, and ``mins``/``lasts`` (ndarray)
    plus ``mins_list``/``lasts_list`` (plain floats) hold the per-column
    scalars.  Writers must hold :attr:`lock` and follow the publication
    order in the module docstring.  With ``arena=False`` the trie is the
    historical :class:`TrieNode` graph under :attr:`root` (the
    pure-Python backend's layout).
    """

    __slots__ = (
        "arena",
        "width",
        "root",
        "matrix",
        "mins",
        "lasts",
        "mins_list",
        "lasts_list",
        "edges",
        "used",
        "allocations",
        "lock",
        "__weakref__",
    )

    def __init__(self, root_column: Sequence[float], *, arena: bool = False) -> None:
        self.arena = arena
        self.width = len(root_column)
        if not arena:
            self.root: Optional[TrieNode] = TrieNode(root_column)
            self.matrix: Optional[np.ndarray] = None
            self.mins: Optional[np.ndarray] = None
            self.lasts: Optional[np.ndarray] = None
            self.mins_list: List[float] = []
            self.lasts_list: List[float] = []
            self.edges: Dict[Tuple[int, int], int] = {}
            self.used = 0
            self.allocations = 0
            self.lock = threading.Lock()
            return
        self.root = None
        capacity = max(_INITIAL_ROWS, 1)
        self.matrix = np.empty((capacity, self.width), dtype=np.float64)
        self.mins = np.empty(capacity, dtype=np.float64)
        self.lasts = np.empty(capacity, dtype=np.float64)
        self.matrix[0] = root_column
        root_min = float(min(root_column))
        root_last = float(root_column[-1])
        self.mins[0] = root_min
        self.lasts[0] = root_last
        self.mins_list = [root_min]
        self.lasts_list = [root_last]
        #: (parent_slot, symbol) -> child_slot; slot 0 is the root.
        self.edges = {}
        self.used = 1
        #: ndarray (re)allocations so far — the materialization cost of
        #: every column this trie stores (feeds the benchmark's
        #: allocation-reduction metric).
        self.allocations = 3
        #: serializes writer rounds (reserve + column write + edge
        #: publication); readers stay lock-free.
        self.lock = threading.Lock()

    def reserve(self, count: int) -> int:
        """Reserve ``count`` contiguous rows; returns the first slot.

        Caller must hold :attr:`lock`.  Growth publishes the grown
        ``matrix``/``mins``/``lasts`` (old rows copied) *before*
        returning, so lock-free readers holding either generation see
        every previously published slot.
        """
        start = self.used
        needed = start + count
        matrix = self.matrix
        capacity = matrix.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self.width), dtype=np.float64)
            grown[:start] = matrix[:start]
            grown_mins = np.empty(capacity, dtype=np.float64)
            grown_mins[:start] = self.mins[:start]
            grown_lasts = np.empty(capacity, dtype=np.float64)
            grown_lasts[:start] = self.lasts[:start]
            # Publish the grown arrays before any new row is written: a
            # reader can only learn of a new slot through an edge, which
            # is published after the row — so any array reference it
            # fetches after seeing the edge contains the slot.
            self.matrix = grown
            self.mins = grown_mins
            self.lasts = grown_lasts
            self.allocations += 3
        self.used = needed
        return start

    def row(self, slot: int) -> np.ndarray:
        """The column stored at ``slot`` (arena layout)."""
        return self.matrix[slot]

    def node_count(self) -> int:
        """Number of cached columns (root included) — a cache-size metric."""
        if self.arena:
            return self.used
        count = 0
        stack: List[TrieNode] = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    @property
    def nbytes(self) -> int:
        """Resident bytes, measured: the float arrays exactly
        (``ndarray.nbytes``), the bookkeeping containers exactly
        (``sys.getsizeof`` on the edges dict and scalar-mirror lists —
        O(1) each, capturing hash-table/list growth as it happens), plus
        the measured per-object cost of the boxed keys, slots, and
        mirror floats each published column pins (see
        ``_EDGE_OBJECT_BYTES`` / ``_FLOAT_OBJECT_BYTES``)."""
        if not self.arena:
            return 0
        # used - 1 edges: every column except the root was published
        # through exactly one edges entry.
        return (
            self.matrix.nbytes
            + self.mins.nbytes
            + self.lasts.nbytes
            + sys.getsizeof(self.edges)
            + sys.getsizeof(self.mins_list)
            + sys.getsizeof(self.lasts_list)
            + max(0, self.used - 1) * _EDGE_OBJECT_BYTES
            + 2 * self.used * _FLOAT_OBJECT_BYTES
        )


class TrieCacheEntry:
    """All direction tries of one ``(query, cost model)`` pair.

    ``tries`` maps ``(iq, direction)`` to the shared arena-backed
    :class:`VerificationTrie` — one pair of tries per anchor position the
    query's verifications have touched.  Entries are handed to concurrent
    verifiers; :meth:`trie` makes first-touch creation converge on one
    instance per direction.
    """

    __slots__ = ("tries", "lock", "__weakref__")

    def __init__(self) -> None:
        self.tries: Dict[Tuple[int, str], VerificationTrie] = {}
        self.lock = threading.Lock()

    def trie(
        self, key: Tuple[int, str], factory: Callable[[], VerificationTrie]
    ) -> VerificationTrie:
        """The shared trie for one ``(iq, direction)``, built on first
        touch (atomically: concurrent first callers get one instance)."""
        trie = self.tries.get(key)
        if trie is None:
            with self.lock:
                trie = self.tries.get(key)
                if trie is None:
                    trie = factory()
                    self.tries[key] = trie
        return trie

    @property
    def nbytes(self) -> int:
        """Total approximate bytes across this entry's tries."""
        return sum(trie.nbytes for trie in list(self.tries.values()))

    def column_count(self) -> int:
        """Total cached columns across this entry's tries."""
        return sum(trie.node_count() for trie in list(self.tries.values()))


class TrieCache:
    """Engine-level LRU of :class:`TrieCacheEntry` objects — warm DP
    columns across queries.

    Trie columns depend only on the query part, the cost model, and the
    walked data symbols — never on the threshold, the time window, or the
    dataset (a column is keyed by its symbol *path*, not by which
    trajectory produced it).  So the serving layer's repeated (zipf)
    queries — including tau and time-window variations — can start
    verification with every previously computed column warm, and online
    inserts need **no invalidation**: a new trajectory can only add new
    paths, and any shared prefix it has with cached paths maps to the
    exact same columns.

    Keys are the query-and-model prefix of the engine's normalized
    :func:`~repro.core.engine.query_signature` — the same prefix the
    :class:`~repro.distance.costs.SubstitutionMatrixCache` uses — so one
    cache is valid for exactly one engine/cost-model scope (or one group
    of shard engines over the same model: shard engines of a partitioned
    deployment share a single instance, because columns are
    dataset-independent).

    Eviction is LRU, bounded two ways: ``capacity`` entries, and — since
    arenas keep growing *after* insertion as later queries extend the
    tries — a ``max_bytes`` budget enforced by :meth:`reconcile`, which
    the engine calls after each verification to re-account
    ``trie_cache_bytes`` and shed LRU entries until the total fits.
    ``capacity == 0`` disables the cache entirely (``entry`` returns
    ``None`` without counting).  Thread-safe; evicting an entry that a
    running verifier still holds is safe — the verifier keeps its
    reference, the arenas are released when the last reference drops.
    """

    def __init__(self, capacity: int, max_bytes: Optional[int] = None) -> None:
        if capacity < 0:
            raise ValueError("trie cache capacity must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("trie cache byte budget must be >= 0")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: bytes across live entries as of the last :meth:`reconcile`.
        self.bytes = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, TrieCacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, key: Hashable) -> Optional[TrieCacheEntry]:
        """The (created-if-absent) entry for ``key``, LRU-refreshed; None
        when the cache is disabled.  Creation counts as a miss."""
        return self.lookup(key)[0]

    def lookup(self, key: Hashable) -> Tuple[Optional[TrieCacheEntry], str]:
        """Like :meth:`entry`, but also reports what happened:
        ``"hit"`` (warm entry reused), ``"miss"`` (fresh entry created —
        this query verifies cold and warms the cache), or ``"off"``
        (cache disabled).  The status feeds trace span attributes, so an
        operator can see warm vs. cold verification per query."""
        if self.capacity == 0:
            return None, "off"
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, "hit"
            self.misses += 1
            entry = TrieCacheEntry()
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry, "miss"

    def peek(self, key: Hashable) -> Optional[TrieCacheEntry]:
        """The entry for ``key`` without counting or refreshing (tests /
        diagnostics)."""
        with self._lock:
            return self._entries.get(key)

    def keys(self) -> List[Hashable]:
        """Keys in LRU order, least recent first (tests / diagnostics)."""
        with self._lock:
            return list(self._entries)

    def reconcile(self) -> int:
        """Re-account entry bytes and evict LRU entries past ``max_bytes``.

        Returns the post-eviction byte total.  Called by the engine after
        each cached verification, because arenas grow while entries sit
        in the cache — insertion-time accounting alone would undercount.
        An oversized *single* entry is evicted too (the budget is a hard
        cap); the query that produced it simply stays cold.
        """
        with self._lock:
            sizes = [(key, entry.nbytes) for key, entry in self._entries.items()]
            total = sum(size for _, size in sizes)
            if self.max_bytes is not None:
                for key, size in sizes:  # sizes is in LRU order
                    if total <= self.max_bytes:
                        break
                    if self._entries.pop(key, None) is not None:
                        self.evictions += 1
                        total -= size
            self.bytes = total
            return total

    def stats(self) -> Dict[str, int]:
        """Observable counters (served via ``/healthz`` and service stats)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "bytes": self.bytes,
                "max_bytes": -1 if self.max_bytes is None else self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
