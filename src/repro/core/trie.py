"""DP-column tries for verification caching (§5.2), arena-backed.

Each trie caches the dynamic-programming columns produced while verifying
candidates in one direction (forward or backward) for one anchor position
``iq`` of the query.  A path from the root spells a sequence of data
symbols; the node at its end stores the DP column ``A(x)`` for that data
prefix against the fixed query part ``Q^d``.  Because trajectories in a
road network share prefixes (out-degree is tiny), later candidates walk
cached nodes instead of recomputing columns — the cache-miss rate is the
CMR metric of §6.4.

Memory layout (the PR 4 arena rework): on the array-native backend the
trie owns **one growable ``(capacity, |Q^d|+1)`` float64 matrix per
level** — all columns at the same depth are level-aligned rows of the
same arena — and a :class:`TrieNode` holds only an integer row *slot*
into its level's matrix (plus the two scalars the hot walk reads).  The
batched StepDP kernel writes new columns straight into reserved arena
rows, so verifying a query allocates a handful of arena/scratch buffers
instead of one ndarray per computed column; profiles showed ~25% of
at-scale verification time was garbage-collector overhead from exactly
that churn.  The pure-Python backend (the ablation baseline) and the
``use_trie=False`` ablation keep the historical one-column-per-node
storage: nothing is shared there, so an arena would only pin memory.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["LevelArena", "TrieNode", "VerificationTrie"]

#: rows a fresh level arena starts with; levels grow geometrically.
_INITIAL_ROWS = 32


class TrieNode:
    """One cached DP column.

    ``column_min`` caches ``min(column)``, the early-termination lower
    bound ``LB`` of Eq. 11, and ``column_last`` caches ``column[-1]`` (the
    E value read once per visit); both are plain floats so hot-loop
    comparisons and emitted distances never carry numpy scalars.

    The column itself lives in one of two places:

    - *arena nodes* (array-native backend, tries on): ``column`` is None
      and ``slot`` indexes the node's row in its level's
      :class:`LevelArena` matrix — the node does not own an ndarray;
    - *detached nodes* (pure-Python backend, or ``use_trie=False``):
      ``column`` holds the column itself (a list or an ndarray view) and
      ``slot`` is ``-1``.
    """

    __slots__ = ("children", "column", "column_min", "column_last", "slot")

    def __init__(
        self,
        column: Optional[Sequence[float]] = None,
        column_min: Optional[float] = None,
        column_last: Optional[float] = None,
        slot: int = -1,
    ) -> None:
        self.children: dict = {}
        self.column: Optional[Sequence[float]] = column
        if column_min is None or column_last is None:
            if column is None:
                raise ValueError("arena nodes must pass column_min/column_last")
            if column_min is None:
                column_min = float(min(column))
            if column_last is None:
                column_last = float(column[-1])
        self.column_min: float = column_min
        self.column_last: float = column_last
        self.slot = slot

    def find_child(self, symbol: int) -> Optional["TrieNode"]:
        """The cached child for ``symbol``, or None (a cache miss)."""
        return self.children.get(symbol)

    def create_child(self, symbol: int, column: Sequence[float]) -> "TrieNode":
        """Cache ``column`` as the child for ``symbol`` and return it."""
        child = TrieNode(column)
        self.children[symbol] = child
        return child


class LevelArena:
    """Growable column storage for one trie level.

    ``matrix`` is ``(capacity, width)`` float64; rows ``[0, used)`` hold
    live columns.  :meth:`reserve` hands out contiguous row ranges so a
    batched kernel can compute a whole round of same-level columns with
    one ``out=`` slice — no per-column allocation at all.  Growth doubles
    capacity (``allocations`` counts the reallocations, feeding the
    benchmark's allocation-reduction metric).
    """

    __slots__ = ("matrix", "used", "allocations")

    def __init__(self, width: int, capacity: int = _INITIAL_ROWS) -> None:
        self.matrix = np.empty((max(capacity, 1), width), dtype=np.float64)
        self.used = 0
        self.allocations = 1

    def reserve(self, count: int) -> int:
        """Reserve ``count`` contiguous rows; returns the first slot."""
        start = self.used
        needed = start + count
        capacity = self.matrix.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self.matrix.shape[1]), dtype=np.float64)
            grown[:start] = self.matrix[:start]
            self.matrix = grown
            self.allocations += 1
        self.used = needed
        return start


class VerificationTrie:
    """A trie rooted at the empty data prefix.

    The root column is ``wed(eps, Q^d_{1:j})`` for all ``j`` — the
    cumulative insertion costs of the query part.  With ``arena=True``
    the trie owns one :class:`LevelArena` per depth and nodes store row
    slots; otherwise nodes own their columns directly (the historical
    per-node layout, kept for the pure-Python backend).
    """

    def __init__(self, root_column: Sequence[float], *, arena: bool = False) -> None:
        self.root = TrieNode(root_column)
        self.width = len(root_column)
        self._levels: List[LevelArena] = []
        self.arena = arena

    def level(self, depth: int) -> LevelArena:
        """The arena holding columns at ``depth`` (>= 1), created lazily."""
        levels = self._levels
        while len(levels) < depth:
            levels.append(LevelArena(self.width))
        return levels[depth - 1]

    def column(self, node: TrieNode, depth: int) -> Sequence[float]:
        """``node``'s column, wherever it lives (``depth`` = node depth)."""
        if node.column is not None:
            return node.column
        return self._levels[depth - 1].matrix[node.slot]

    @property
    def allocations(self) -> int:
        """Arena matrix (re)allocations so far — the ndarray cost of every
        column this trie stores."""
        return sum(level.allocations for level in self._levels)

    def level_count(self) -> int:
        """Number of materialized level arenas."""
        return len(self._levels)

    def node_count(self) -> int:
        """Number of cached columns (root included) — a cache-size metric."""
        count = 0
        stack: List[TrieNode] = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
