"""Candidate verification (§5, Algorithms 3–6).

Given a candidate ``(id, j, iq)`` — trajectory ``id`` contains, at position
``j``, a substitution neighbor of the query symbol at position ``iq`` — we
must report every subtrajectory ``P[s..t]`` with ``s <= j <= t`` and
``wed(P[s..t], Q) < tau``.  Lemma 1 licenses the decomposition

    wed(P[s..t], Q) = wed(P[s..j-1], Q[0..iq-1])   (backward part)
                    + sub(P[j], Q[iq])             (anchor)
                    + wed(P[j+1..t], Q[iq+1..])    (forward part)

for at least one candidate of every true match, so verifying all candidates
bidirectionally finds all matches; for the remaining candidates the sum is
an upper bound on the true WED, hence no false positives either.

Contract: Lemma 1 presupposes that the candidates come from a valid
tau-subsequence (``c(Q') >= tau``).  Only then is the minimum decomposition
over anchors *equal* to the true WED for every match; with an arbitrary
candidate set the reported distances are sound upper bounds.  The engine
never verifies outside this contract — when no tau-subsequence exists it
falls back to an exact scan.

Three optimizations, individually switchable for ablation:

- *local verification*: DP runs outward from ``j`` only while the running
  prefix lower bound (Eq. 11 — the column minimum) stays below the budget;
- *bidirectional tries*: DP columns are cached per (direction, ``iq``)
  across candidates sharing data prefixes (§5.2);
- the anchor tightens the budget to ``tau' = tau - sub(Q[iq], P[j])``.

Two DP backends compute the columns, both evaluating the repo-wide
prefix-min insert chain (see :mod:`repro.distance.wed`) so their floats
are bit-identical:

- ``dp_backend="numpy"`` is *array-native end to end* with
  **anchor-grouped batch verification**: candidates are deduped, grouped
  by anchor position ``iq``, and each group's candidates walk the shared
  direction trie *run-to-miss* — every round's distinct cache misses
  become batched :func:`step_dp_batch` calls, one per trie level touched,
  whose ``out=`` target is a contiguous row range of that level's
  **column arena** (:class:`~repro.core.trie.LevelArena`).  Verifying a
  query therefore allocates a handful of growable arena/scratch buffers
  instead of one ndarray per computed column — the per-column churn that
  used to cost ~25% of at-scale verification time in collector overhead.
  Substitution rows come from a per-query (engine-LRU-cached)
  :class:`~repro.distance.costs.SubstitutionMatrix` through its
  :class:`~repro.distance.costs.DirectionRows` caches, and trajectory
  strings are memoized ``np.int32`` arrays sliced into directional views
  and materialized into the walker chunk by chunk;
- ``dp_backend="python"`` is the historical pure-Python per-cell loop,
  kept as the ablation baseline
  (``benchmarks/bench_verification_hotpath.py`` tracks the gap).

``dp_backend="auto"`` (the engine default) resolves per query via
:func:`choose_dp_backend`: the pure-Python loop for short queries over
models with vectorizable (hence cheap) substitution rows — the one regime
where kernel-launch overhead loses to plain Python — and the array-native
backend everywhere else.  Safe precisely because the backends are
bit-identical.

Batching preserves the sequential semantics exactly: which columns get
computed, every column's floats, each candidate's early-termination point,
and the UPR/CMR counters are all order-independent, so the two backends —
and the batched vs. single-candidate numpy paths — agree bit for bit.

The :class:`VerificationStats` counters implement the §6.4 metrics: UPR
(columns surviving early termination vs. a full Smith–Waterman pass) and
CMR (columns actually computed vs. columns visited).  They are
backend-identical by design; the ndarray-materialization count, which is
*not* (the python backend allocates none), is reported separately via
:attr:`Verifier.dp_array_allocations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import MatchSet
from repro.core.trie import TrieNode, VerificationTrie
from repro.distance.costs import CostModel, SubstitutionMatrix
from repro.exceptions import QueryCancelledError, QueryError

__all__ = [
    "AUTO_PYTHON_MAX_QUERY",
    "Candidate",
    "VerificationStats",
    "Verifier",
    "choose_dp_backend",
    "step_dp_batch",
    "step_dp_numpy",
]

#: longest query the auto backend still routes to the pure-Python DP
#: (only on cost models with vectorizable rows); above this the
#: array-native kernels win even on unit-cost models (ROADMAP: per-column
#: numpy kernels cannot win at |Q| <~ 15 on unit-cost models).
AUTO_PYTHON_MAX_QUERY = 15


def choose_dp_backend(query_length: int, costs: CostModel) -> str:
    """Resolve ``dp_backend="auto"`` for one query.

    Picks ``"python"`` only where it measurably wins (see
    ``BENCH_verification.json``): short queries (``<=
    AUTO_PYTHON_MAX_QUERY``) over models whose substitution rows are
    vectorizable — i.e. cheap — so the per-column numpy launch overhead
    cannot amortize.  Everything else (long queries, or expensive rows
    that the array-native path computes once per symbol instead of once
    per column) goes to ``"numpy"``.  Both backends are bit-identical,
    so the choice changes throughput, never answers.
    """
    if query_length <= AUTO_PYTHON_MAX_QUERY and costs.vectorized_rows():
        return "python"
    return "numpy"


def step_dp_numpy(
    sub_row: np.ndarray,
    delete_cost: float,
    ins_prefix: np.ndarray,
    prev: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized StepDP (Algorithm 6) in the prefix-min convention.

    ``C[j] = min(prev[j-1] + sub[j-1], prev[j] + del)`` (``C[0] = prev[0] +
    del``) vectorizes directly; the insert chain is evaluated as ``B[j] =
    min(C[j], P[j] + min over i < j of (C[i] - P[i]))`` with one
    ``minimum.accumulate`` pass — the exact evaluation order every DP step
    in this repo uses (see :mod:`repro.distance.wed`), so the result is
    *bit-identical* to the pure-Python backend, not merely close: the
    strict ``< tau`` match semantics see the same floats everywhere.

    ``sub_row`` and ``prev`` may be non-contiguous views; the inputs are
    never mutated.  ``out``, when given, receives the column (the arena
    path passes a reserved trie row, so no per-column array is created);
    it must not alias any input.  The operation sequence is identical
    either way — ``out`` changes the destination, never the floats.
    """
    c = prev + delete_cost if out is None else np.add(prev, delete_cost, out=out)
    np.minimum(c[1:], prev[:-1] + sub_row, out=c[1:])
    d = c - ins_prefix
    np.minimum.accumulate(d, out=d)
    np.minimum(c[1:], ins_prefix[1:] + d[:-1], out=c[1:])
    return c


def step_dp_batch(
    sub_rows: np.ndarray,
    delete_costs: np.ndarray,
    ins_prefix: np.ndarray,
    prev_columns: np.ndarray,
    out: Optional[np.ndarray] = None,
    work: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """:func:`step_dp_numpy` over ``L`` independent columns at once.

    ``prev_columns`` is ``(L, n+1)``, ``sub_rows`` ``(L, n)``,
    ``delete_costs`` ``(L,)``; returns the ``(L, n+1)`` next columns.  Each
    row runs the identical operation sequence as the single-column kernel,
    so batching changes throughput, never values.  ``out``, when given,
    receives the columns — the arena path passes a contiguous range of
    freshly reserved trie-level rows, so a whole round of cache misses is
    computed without allocating a single column array — and ``work`` (an
    ``(L, n)`` and an ``(L, n+1)`` scratch buffer, contiguous, aliasing
    nothing) absorbs the kernel's intermediate results, making the whole
    call buffer-allocation-free.  This is what makes anchor-grouped
    verification fast: one launch sequence per trie level instead of per
    column, writing straight into the cache with the allocator idle.
    """
    if out is None:
        c = prev_columns + delete_costs[:, None]
    else:
        c = np.add(prev_columns, delete_costs[:, None], out=out)
    if work is None:
        np.minimum(c[:, 1:], prev_columns[:, :-1] + sub_rows, out=c[:, 1:])
        d = c - ins_prefix
        np.minimum.accumulate(d, axis=1, out=d)
        np.minimum(c[:, 1:], ins_prefix[1:] + d[:, :-1], out=c[:, 1:])
        return c
    work_sums, work_d = work
    sums = np.add(prev_columns[:, :-1], sub_rows, out=work_sums)
    np.minimum(c[:, 1:], sums, out=c[:, 1:])
    d = np.subtract(c, ins_prefix, out=work_d)
    np.minimum.accumulate(d, axis=1, out=d)
    # work_sums' first use is fully consumed by the minimum above, so it
    # is free to hold the insert-chain sums; the operation sequence
    # (hence every float) is identical to the allocating branch.
    chain = np.add(ins_prefix[1:], d[:, :-1], out=work_sums)
    np.minimum(c[:, 1:], chain, out=c[:, 1:])
    return c


Candidate = Tuple[int, int, int]  # (trajectory id, position j, query position iq)

#: symbols materialized per tolist() chunk by the batched walker — small
#: enough that an immediately-terminated candidate on a long trajectory
#: wastes almost nothing, large enough to amortize the slice machinery.
_SYMBOL_CHUNK = 64

#: ndarray buffers one batched StepDP resolution still materializes per
#: level group after the scratch rework: the index arrays behind the
#: parent-row and substitution-row/delete gathers (np.take converts the
#: slot lists).  Counted (not avoided) because they are per *round*, not
#: per column; the kernel itself runs buffer-allocation-free via the
#: context's work/mins scratch.
_GROUP_TEMP_ARRAYS = 3

#: same accounting for a single-column StepDP call (kernel temps only).
_SINGLE_TEMP_ARRAYS = 3


@dataclass(slots=True)
class VerificationStats:
    """Counters backing the UPR / CMR / TUR metrics of §6.4."""

    candidates: int = 0
    #: columns a full SW pass would compute: |P| per candidate (denominator of UPR)
    sw_columns: int = 0
    #: columns visited before early termination fired (numerator of UPR)
    visited_columns: int = 0
    #: columns actually computed by StepDP, i.e. trie cache misses
    computed_columns: int = 0
    #: matches emitted (pre-deduplication)
    emitted: int = 0
    #: exact (id, j, iq) repeats dropped by ``verify_all`` before verification
    duplicate_candidates: int = 0

    @property
    def unpruned_position_rate(self) -> float:
        """UPR: fraction of SW's DP columns that local verification visits."""
        return self.visited_columns / self.sw_columns if self.sw_columns else 0.0

    @property
    def cache_miss_rate(self) -> float:
        """CMR: fraction of visited columns that needed a StepDP call."""
        return (
            self.computed_columns / self.visited_columns
            if self.visited_columns
            else 0.0
        )

    @property
    def total_unpruned_rate(self) -> float:
        """TUR = UPR x CMR: StepDP calls relative to a full SW pass."""
        return self.computed_columns / self.sw_columns if self.sw_columns else 0.0


class _DirectionContext:
    """Precomputed per-direction query data shared by all candidates with
    the same anchor position ``iq``.

    ``ins_prefix`` is the cumulative insertion-cost prefix of the query
    part — the trie's root column and the ``P`` of the prefix-min DP
    convention (an ndarray on the numpy backend, a list on the python
    one, summed left-to-right either way so both hold the same floats).
    ``rows`` (numpy only) is the matrix-owned
    :class:`~repro.distance.costs.DirectionRows` cache mapping a data
    symbol to this direction's contiguous substitution-row slice and its
    deletion cost; because it lives inside the (engine-LRU-cached)
    SubstitutionMatrix, repeated queries reuse the copies across
    verifier instances.  ``row_slice`` maps a *full-query* row to this
    direction's part: ``slice(iq+1, None)`` forward, ``slice(iq-1, None,
    -1)`` backward (the reversed prefix).

    The context also owns the batched walker's scratch buffers (parent
    columns, substitution rows, deletion costs), grown geometrically and
    reused round after round, and the direction's arena-backed
    :class:`~repro.core.trie.VerificationTrie`.
    """

    __slots__ = (
        "query_part",
        "ins_prefix",
        "row_slice",
        "rows",
        "trie",
        "width",
        "scratch_allocations",
        "_parents",
        "_subs",
        "_dels",
        "_work_a",
        "_work_b",
        "_mins",
    )

    def __init__(
        self,
        query: Sequence[int],
        iq: int,
        direction: str,
        costs: CostModel,
        *,
        numpy_backend: bool,
        ins_vec: Optional[np.ndarray] = None,
        matrix: Optional[SubstitutionMatrix] = None,
    ) -> None:
        if direction == "b":
            # Backward part: both strings reversed (WED is invariant under
            # simultaneous reversal because costs are position-independent).
            self.query_part: Tuple[int, ...] = tuple(reversed(query[:iq]))
            self.row_slice = slice(iq - 1, None, -1) if iq > 0 else slice(0, 0)
        else:
            self.query_part = tuple(query[iq + 1 :])
            self.row_slice = slice(iq + 1, None)
        self.width = len(self.query_part) + 1
        self.rows = None
        self.scratch_allocations = 0
        self._parents: Optional[np.ndarray] = None
        self._subs: Optional[np.ndarray] = None
        self._dels: Optional[np.ndarray] = None
        self._work_a: Optional[np.ndarray] = None
        self._work_b: Optional[np.ndarray] = None
        self._mins: Optional[np.ndarray] = None
        if numpy_backend:
            ins_part = ins_vec[self.row_slice]
            prefix = np.empty(self.width, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(ins_part, out=prefix[1:])
            self.ins_prefix: Sequence[float] = prefix
            self.rows = matrix.direction_rows((iq, direction), self.row_slice)
            self.scratch_allocations += 1  # the prefix itself
        else:
            prefix_list: List[float] = [0.0]
            for q in self.query_part:
                prefix_list.append(prefix_list[-1] + costs.ins(q))
            self.ins_prefix = prefix_list
        # The root column wed(eps, part prefix) IS the insertion prefix.
        self.trie = VerificationTrie(self.ins_prefix, arena=numpy_backend)

    def scratch(
        self, count: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Reusable batch buffers, first ``count`` rows each (grown
        geometrically, never shrunk): parent columns, substitution rows,
        deletion costs, the two kernel work buffers, and the per-column
        minimum vector."""
        parents = self._parents
        if parents is None or parents.shape[0] < count:
            capacity = 16 if parents is None else parents.shape[0]
            while capacity < count:
                capacity *= 2
            self._parents = parents = np.empty(
                (capacity, self.width), dtype=np.float64
            )
            self._subs = np.empty((capacity, self.width - 1), dtype=np.float64)
            self._dels = np.empty(capacity, dtype=np.float64)
            self._work_a = np.empty((capacity, self.width - 1), dtype=np.float64)
            self._work_b = np.empty((capacity, self.width), dtype=np.float64)
            self._mins = np.empty(capacity, dtype=np.float64)
            self.scratch_allocations += 6
        return (
            parents[:count],
            self._subs[:count],
            self._dels[:count],
            self._work_a[:count],
            self._work_b[:count],
            self._mins[:count],
        )

    @property
    def arena_allocations(self) -> int:
        """Arena + scratch ndarray allocations this context has made."""
        return self.scratch_allocations + (
            self.trie.allocations if self.trie.arena else 0
        )


class Verifier:
    """Verifies candidates for one query, accumulating matches and stats.

    Parameters
    ----------
    symbols_of:
        Callable mapping a trajectory id to its symbol string (the dataset's
        ``symbols`` method).
    query / costs / tau:
        The query string, cost model, and similarity threshold.
    use_trie:
        Cache DP columns in bidirectional tries (§5.2).  Disabling recomputes
        every column (OSF-BT -> OSF with plain local verification).
    early_termination:
        Stop extending a direction once the column minimum reaches the
        budget (§5.1).  Disabling scans to the trajectory ends.
    dp_backend:
        ``"auto"`` (resolved per query via :func:`choose_dp_backend`),
        ``"numpy"`` — anchor-grouped batch verification over the
        array-native column kernels with arena-backed trie columns; or
        ``"python"`` — the pure-Python per-cell loop, kept for ablation.
        Results are bit-identical.
    symbols_array_of:
        Callable mapping a trajectory id to its ``np.int32`` symbol array
        (the dataset's ``symbols_array``).  Used by the numpy backend only;
        when omitted, arrays are converted from ``symbols_of`` and memoized
        per verifier.
    anchors:
        Symbols that can appear at candidate anchor positions (the union of
        the tau-subsequence's substitution neighborhoods).  Their
        substitution rows are precomputed densely when this verifier builds
        its own :class:`~repro.distance.costs.SubstitutionMatrix`; ignored
        when ``matrix`` is supplied.
    matrix:
        A prebuilt :class:`~repro.distance.costs.SubstitutionMatrix` for
        this exact query — the engine passes its LRU-cached instance so
        repeated queries skip substitution-row computation entirely.  Must
        have been built for the same query string.
    cancel:
        Optional cooperative cancellation token (anything with a
        ``cancelled() -> bool`` method, e.g.
        :class:`~repro.core.cancellation.CancelToken`).  Polled once per
        candidate (python backend) or per group/trie level (numpy
        backend) in :meth:`verify_all`, so expired work stops within one
        verification-loop iteration instead of running to completion.
    """

    def __init__(
        self,
        symbols_of,
        query: Sequence[int],
        costs: CostModel,
        tau: float,
        *,
        use_trie: bool = True,
        early_termination: bool = True,
        dp_backend: str = "auto",
        symbols_array_of=None,
        anchors: Optional[Sequence[int]] = None,
        matrix: Optional[SubstitutionMatrix] = None,
        cancel=None,
    ) -> None:
        if dp_backend not in ("python", "numpy", "auto"):
            raise QueryError(f"unknown dp_backend {dp_backend!r}")
        if dp_backend == "auto":
            dp_backend = choose_dp_backend(len(query), costs)
        self._symbols_of = symbols_of
        self._query = tuple(query)
        self._costs = costs
        self._tau = tau
        self._use_trie = use_trie
        self._early_termination = early_termination
        self._cancel = cancel
        self._numpy = dp_backend == "numpy"
        self.dp_backend = dp_backend
        self._matrix: Optional[SubstitutionMatrix] = None
        self._ins_vec: Optional[np.ndarray] = None
        #: ndarrays materialized on the verification path (arena/scratch
        #: growths plus per-round kernel temporaries) — deliberately NOT a
        #: VerificationStats field, because the python backend allocates
        #: none and the stats are pinned backend-identical.
        self._allocs = 0
        if self._numpy:
            if matrix is not None:
                if matrix.query != self._query:
                    raise QueryError(
                        "substitution matrix was built for a different query"
                    )
                self._matrix = matrix
            else:
                self._matrix = costs.sub_matrix(self._query, anchors=anchors)
                self._allocs += 1 + (1 if anchors else 0)
            self._ins_vec = costs.ins_vector(self._query)
            self._allocs += 1
            if symbols_array_of is None:
                symbols_array_of = self._converting_array_accessor()
        self._symbols_array_of = symbols_array_of
        # One context per (query position, direction); built lazily since
        # only tau-subsequence positions are anchors (2|Q'| tries, §5.2).
        self._contexts: Dict[Tuple[int, str], _DirectionContext] = {}
        self.stats = VerificationStats()

    def _converting_array_accessor(self):
        """Fallback ``symbols_array_of``: convert + memoize per verifier."""
        cache: Dict[int, np.ndarray] = {}
        symbols_of = self._symbols_of

        def accessor(tid: int) -> np.ndarray:
            arr = cache.get(tid)
            if arr is None:
                arr = np.asarray(symbols_of(tid), dtype=np.int32)
                cache[tid] = arr
            return arr

        return accessor

    @property
    def dp_array_allocations(self) -> int:
        """ndarrays materialized verifying so far: per-query setup, arena
        and scratch (re)allocations, and per-round kernel temporaries.

        The pre-arena layout allocated at least one ndarray per *computed
        column* on top of the same per-round temporaries, so the
        benchmark's allocation-reduction metric compares
        ``computed_columns + dp_array_allocations`` (the old cost) against
        ``dp_array_allocations`` (the new one)."""
        total = self._allocs
        for ctx in self._contexts.values():
            total += ctx.arena_allocations
        return total

    # -- Algorithm 3: drive all candidates ---------------------------------

    def verify_all(self, candidates: Sequence[Candidate], matches: MatchSet) -> None:
        """Algorithm 3: verify every candidate into ``matches``.

        Exact ``(id, j, iq)`` repeats (possible when repeated query symbols
        or an external caller supply overlapping candidate sets) are
        verified once and counted in ``stats.duplicate_candidates``; the
        survivors are ordered by anchor position ``iq``, then trajectory,
        so consecutive candidates share direction contexts, trie roots, and
        symbol arrays — and, on the numpy backend, each ``iq`` group is
        verified as one level-synchronous batch over the shared tries.
        Neither transformation changes the result set or the column
        counters — trie cache contents and per-candidate visit counts are
        order-independent.

        Polls the cancellation token between candidates (python backend)
        or between anchor groups and trie levels (numpy backend), so a
        cancelled or deadline-expired query raises
        :class:`~repro.exceptions.QueryCancelledError` within one loop
        iteration instead of verifying the remaining candidates.

        On the numpy backend, trie nodes are materialized only where
        sharing is possible (see ``_resolve_group``); diverged tails live
        as arena rows without node objects.  Results and counters are
        unaffected, but a *later* ``verify_all`` or ``verify_candidate``
        call on the same verifier finds a sparser cache than sequential
        walking would have left and may recompute those columns (engine
        queries build one verifier per query, so this costs nothing
        there).
        """
        seen = set()
        unique: List[Candidate] = []
        for cand in candidates:
            if cand in seen:
                self.stats.duplicate_candidates += 1
            else:
                seen.add(cand)
                unique.append(cand)
        unique.sort(key=lambda c: (c[2], c[0], c[1]))
        cancel = self._cancel
        if self._numpy:
            total = len(unique)
            start = 0
            while start < total:
                if cancel is not None and cancel.cancelled():
                    raise QueryCancelledError(
                        f"verification cancelled after {self.stats.candidates} "
                        f"of {len(candidates)} candidates"
                    )
                iq = unique[start][2]
                end = start
                while end < total and unique[end][2] == iq:
                    end += 1
                self._verify_group(iq, unique[start:end], matches)
                start = end
            return
        for cand in unique:
            if cancel is not None and cancel.cancelled():
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} of "
                    f"{len(candidates)} candidates"
                )
            self.verify_candidate(cand, matches)

    # -- Algorithm 4 --------------------------------------------------------

    def verify_candidate(self, candidate: Candidate, matches: MatchSet) -> None:
        """Emit every match of Definition 3 anchored at this candidate.

        Single-candidate entry point (the batched group path in
        :meth:`verify_all` produces identical results and counters)."""
        tid, j, iq = candidate
        self.stats.candidates += 1
        if self._numpy:
            data = self._symbols_array_of(tid)
            self.stats.sw_columns += len(data)
            # The anchor cost is the iq-th entry of the symbol's cached
            # full-query substitution row (sub is symmetric — §2.2.1).
            anchor_cost = float(self._matrix.row(data.item(j))[iq])
            budget = self._tau - anchor_cost
            if budget <= 0:
                return
            backward = self._context(iq, "b")
            forward = self._context(iq, "f")
            eb = self._all_prefix_wed_array(data[:j][::-1], backward, budget)
            ef = self._all_prefix_wed_array(data[j + 1 :], forward, budget)
        else:
            data = self._symbols_of(tid)
            self.stats.sw_columns += len(data)
            anchor_cost = self._costs.sub(self._query[iq], data[j])
            budget = self._tau - anchor_cost
            if budget <= 0:
                return
            backward = self._context(iq, "b")
            forward = self._context(iq, "f")
            eb = self._all_prefix_wed(_Reversed(data, j), backward, budget)
            ef = self._all_prefix_wed(_Suffix(data, j + 1), forward, budget)
        self._combine(tid, j, anchor_cost, budget, eb, ef, matches)

    def _combine(
        self,
        tid: int,
        j: int,
        anchor_cost: float,
        budget: float,
        eb: List[float],
        ef: List[float],
        matches: MatchSet,
    ) -> None:
        """Combine: match P[j-kb .. j+kf] for every pair under budget."""
        emitted = 0
        add = matches.add
        for kb, cost_b in enumerate(eb):
            remaining = budget - cost_b
            if remaining <= 0:
                continue
            base = anchor_cost + cost_b
            start = j - kb
            for kf, cost_f in enumerate(ef):
                if cost_f < remaining:
                    add(tid, start, j + kf, base + cost_f)
                    emitted += 1
        self.stats.emitted += emitted

    # -- anchor-grouped batch verification (numpy backend) ------------------

    def _verify_group(
        self, iq: int, group: Sequence[Candidate], matches: MatchSet
    ) -> None:
        """Verify all candidates sharing anchor position ``iq`` as one
        level-synchronous batch over the shared direction tries."""
        stats = self.stats
        matrix = self._matrix
        tau = self._tau
        items: List[Tuple[int, int, float, float]] = []
        views_b: List[np.ndarray] = []
        views_f: List[np.ndarray] = []
        budgets: List[float] = []
        for tid, j, _ in group:
            data = self._symbols_array_of(tid)
            stats.candidates += 1
            stats.sw_columns += len(data)
            anchor_cost = float(matrix.row(data.item(j))[iq])
            budget = tau - anchor_cost
            if budget <= 0:
                continue
            items.append((tid, j, anchor_cost, budget))
            views_b.append(data[:j][::-1])
            views_f.append(data[j + 1 :])
            budgets.append(budget)
        if not items:
            return
        backward = self._context(iq, "b")
        forward = self._context(iq, "f")
        ebs = self._batched_all_prefix_wed(views_b, budgets, backward)
        efs = self._batched_all_prefix_wed(views_f, budgets, forward)
        for (tid, j, anchor_cost, budget), eb, ef in zip(items, ebs, efs):
            self._combine(tid, j, anchor_cost, budget, eb, ef, matches)

    def _batched_all_prefix_wed(
        self,
        views: List[np.ndarray],
        budgets: List[float],
        ctx: _DirectionContext,
    ) -> List[List[float]]:
        """AllPrefixWED for many candidates over one shared trie, walked
        run-to-miss.

        Each round, every runnable state advances through consecutive trie
        *hits* in a tight local-variable loop (as cheap as the sequential
        walk), parking at its first cache miss; the round's distinct
        ``(node, symbol)`` misses — deduplicated through a round-local
        rendezvous dict, so the shared tries never hold placeholder
        entries — are then resolved level by level: each level's misses
        become one :func:`step_dp_batch` call whose ``out=`` is a
        contiguous range of freshly reserved arena rows, and the new trie
        nodes are shared by every parked state.  A trie node's identity is
        its symbol path, so shared-prefix states converge on the same
        objects regardless of schedule: which columns get computed, each
        state's visit count, and every float are identical to walking the
        candidates one at a time — batching only amortizes the numpy
        launch overhead, and the arena only changes where columns live.

        States whose path has *diverged* from every other state (they were
        the sole waiter on their last miss) are stepped as slot-indexed
        **virgin chains**: their future steps are guaranteed unshared
        misses (a state only ever hits columns cached before its first
        miss, and co-waiters are exactly the states sharing a node), so
        they skip the walker, the rendezvous, and even TrieNode
        materialization — their columns live in the same arena rows,
        addressed by slot, computed in the same per-level kernel calls as
        the walker misses.  Emitted E values, termination points, and
        every counter are identical; only the bookkeeping route differs.
        """
        root = ctx.trie.root
        outs: List[List[float]] = [[root.column_last] for _ in views]
        early = self._early_termination
        use_trie = self._use_trie
        cancel = self._cancel
        inf = float("inf")
        # One walk state per candidate still extending:
        # [node, symbol list, out list, budget, k, len(view), view array].
        # Symbols are materialized into plain int lists *chunk by chunk*
        # (C-speed tolist of the zero-copy view, indexed per visit by the
        # tight loop) so an early-terminated candidate on a very long
        # trajectory never pays for symbols it will not reach.
        runnable: List[list] = []
        root_min = root.column_min
        for view, budget, out in zip(views, budgets, outs):
            if early and root_min >= budget:
                continue
            n = len(view)
            if n:
                runnable.append(
                    [root, view[:_SYMBOL_CHUNK].tolist(), out, budget, 0, n, view]
                )
        computed = 0
        # Visited-column accounting is derived, not incremented: every
        # visit appends exactly one E value to its state's out list (hits
        # immediately, misses when their batch resolves), so the visit
        # count is the total out-list growth — one subtraction per state
        # instead of one counter bump per visited column.
        #
        # Parked misses.  The rendezvous for duplicate (node, symbol)
        # misses within a round is ``pend_index`` — a round-local dict, so
        # the shared tries never see half-born entries: ``children`` gains
        # a key only when its column is already in the arena, which also
        # means a failing batch (e.g. a cost model raising mid-row) leaves
        # the tries fully consistent with no cleanup pass.  Without the
        # trie every state is its own miss (no sharing), matching the
        # sequential local-verification mode column for column.
        pend_index: Dict[Tuple[TrieNode, int], int] = {}
        pend_nodes: List[TrieNode] = []
        pend_syms: List[int] = []
        pend_depths: List[int] = []
        pend_slots: List[int] = []
        pend_waiters: List[List[list]] = []
        # Virgin chains: parallel lists of (state, parent arena slot,
        # substitution-row slot); the state's st[4] carries its depth.
        v_states: List[list] = []
        v_pslots: List[int] = []
        v_rowslots: List[int] = []
        if use_trie:
            rows = ctx.rows
            rows_index_get = rows.index.get
            rows_slot = rows.slot
        while runnable or pend_nodes or v_states:
            if cancel is not None and cancel.cancelled():
                self.stats.visited_columns += sum(len(o) for o in outs) - len(outs)
                self.stats.computed_columns += computed
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} "
                    "candidates (mid-batch)"
                )
            for st in runnable:
                node, view, out, budget, k, n = st[:6]
                append = out.append
                filled = len(view)
                # ``limit`` folds the early-termination flag out of the
                # per-visit condition (inf never fires).
                limit = budget if early else inf
                if use_trie:
                    while True:
                        if k == filled:
                            view.extend(st[6][filled : 2 * filled + 16].tolist())
                            filled = len(view)
                        symbol = view[k]
                        child = node.children.get(symbol)
                        if child is None:
                            st[0] = node
                            st[4] = k
                            rendezvous = (node, symbol)
                            idx = pend_index.get(rendezvous)
                            if idx is None:
                                pend_index[rendezvous] = len(pend_nodes)
                                pend_nodes.append(node)
                                pend_syms.append(symbol)
                                pend_depths.append(k)
                                # Dense substitution-row slot, resolved
                                # here (one inline dict hit per distinct
                                # miss) so resolution can bulk-gather.
                                sslot = rows_index_get(symbol)
                                if sslot is None:
                                    sslot = rows_slot(symbol)
                                pend_slots.append(sslot)
                                pend_waiters.append([st])
                            else:
                                pend_waiters[idx].append(st)
                            break
                        append(child.column_last)
                        k += 1
                        if child.column_min >= limit or k == n:
                            break
                        node = child
                else:
                    # Every visit recomputes its column: park immediately
                    # (no rendezvous — nothing is shared without the trie).
                    if k == filled:
                        view.extend(st[6][filled : 2 * filled + 16].tolist())
                    symbol = view[k]
                    st[0] = node
                    st[4] = k
                    pend_nodes.append(node)
                    pend_syms.append(symbol)
                    pend_waiters.append([st])
            if pend_nodes or v_states:
                computed += len(pend_nodes) + len(v_states)
                if use_trie:
                    # Resolution steps the virgin chains alongside the
                    # walker misses (one kernel call per level covers
                    # both) and fills nxt_v with the chains still alive,
                    # so only shared-prefix states come back through the
                    # walker above.
                    nxt_v: Tuple[list, list, list] = ([], [], [])
                    runnable = self._resolve_round(
                        ctx,
                        pend_nodes,
                        pend_syms,
                        pend_depths,
                        pend_slots,
                        pend_waiters,
                        v_states,
                        v_pslots,
                        v_rowslots,
                        nxt_v,
                    )
                    v_states, v_pslots, v_rowslots = nxt_v
                    pend_nodes = []
                    pend_syms = []
                    pend_depths = []
                    pend_slots = []
                    pend_waiters = []
                else:
                    runnable = self._resolve_detached(
                        ctx, pend_nodes, pend_syms, pend_waiters
                    )
                    pend_nodes = []
                    pend_syms = []
                    pend_waiters = []
                pend_index.clear()
            else:
                runnable = []
        self.stats.visited_columns += sum(len(o) for o in outs) - len(outs)
        self.stats.computed_columns += computed
        return outs

    def _resolve_round(
        self,
        ctx: _DirectionContext,
        w_nodes: List[TrieNode],
        w_syms: List[int],
        w_depths: List[int],
        w_rowslots: List[int],
        w_waiters: List[List[list]],
        v_states: List[list],
        v_pslots: List[int],
        v_rowslots: List[int],
        nxt_v: Tuple[list, list, list],
    ) -> List[list]:
        """Resolve one round of misses — walker entries and virgin chains
        together — into the arena.

        Entries are grouped by child level; each level's walker misses
        and virgin steps share a single ``out=``-targeted
        :func:`step_dp_batch` call over a contiguous range of freshly
        reserved arena rows.  Rounds are single-level almost always
        (states advance in lockstep once past their first miss), so the
        common case skips bucketing entirely; ``min``/``max`` detect it
        at C speed.  ``nxt_v`` receives the virgin chains still alive;
        the returned list holds the states that must go back through the
        walker (shared-prefix tails needing dedupe).
        """
        if not w_nodes:
            lo_v = min(st[4] for st in v_states)
            hi_v = max(st[4] for st in v_states)
            if lo_v == hi_v:
                return self._resolve_group(
                    ctx, lo_v + 1, w_nodes, w_syms, w_rowslots, w_waiters,
                    v_states, v_pslots, v_rowslots, nxt_v,
                )
            lo, hi = lo_v, hi_v
        elif not v_states:
            lo = min(w_depths)
            hi = max(w_depths)
            if lo == hi:
                return self._resolve_group(
                    ctx, lo + 1, w_nodes, w_syms, w_rowslots, w_waiters,
                    v_states, v_pslots, v_rowslots, nxt_v,
                )
        else:
            lo = min(min(w_depths), min(st[4] for st in v_states))
            hi = max(max(w_depths), max(st[4] for st in v_states))
            if lo == hi:
                return self._resolve_group(
                    ctx, lo + 1, w_nodes, w_syms, w_rowslots, w_waiters,
                    v_states, v_pslots, v_rowslots, nxt_v,
                )
        # Mixed-level round (possible when budgets stagger terminations):
        # bucket both populations by level and resolve each level group.
        w_groups: Dict[int, List[int]] = {}
        for i, k in enumerate(w_depths):
            group = w_groups.get(k)
            if group is None:
                w_groups[k] = [i]
            else:
                group.append(i)
        v_groups: Dict[int, List[int]] = {}
        for i, st in enumerate(v_states):
            k = st[4]
            group = v_groups.get(k)
            if group is None:
                v_groups[k] = [i]
            else:
                group.append(i)
        runnable: List[list] = []
        for k in sorted(set(w_groups) | set(v_groups)):
            widx = w_groups.get(k, ())
            vidx = v_groups.get(k, ())
            runnable.extend(
                self._resolve_group(
                    ctx,
                    k + 1,
                    [w_nodes[i] for i in widx],
                    [w_syms[i] for i in widx],
                    [w_rowslots[i] for i in widx],
                    [w_waiters[i] for i in widx],
                    [v_states[i] for i in vidx],
                    [v_pslots[i] for i in vidx],
                    [v_rowslots[i] for i in vidx],
                    nxt_v,
                )
            )
        return runnable

    def _resolve_group(
        self,
        ctx: _DirectionContext,
        depth: int,
        w_nodes: List[TrieNode],
        w_syms: List[int],
        w_rowslots: List[int],
        w_waiters: List[List[list]],
        v_states: List[list],
        v_pslots: List[int],
        v_rowslots: List[int],
        nxt_v: Tuple[list, list, list],
    ) -> List[list]:
        """Compute one level's worth of missed columns straight into the
        arena: parents gathered with one ``np.take`` from the level below
        (all parents of a level group sit there by construction),
        substitution rows and deletes bulk-gathered by their dense
        :class:`~repro.distance.costs.DirectionRows` slots, and the
        kernel writing into freshly reserved arena rows — walker misses
        first, virgin chain steps behind them in the same batch.

        Surviving states split two ways.  A *single-waiter* walker
        entry's column is exclusively its state's: no other live state
        can ever reach it (hits only happen before a state's first miss,
        and co-waiters are exactly the states sharing a node), so its
        next step is a guaranteed miss with no dedupe partner — the state
        becomes a virgin chain, addressed by arena slot with no TrieNode
        materialized at all.  Multi-waiter survivors may still converge
        on shared symbols, so they return to the walker, whose rendezvous
        dict dedupes them.  Emitted values, termination points, and all
        counters are identical either way; only the bookkeeping route
        (and the node count of the in-memory trie) differs."""
        trie = ctx.trie
        rows = ctx.rows
        prefix = ctx.ins_prefix
        early = self._early_termination
        wn = len(w_nodes)
        vn = len(v_states)
        count = wn + vn
        parents, subs, dels, work_a, work_b, mins_buf = ctx.scratch(count)
        if depth == 1:
            # Walker-only by construction: virgin states have advanced at
            # least once, so their children sit at depth >= 2.
            parents[:] = prefix
        else:
            pslots = [node.slot for node in w_nodes]
            pslots.extend(v_pslots)
            np.take(
                trie.level(depth - 1).matrix, pslots, axis=0, out=parents
            )
        rowslots = w_rowslots + v_rowslots if vn else w_rowslots
        np.take(rows.rows, rowslots, axis=0, out=subs)
        np.take(rows.deletes, rowslots, axis=0, out=dels)
        arena = trie.level(depth)
        start = arena.reserve(count)
        out = arena.matrix[start : start + count]
        step_dp_batch(subs, dels, prefix, parents, out=out, work=(work_a, work_b))
        # Direct ufunc reduce: same floats as out.min(axis=1), minus the
        # np.min wrapper dispatch paid once per round.
        mins = np.minimum.reduce(out, axis=1, out=mins_buf).tolist()
        lasts = out[:, -1].tolist()
        self._allocs += _GROUP_TEMP_ARRAYS
        runnable: List[list] = []
        runnable_append = runnable.append
        new = TrieNode.__new__
        slot = start
        neg_inf = float("-inf")
        nv_states, nv_pslots, nv_rowslots = nxt_v
        rows_index_get = rows.index.get
        rows_slot = rows.slot
        # Walker section: one trie node per computed column, built via
        # __new__ + attribute stores (skipping __init__'s call frame and
        # derivation branches is worth the verbosity on this path).
        for parent, symbol, cmin, last, wlist in zip(
            w_nodes, w_syms, mins, lasts, w_waiters
        ):
            child = new(TrieNode)
            child.children = {}
            child.column = None
            child.column_min = cmin
            child.column_last = last
            child.slot = slot
            parent.children[symbol] = child
            # -inf never reaches a (finite) budget, folding the early flag
            # out of the per-waiter condition.
            limit = cmin if early else neg_inf
            if len(wlist) == 1:
                st = wlist[0]
                st[2].append(last)
                k = st[4] + 1
                if limit < st[3] and k != st[5]:
                    # Sole waiter whose walk continues: divergence point —
                    # the state becomes a virgin chain from this slot.
                    st[4] = k
                    view = st[1]
                    if k == len(view):
                        view.extend(st[6][k : 2 * k + 16].tolist())
                    symbol2 = view[k]
                    sslot = rows_index_get(symbol2)
                    if sslot is None:
                        sslot = rows_slot(symbol2)
                    nv_states.append(st)
                    nv_pslots.append(slot)
                    nv_rowslots.append(sslot)
                slot += 1
                continue
            slot += 1
            for st in wlist:
                st[2].append(last)
                k = st[4] + 1
                if limit >= st[3] or k == st[5]:
                    continue
                st[0] = child
                st[4] = k
                runnable_append(st)
        # Virgin section: no nodes, no waiter lists — the chain advances
        # by arena slot, terminating exactly where the sequential walk
        # would.
        if vn:
            for i in range(vn):
                st = v_states[i]
                row = wn + i
                last = lasts[row]
                st[2].append(last)
                cmin = mins[row]
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[4] = k
                view = st[1]
                if k == len(view):
                    view.extend(st[6][k : 2 * k + 16].tolist())
                symbol2 = view[k]
                sslot = rows_index_get(symbol2)
                if sslot is None:
                    sslot = rows_slot(symbol2)
                nv_states.append(st)
                nv_pslots.append(start + row)
                nv_rowslots.append(sslot)
        return runnable

    def _resolve_detached(
        self,
        ctx: _DirectionContext,
        nodes: List[TrieNode],
        syms: List[int],
        waiters: List[List[list]],
    ) -> List[list]:
        """Resolve one round without the trie: per-state detached columns.

        Nothing is shared or cached in this ablation mode, so columns stay
        per-node ndarray views (they die with their walk state — an arena
        would pin every column for the query's lifetime)."""
        rows = ctx.rows
        prefix = ctx.ins_prefix
        early = self._early_termination
        rows_get = rows.get
        count = len(nodes)
        parents, subs, dels, work_a, work_b, mins_buf = ctx.scratch(count)
        for i in range(count):
            parents[i] = nodes[i].column
            pair = rows_get(syms[i])
            subs[i] = pair[0]
            dels[i] = pair[1]
        columns = step_dp_batch(subs, dels, prefix, parents, work=(work_a, work_b))
        mins = np.min(columns, axis=1, out=mins_buf).tolist()
        lasts = columns[:, -1].tolist()
        # The columns matrix plus one view per detached node — this is the
        # pre-arena allocation behaviour, kept only for use_trie=False.
        self._allocs += count + _GROUP_TEMP_ARRAYS
        runnable: List[list] = []
        for i in range(count):
            cmin = mins[i]
            last = lasts[i]
            child = TrieNode(columns[i], cmin, last)
            for st in waiters[i]:
                st[2].append(last)
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[0] = child
                st[4] = k
                runnable.append(st)
        return runnable

    def _context(self, iq: int, direction: str) -> _DirectionContext:
        key = (iq, direction)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = _DirectionContext(
                self._query,
                iq,
                direction,
                self._costs,
                numpy_backend=self._numpy,
                ins_vec=self._ins_vec,
                matrix=self._matrix,
            )
            self._contexts[key] = ctx
        return ctx

    # -- Algorithm 5: AllPrefixWED ------------------------------------------

    def _all_prefix_wed_array(
        self,
        data_part: np.ndarray,
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """Array-native AllPrefixWED over a zero-copy trajectory view
        (single-candidate path; the batched walker produces identical
        columns and counters — including where the columns live: cache
        misses are computed straight into reserved arena rows)."""
        trie = ctx.trie
        node: TrieNode = trie.root
        out: List[float] = [node.column_last]
        early = self._early_termination
        if early and node.column_min >= budget:
            return out
        rows_get = ctx.rows.get
        prefix = ctx.ins_prefix
        use_trie = self._use_trie
        item = data_part.item
        visited = computed = 0
        for k in range(len(data_part)):
            symbol = item(k)
            visited += 1
            child = node.children.get(symbol) if use_trie else None
            if child is None:
                sub_row, delete_cost = rows_get(symbol)
                prev = (
                    node.column
                    if node.column is not None
                    else trie.level(k).matrix[node.slot]
                )
                if use_trie:
                    arena = trie.level(k + 1)
                    slot = arena.reserve(1)
                    column = step_dp_numpy(
                        sub_row, delete_cost, prefix, prev, out=arena.matrix[slot]
                    )
                    child = TrieNode(
                        None, column.min().item(), column.item(-1), slot
                    )
                    node.children[symbol] = child
                else:
                    column = step_dp_numpy(sub_row, delete_cost, prefix, prev)
                    child = TrieNode(column, column.min().item(), column.item(-1))
                    self._allocs += 1
                computed += 1
                self._allocs += _SINGLE_TEMP_ARRAYS
            node = child
            out.append(node.column_last)
            if early and node.column_min >= budget:
                break
        self.stats.visited_columns += visited
        self.stats.computed_columns += computed
        return out

    def _all_prefix_wed(
        self,
        data_part: Sequence[int],
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """``E[k] = wed(data_part[:k], ctx.query_part)`` for growing ``k``.

        Stops early once the column minimum reaches ``budget`` (the stopped
        column's E value could only be >= budget, so nothing is lost).
        ``E[0]`` is the cost of inserting the whole query part.
        """
        node: TrieNode = ctx.trie.root
        query_part = ctx.query_part
        out: List[float] = [node.column_last]
        if self._early_termination and node.column_min >= budget:
            return out
        ins_prefix = ctx.ins_prefix
        nq = len(query_part)
        for k in range(len(data_part)):
            symbol = data_part[k]
            self.stats.visited_columns += 1
            child = node.find_child(symbol) if self._use_trie else None
            if child is None:
                column = self._step_dp(symbol, query_part, ins_prefix, node.column, nq)
                self.stats.computed_columns += 1
                if self._use_trie:
                    child = node.create_child(symbol, column)
                else:
                    child = TrieNode(column)
            node = child
            out.append(node.column_last)
            if self._early_termination and node.column_min >= budget:
                break
        return out

    # -- Algorithm 6: StepDP -------------------------------------------------

    def _step_dp(
        self,
        symbol: int,
        query_part: Sequence[int],
        ins_prefix: Sequence[float],
        prev: Sequence[float],
        nq: int,
    ) -> List[float]:
        # Prefix-min insert chain — the same evaluation order as
        # step_dp_numpy / step_dp_batch, cell for cell (see
        # repro.distance.wed), so the backends return identical floats.
        costs = self._costs
        sub_row = costs.sub_row(symbol, query_part)
        dele = costs.delete(symbol)
        first = prev[0] + dele
        column = [first]
        m = first - ins_prefix[0]
        for j in range(nq):
            c = prev[j] + sub_row[j]
            via_del = prev[j + 1] + dele
            if via_del < c:
                c = via_del
            chain = ins_prefix[j + 1] + m
            column.append(c if c <= chain else chain)
            d = c - ins_prefix[j + 1]
            if d < m:
                m = d
        return column

    def trie_node_count(self) -> int:
        """Total cached columns across all live tries."""
        return sum(ctx.trie.node_count() for ctx in self._contexts.values())


class _Reversed:
    """Lazy reversed view of ``seq[:end]`` (avoids copying long prefixes)."""

    __slots__ = ("_seq", "_end")

    def __init__(self, seq: Sequence[int], end: int) -> None:
        self._seq = seq
        self._end = end  # number of elements, reading backwards from end-1

    def __len__(self) -> int:
        return self._end

    def __getitem__(self, k: int) -> int:
        return self._seq[self._end - 1 - k]


class _Suffix:
    """Lazy view of ``seq[start:]``."""

    __slots__ = ("_seq", "_start")

    def __init__(self, seq: Sequence[int], start: int) -> None:
        self._seq = seq
        self._start = start

    def __len__(self) -> int:
        return len(self._seq) - self._start

    def __getitem__(self, k: int) -> int:
        return self._seq[self._start + k]
