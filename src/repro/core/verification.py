"""Candidate verification (§5, Algorithms 3–6).

Given a candidate ``(id, j, iq)`` — trajectory ``id`` contains, at position
``j``, a substitution neighbor of the query symbol at position ``iq`` — we
must report every subtrajectory ``P[s..t]`` with ``s <= j <= t`` and
``wed(P[s..t], Q) < tau``.  Lemma 1 licenses the decomposition

    wed(P[s..t], Q) = wed(P[s..j-1], Q[0..iq-1])   (backward part)
                    + sub(P[j], Q[iq])             (anchor)
                    + wed(P[j+1..t], Q[iq+1..])    (forward part)

for at least one candidate of every true match, so verifying all candidates
bidirectionally finds all matches; for the remaining candidates the sum is
an upper bound on the true WED, hence no false positives either.

Contract: Lemma 1 presupposes that the candidates come from a valid
tau-subsequence (``c(Q') >= tau``).  Only then is the minimum decomposition
over anchors *equal* to the true WED for every match; with an arbitrary
candidate set the reported distances are sound upper bounds.  The engine
never verifies outside this contract — when no tau-subsequence exists it
falls back to an exact scan.

Three optimizations, individually switchable for ablation:

- *local verification*: DP runs outward from ``j`` only while the running
  prefix lower bound (Eq. 11 — the column minimum) stays below the budget;
- *bidirectional tries*: DP columns are cached per (direction, ``iq``)
  across candidates sharing data prefixes (§5.2);
- the anchor tightens the budget to ``tau' = tau - sub(Q[iq], P[j])``.

The :class:`VerificationStats` counters implement the §6.4 metrics: UPR
(columns surviving early termination vs. a full Smith–Waterman pass) and
CMR (columns actually computed vs. columns visited).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import MatchSet
from repro.core.trie import TrieNode, VerificationTrie
from repro.distance.costs import CostModel
from repro.exceptions import QueryCancelledError, QueryError

__all__ = ["Candidate", "VerificationStats", "Verifier", "step_dp_numpy"]


def step_dp_numpy(
    sub_row: np.ndarray,
    delete_cost: float,
    ins_prefix: np.ndarray,
    prev: np.ndarray,
) -> np.ndarray:
    """Vectorized StepDP (Algorithm 6) without the sequential insert chain.

    The classic recurrence ``B[j] = min(C[j], B[j-1] + ins[j])`` unrolls to
    ``B[j] = min over i <= j of (C[i] + ins_prefix[j] - ins_prefix[i])``
    where ``C[j] = min(prev[j-1] + sub[j-1], prev[j] + del)`` (``C[0] =
    prev[0] + del``), which numpy evaluates with one ``minimum.accumulate``
    pass — exact, no approximation.
    """
    c = prev + delete_cost
    np.minimum(c[1:], prev[:-1] + sub_row, out=c[1:])
    return ins_prefix + np.minimum.accumulate(c - ins_prefix)

Candidate = Tuple[int, int, int]  # (trajectory id, position j, query position iq)


@dataclass(slots=True)
class VerificationStats:
    """Counters backing the UPR / CMR / TUR metrics of §6.4."""

    candidates: int = 0
    #: columns a full SW pass would compute: |P| per candidate (denominator of UPR)
    sw_columns: int = 0
    #: columns visited before early termination fired (numerator of UPR)
    visited_columns: int = 0
    #: columns actually computed by StepDP, i.e. trie cache misses
    computed_columns: int = 0
    #: matches emitted (pre-deduplication)
    emitted: int = 0

    @property
    def unpruned_position_rate(self) -> float:
        """UPR: fraction of SW's DP columns that local verification visits."""
        return self.visited_columns / self.sw_columns if self.sw_columns else 0.0

    @property
    def cache_miss_rate(self) -> float:
        """CMR: fraction of visited columns that needed a StepDP call."""
        return (
            self.computed_columns / self.visited_columns
            if self.visited_columns
            else 0.0
        )

    @property
    def total_unpruned_rate(self) -> float:
        """TUR = UPR x CMR: StepDP calls relative to a full SW pass."""
        return self.computed_columns / self.sw_columns if self.sw_columns else 0.0


class _DirectionContext:
    """Precomputed per-direction query data shared by all candidates with
    the same anchor position ``iq``."""

    __slots__ = ("query_part", "ins_row", "ins_prefix", "trie")

    def __init__(
        self, query_part: Sequence[int], costs: CostModel, numpy_backend: bool
    ) -> None:
        self.query_part = tuple(query_part)
        self.ins_row = [costs.ins(q) for q in self.query_part]
        root_column: Sequence[float] = [0.0]
        for c in self.ins_row:
            root_column.append(root_column[-1] + c)  # type: ignore[attr-defined]
        self.ins_prefix: Optional[np.ndarray] = None
        if numpy_backend:
            self.ins_prefix = np.asarray(root_column, dtype=np.float64)
            root_column = self.ins_prefix
        self.trie = VerificationTrie(root_column)


class Verifier:
    """Verifies candidates for one query, accumulating matches and stats.

    Parameters
    ----------
    symbols_of:
        Callable mapping a trajectory id to its symbol string (the dataset's
        ``symbols`` method).
    query / costs / tau:
        The query string, cost model, and similarity threshold.
    use_trie:
        Cache DP columns in bidirectional tries (§5.2).  Disabling recomputes
        every column (OSF-BT -> OSF with plain local verification).
    early_termination:
        Stop extending a direction once the column minimum reaches the
        budget (§5.1).  Disabling scans to the trajectory ends.
    cancel:
        Optional cooperative cancellation token (anything with a
        ``cancelled() -> bool`` method, e.g.
        :class:`~repro.core.cancellation.CancelToken`).  Polled once per
        candidate in :meth:`verify_all`, so expired work stops within one
        verification-loop iteration instead of running to completion.
    """

    def __init__(
        self,
        symbols_of,
        query: Sequence[int],
        costs: CostModel,
        tau: float,
        *,
        use_trie: bool = True,
        early_termination: bool = True,
        dp_backend: str = "python",
        cancel=None,
    ) -> None:
        if dp_backend not in ("python", "numpy"):
            raise QueryError(f"unknown dp_backend {dp_backend!r}")
        self._symbols_of = symbols_of
        self._query = tuple(query)
        self._costs = costs
        self._tau = tau
        self._use_trie = use_trie
        self._early_termination = early_termination
        self._cancel = cancel
        self._numpy = dp_backend == "numpy"
        # One context per (query position, direction); built lazily since
        # only tau-subsequence positions are anchors (2|Q'| tries, §5.2).
        self._contexts: Dict[Tuple[int, str], _DirectionContext] = {}
        self.stats = VerificationStats()

    # -- Algorithm 3: drive all candidates ---------------------------------

    def verify_all(self, candidates: Sequence[Candidate], matches: MatchSet) -> None:
        """Algorithm 3: verify every candidate into ``matches``.

        Polls the cancellation token between candidates, so a cancelled or
        deadline-expired query raises
        :class:`~repro.exceptions.QueryCancelledError` within one loop
        iteration instead of verifying the remaining candidates.
        """
        cancel = self._cancel
        for cand in candidates:
            if cancel is not None and cancel.cancelled():
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} of "
                    f"{len(candidates)} candidates"
                )
            self.verify_candidate(cand, matches)

    # -- Algorithm 4 --------------------------------------------------------

    def verify_candidate(self, candidate: Candidate, matches: MatchSet) -> None:
        """Emit every match of Definition 3 anchored at this candidate."""
        tid, j, iq = candidate
        data = self._symbols_of(tid)
        self.stats.candidates += 1
        self.stats.sw_columns += len(data)
        anchor_cost = self._costs.sub(self._query[iq], data[j])
        budget = self._tau - anchor_cost
        if budget <= 0:
            return
        backward = self._context(iq, "b")
        forward = self._context(iq, "f")
        # Backward part: both strings reversed (WED is invariant under
        # simultaneous reversal because costs are position-independent).
        eb = self._all_prefix_wed(
            _Reversed(data, j), backward, budget
        )
        ef = self._all_prefix_wed(
            _Suffix(data, j + 1), forward, budget
        )
        # Combine: match P[j-kb .. j+kf] for every pair under budget.
        for kb, cost_b in enumerate(eb):
            remaining = budget - cost_b
            if remaining <= 0:
                continue
            for kf, cost_f in enumerate(ef):
                if cost_f < remaining:
                    matches.add(tid, j - kb, j + kf, anchor_cost + cost_b + cost_f)
                    self.stats.emitted += 1

    def _context(self, iq: int, direction: str) -> _DirectionContext:
        key = (iq, direction)
        ctx = self._contexts.get(key)
        if ctx is None:
            if direction == "b":
                part = tuple(reversed(self._query[:iq]))
            else:
                part = self._query[iq + 1 :]
            ctx = _DirectionContext(part, self._costs, self._numpy)
            self._contexts[key] = ctx
        return ctx

    # -- Algorithm 5: AllPrefixWED ------------------------------------------

    def _all_prefix_wed(
        self,
        data_part: Sequence[int],
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """``E[k] = wed(data_part[:k], ctx.query_part)`` for growing ``k``.

        Stops early once the column minimum reaches ``budget`` (the stopped
        column's E value could only be >= budget, so nothing is lost).
        ``E[0]`` is the cost of inserting the whole query part.
        """
        node: TrieNode = ctx.trie.root
        query_part = ctx.query_part
        out: List[float] = [node.column[-1]]
        if self._early_termination and node.column_min >= budget:
            return out
        costs = self._costs
        ins_row = ctx.ins_row
        nq = len(query_part)
        for k in range(len(data_part)):
            symbol = data_part[k]
            self.stats.visited_columns += 1
            child = node.find_child(symbol) if self._use_trie else None
            if child is None:
                if self._numpy:
                    column: Sequence[float] = step_dp_numpy(
                        np.asarray(costs.sub_row(symbol, query_part)),
                        costs.delete(symbol),
                        ctx.ins_prefix,  # type: ignore[arg-type]
                        node.column,  # type: ignore[arg-type]
                    )
                else:
                    column = self._step_dp(
                        symbol, query_part, ins_row, node.column, nq
                    )
                self.stats.computed_columns += 1
                if self._use_trie:
                    child = node.create_child(symbol, column)
                else:
                    child = TrieNode(column)
            node = child
            out.append(node.column[-1])
            if self._early_termination and node.column_min >= budget:
                break
        return out

    # -- Algorithm 6: StepDP -------------------------------------------------

    def _step_dp(
        self,
        symbol: int,
        query_part: Sequence[int],
        ins_row: Sequence[float],
        prev: Sequence[float],
        nq: int,
    ) -> List[float]:
        costs = self._costs
        sub_row = costs.sub_row(symbol, query_part)
        dele = costs.delete(symbol)
        column = [prev[0] + dele]
        for j in range(nq):
            best = prev[j] + sub_row[j]
            via_del = prev[j + 1] + dele
            if via_del < best:
                best = via_del
            via_ins = column[j] + ins_row[j]
            if via_ins < best:
                best = via_ins
            column.append(best)
        return column

    def trie_node_count(self) -> int:
        """Total cached columns across all live tries."""
        return sum(ctx.trie.node_count() for ctx in self._contexts.values())


class _Reversed:
    """Lazy reversed view of ``seq[:end]`` (avoids copying long prefixes)."""

    __slots__ = ("_seq", "_end")

    def __init__(self, seq: Sequence[int], end: int) -> None:
        self._seq = seq
        self._end = end  # number of elements, reading backwards from end-1

    def __len__(self) -> int:
        return self._end

    def __getitem__(self, k: int) -> int:
        return self._seq[self._end - 1 - k]


class _Suffix:
    """Lazy view of ``seq[start:]``."""

    __slots__ = ("_seq", "_start")

    def __init__(self, seq: Sequence[int], start: int) -> None:
        self._seq = seq
        self._start = start

    def __len__(self) -> int:
        return len(self._seq) - self._start

    def __getitem__(self, k: int) -> int:
        return self._seq[self._start + k]
