"""Candidate verification (§5, Algorithms 3–6).

Given a candidate ``(id, j, iq)`` — trajectory ``id`` contains, at position
``j``, a substitution neighbor of the query symbol at position ``iq`` — we
must report every subtrajectory ``P[s..t]`` with ``s <= j <= t`` and
``wed(P[s..t], Q) < tau``.  Lemma 1 licenses the decomposition

    wed(P[s..t], Q) = wed(P[s..j-1], Q[0..iq-1])   (backward part)
                    + sub(P[j], Q[iq])             (anchor)
                    + wed(P[j+1..t], Q[iq+1..])    (forward part)

for at least one candidate of every true match, so verifying all candidates
bidirectionally finds all matches; for the remaining candidates the sum is
an upper bound on the true WED, hence no false positives either.

Contract: Lemma 1 presupposes that the candidates come from a valid
tau-subsequence (``c(Q') >= tau``).  Only then is the minimum decomposition
over anchors *equal* to the true WED for every match; with an arbitrary
candidate set the reported distances are sound upper bounds.  The engine
never verifies outside this contract — when no tau-subsequence exists it
falls back to an exact scan.

Three optimizations, individually switchable for ablation:

- *local verification*: DP runs outward from ``j`` only while the running
  prefix lower bound (Eq. 11 — the column minimum) stays below the budget;
- *bidirectional tries*: DP columns are cached per (direction, ``iq``)
  across candidates sharing data prefixes (§5.2);
- the anchor tightens the budget to ``tau' = tau - sub(Q[iq], P[j])``.

Two DP backends compute the columns, both evaluating the repo-wide
prefix-min insert chain (see :mod:`repro.distance.wed`) so their floats
are bit-identical:

- ``dp_backend="numpy"`` is *array-native end to end* with
  **anchor-grouped batch verification** over *slot-native* tries
  (:class:`~repro.core.trie.VerificationTrie` with ``arena=True``):
  columns live as rows of one growable per-trie matrix, structure lives
  in one ``(parent_slot, symbol) -> child_slot`` dict, and the two
  scalars every visit reads (column min / column last) live in parallel
  vectors plus plain-float mirrors.  Candidates are deduped, grouped by
  anchor position ``iq``, and each group's states advance through cached
  columns **level-synchronously** — one trie level per round, the whole
  frontier's mins/lasts gathered with vectorized ``np.take`` — which is
  what makes *warm* tries (served across queries by the engine's
  :class:`~repro.core.trie.TrieCache`) nearly free to rewalk: a fully
  cached query never launches a DP kernel at all.  At the cold frontier,
  states park per-``(slot, symbol)`` miss (rendezvous-deduplicated) and
  each round's distinct misses become one :func:`step_dp_batch` call
  writing straight into freshly reserved arena rows; a state that was the
  *sole* waiter on its miss has provably diverged from every other state
  and advances as a slot-indexed **virgin chain** — no rendezvous, no
  walker round-trip — batched into the same kernel calls.
- ``dp_backend="python"`` is the historical pure-Python per-cell loop,
  kept as the ablation baseline
  (``benchmarks/bench_verification_hotpath.py`` tracks the gap).

``dp_backend="auto"`` (the engine default) resolves per query via
:func:`choose_dp_backend`: the pure-Python loop for short queries over
models with vectorizable (hence cheap) substitution rows — the one regime
where kernel-launch overhead loses to plain Python — and the array-native
backend everywhere else.  Safe precisely because the backends are
bit-identical.

Batching, level-synchrony, and cross-query trie warmth all preserve the
sequential semantics exactly: which columns get computed *by this query*,
every column's floats, each candidate's early-termination point, and the
UPR/CMR counters are order- and schedule-independent — the two backends,
the batched vs. single-candidate numpy paths, and cold vs. warm caches
agree on results bit for bit (warm caches lower ``computed_columns`` and
nothing else: a cached column has the same floats it would be recomputed
with).

Shared tries (the cross-query cache, and shard engines sharing one cache)
are walked by concurrent server threads: readers are lock-free, and each
round of misses is resolved under the trie's writer lock with
publish-after-write ordering (see :mod:`repro.core.trie`), re-checking
parked misses against edges another thread may have published meanwhile —
so concurrent walks never tear a column and at worst recount a column one
thread computed as the other thread's cache hit.

The :class:`VerificationStats` counters implement the §6.4 metrics: UPR
(columns surviving early termination vs. a full Smith–Waterman pass) and
CMR (columns actually computed vs. columns visited).  They are
backend-identical by design; the ndarray-materialization count, which is
*not* (the python backend allocates none), is reported separately via
:attr:`Verifier.dp_array_allocations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import MatchSet
from repro.core.trie import TrieCacheEntry, TrieNode, VerificationTrie
from repro.distance.costs import CostModel, SubstitutionMatrix
from repro.exceptions import QueryCancelledError, QueryError

__all__ = [
    "AUTO_PYTHON_MAX_QUERY",
    "Candidate",
    "VerificationStats",
    "Verifier",
    "choose_dp_backend",
    "step_dp_batch",
    "step_dp_numpy",
]

#: longest query the auto backend still routes to the pure-Python DP
#: (only on cost models with vectorizable rows); above this the
#: array-native kernels win even on unit-cost models (ROADMAP: per-column
#: numpy kernels cannot win at |Q| <~ 15 on unit-cost models).
AUTO_PYTHON_MAX_QUERY = 15


def choose_dp_backend(query_length: int, costs: CostModel) -> str:
    """Resolve ``dp_backend="auto"`` for one query.

    Picks ``"python"`` only where it measurably wins (see
    ``BENCH_verification.json``): short queries (``<=
    AUTO_PYTHON_MAX_QUERY``) over models whose substitution rows are
    vectorizable — i.e. cheap — so the per-column numpy launch overhead
    cannot amortize.  Everything else (long queries, or expensive rows
    that the array-native path computes once per symbol instead of once
    per column) goes to ``"numpy"``.  Both backends are bit-identical,
    so the choice changes throughput, never answers.
    """
    if query_length <= AUTO_PYTHON_MAX_QUERY and costs.vectorized_rows():
        return "python"
    return "numpy"


def step_dp_numpy(
    sub_row: np.ndarray,
    delete_cost: float,
    ins_prefix: np.ndarray,
    prev: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized StepDP (Algorithm 6) in the prefix-min convention.

    ``C[j] = min(prev[j-1] + sub[j-1], prev[j] + del)`` (``C[0] = prev[0] +
    del``) vectorizes directly; the insert chain is evaluated as ``B[j] =
    min(C[j], P[j] + min over i < j of (C[i] - P[i]))`` with one
    ``minimum.accumulate`` pass — the exact evaluation order every DP step
    in this repo uses (see :mod:`repro.distance.wed`), so the result is
    *bit-identical* to the pure-Python backend, not merely close: the
    strict ``< tau`` match semantics see the same floats everywhere.

    ``sub_row`` and ``prev`` may be non-contiguous views; the inputs are
    never mutated.  ``out``, when given, receives the column (the arena
    path passes a reserved trie row, so no per-column array is created);
    it must not alias any input.  The operation sequence is identical
    either way — ``out`` changes the destination, never the floats.
    """
    c = prev + delete_cost if out is None else np.add(prev, delete_cost, out=out)
    np.minimum(c[1:], prev[:-1] + sub_row, out=c[1:])
    d = c - ins_prefix
    np.minimum.accumulate(d, out=d)
    np.minimum(c[1:], ins_prefix[1:] + d[:-1], out=c[1:])
    return c


def step_dp_batch(
    sub_rows: np.ndarray,
    delete_costs: np.ndarray,
    ins_prefix: np.ndarray,
    prev_columns: np.ndarray,
    out: Optional[np.ndarray] = None,
    work: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """:func:`step_dp_numpy` over ``L`` independent columns at once.

    ``prev_columns`` is ``(L, n+1)``, ``sub_rows`` ``(L, n)``,
    ``delete_costs`` ``(L,)``; returns the ``(L, n+1)`` next columns.  Each
    row runs the identical operation sequence as the single-column kernel,
    so batching changes throughput, never values.  ``out``, when given,
    receives the columns — the arena path passes a contiguous range of
    freshly reserved trie rows, so a whole round of cache misses is
    computed without allocating a single column array — and ``work`` (an
    ``(L, n)`` and an ``(L, n+1)`` scratch buffer, contiguous, aliasing
    nothing) absorbs the kernel's intermediate results, making the whole
    call buffer-allocation-free.  This is what makes anchor-grouped
    verification fast: one launch sequence per round of misses instead of
    per column, writing straight into the cache with the allocator idle.
    """
    if out is None:
        c = prev_columns + delete_costs[:, None]
    else:
        c = np.add(prev_columns, delete_costs[:, None], out=out)
    if work is None:
        np.minimum(c[:, 1:], prev_columns[:, :-1] + sub_rows, out=c[:, 1:])
        d = c - ins_prefix
        np.minimum.accumulate(d, axis=1, out=d)
        np.minimum(c[:, 1:], ins_prefix[1:] + d[:, :-1], out=c[:, 1:])
        return c
    work_sums, work_d = work
    sums = np.add(prev_columns[:, :-1], sub_rows, out=work_sums)
    np.minimum(c[:, 1:], sums, out=c[:, 1:])
    d = np.subtract(c, ins_prefix, out=work_d)
    np.minimum.accumulate(d, axis=1, out=d)
    # work_sums' first use is fully consumed by the minimum above, so it
    # is free to hold the insert-chain sums; the operation sequence
    # (hence every float) is identical to the allocating branch.
    chain = np.add(ins_prefix[1:], d[:, :-1], out=work_sums)
    np.minimum(c[:, 1:], chain, out=c[:, 1:])
    return c


Candidate = Tuple[int, int, int]  # (trajectory id, position j, query position iq)

#: symbols materialized per tolist() chunk by the batched walker — small
#: enough that an immediately-terminated candidate on a long trajectory
#: wastes almost nothing, large enough to amortize the slice machinery.
_SYMBOL_CHUNK = 64

#: ndarray buffers one batched StepDP resolution still materializes per
#: round after the scratch rework: the index arrays behind the parent-row
#: and substitution-row/delete gathers (np.take converts the slot lists).
#: Counted (not avoided) because they are per *round*, not per column;
#: the kernel itself runs buffer-allocation-free via the context's
#: work/mins scratch.
_GROUP_TEMP_ARRAYS = 3

#: same accounting for a single-column StepDP call (kernel temps only).
_SINGLE_TEMP_ARRAYS = 3

#: ndarray temporaries one level-synchronous gather materializes: the two
#: index arrays behind the min/last np.take calls plus their two results.
_GATHER_TEMP_ARRAYS = 4

#: frontier size below which the level-synchronous walker reads the
#: plain-float min/last mirrors instead of launching np.take gathers
#: (kernel dispatch overhead loses to list indexing on tiny frontiers).
_GATHER_MIN = 16


@dataclass(slots=True)
class VerificationStats:
    """Counters backing the UPR / CMR / TUR metrics of §6.4."""

    candidates: int = 0
    #: columns a full SW pass would compute: |P| per candidate (denominator of UPR)
    sw_columns: int = 0
    #: columns visited before early termination fired (numerator of UPR)
    visited_columns: int = 0
    #: columns actually computed by StepDP, i.e. trie cache misses
    computed_columns: int = 0
    #: matches emitted (pre-deduplication)
    emitted: int = 0
    #: exact (id, j, iq) repeats dropped by ``verify_all`` before verification
    duplicate_candidates: int = 0

    @property
    def unpruned_position_rate(self) -> float:
        """UPR: fraction of SW's DP columns that local verification visits."""
        return self.visited_columns / self.sw_columns if self.sw_columns else 0.0

    @property
    def cache_miss_rate(self) -> float:
        """CMR: fraction of visited columns that needed a StepDP call."""
        return (
            self.computed_columns / self.visited_columns
            if self.visited_columns
            else 0.0
        )

    @property
    def total_unpruned_rate(self) -> float:
        """TUR = UPR x CMR: StepDP calls relative to a full SW pass."""
        return self.computed_columns / self.sw_columns if self.sw_columns else 0.0


class _DirectionContext:
    """Precomputed per-direction query data shared by all candidates with
    the same anchor position ``iq``.

    ``ins_prefix`` is the cumulative insertion-cost prefix of the query
    part — the trie's root column and the ``P`` of the prefix-min DP
    convention (an ndarray on the numpy backend, a list on the python
    one, summed left-to-right either way so both hold the same floats; a
    *warm* trie served by the engine's TrieCache holds the bit-identical
    root column because the computation is deterministic).  ``rows``
    (numpy only) is the matrix-owned
    :class:`~repro.distance.costs.DirectionRows` cache mapping a data
    symbol to this direction's contiguous substitution-row slice and its
    deletion cost; because it lives inside the (engine-LRU-cached)
    SubstitutionMatrix, repeated queries reuse the copies across verifier
    instances.  ``row_slice`` maps a *full-query* row to this direction's
    part: ``slice(iq+1, None)`` forward, ``slice(iq-1, None, -1)``
    backward (the reversed prefix).

    The context is per-verifier (it owns the batched walker's scratch
    buffers — parent columns, substitution rows, deletion costs — grown
    geometrically and reused round after round); only the *trie* may be
    shared: with a :class:`~repro.core.trie.TrieCacheEntry` the
    direction's arena-backed trie comes warm from the engine's
    cross-query cache, otherwise a fresh one is built.  ``use_trie=False``
    (the ablation) builds no arena at all — just a detached root
    :class:`~repro.core.trie.TrieNode`, since nothing is cached.
    """

    __slots__ = (
        "query_part",
        "ins_prefix",
        "row_slice",
        "rows",
        "trie",
        "root",
        "width",
        "scratch_allocations",
        "trie_growth",
        "_parents",
        "_subs",
        "_dels",
        "_work_a",
        "_work_b",
        "_mins",
    )

    def __init__(
        self,
        query: Sequence[int],
        iq: int,
        direction: str,
        costs: CostModel,
        *,
        numpy_backend: bool,
        use_trie: bool = True,
        ins_vec: Optional[np.ndarray] = None,
        matrix: Optional[SubstitutionMatrix] = None,
        entry: Optional[TrieCacheEntry] = None,
    ) -> None:
        if direction == "b":
            # Backward part: both strings reversed (WED is invariant under
            # simultaneous reversal because costs are position-independent).
            self.query_part: Tuple[int, ...] = tuple(reversed(query[:iq]))
            self.row_slice = slice(iq - 1, None, -1) if iq > 0 else slice(0, 0)
        else:
            self.query_part = tuple(query[iq + 1 :])
            self.row_slice = slice(iq + 1, None)
        self.width = len(self.query_part) + 1
        self.rows = None
        self.root: Optional[TrieNode] = None
        self.trie: Optional[VerificationTrie] = None
        self.scratch_allocations = 0
        #: arena ndarray (re)allocations THIS context performed — trie
        #: creation plus reserve-driven growth inside our own locked
        #: rounds.  Accumulated locally rather than read off the (maybe
        #: shared) trie, so concurrent verifiers growing the same warm
        #: trie never double-count each other's work.
        self.trie_growth = 0
        self._parents: Optional[np.ndarray] = None
        self._subs: Optional[np.ndarray] = None
        self._dels: Optional[np.ndarray] = None
        self._work_a: Optional[np.ndarray] = None
        self._work_b: Optional[np.ndarray] = None
        self._mins: Optional[np.ndarray] = None
        if numpy_backend:
            ins_part = ins_vec[self.row_slice]
            prefix = np.empty(self.width, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(ins_part, out=prefix[1:])
            self.ins_prefix: Sequence[float] = prefix
            self.rows = matrix.direction_rows((iq, direction), self.row_slice)
            self.scratch_allocations += 1  # the prefix itself
            if use_trie:
                if entry is not None:
                    # Cross-query warm trie: concurrent first-touchers
                    # converge on one instance; all later queries of this
                    # (query, model) start with these columns cached.
                    # Creation is charged to the creating query only (the
                    # factory runs at most once per entry).
                    def _build() -> VerificationTrie:
                        built = VerificationTrie(prefix, arena=True)
                        self.trie_growth += built.allocations
                        return built

                    self.trie = entry.trie((iq, direction), _build)
                else:
                    self.trie = VerificationTrie(prefix, arena=True)
                    self.trie_growth += self.trie.allocations
            else:
                self.root = TrieNode(prefix)
        else:
            prefix_list: List[float] = [0.0]
            for q in self.query_part:
                prefix_list.append(prefix_list[-1] + costs.ins(q))
            self.ins_prefix = prefix_list
            # The root column wed(eps, part prefix) IS the insertion prefix.
            self.trie = VerificationTrie(prefix_list)

    def scratch(
        self, count: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Reusable batch buffers, first ``count`` rows each (grown
        geometrically, never shrunk): parent columns, substitution rows,
        deletion costs, the two kernel work buffers, and the per-column
        minimum vector."""
        parents = self._parents
        if parents is None or parents.shape[0] < count:
            capacity = 16 if parents is None else parents.shape[0]
            while capacity < count:
                capacity *= 2
            self._parents = parents = np.empty(
                (capacity, self.width), dtype=np.float64
            )
            self._subs = np.empty((capacity, self.width - 1), dtype=np.float64)
            self._dels = np.empty(capacity, dtype=np.float64)
            self._work_a = np.empty((capacity, self.width - 1), dtype=np.float64)
            self._work_b = np.empty((capacity, self.width), dtype=np.float64)
            self._mins = np.empty(capacity, dtype=np.float64)
            self.scratch_allocations += 6
        return (
            parents[:count],
            self._subs[:count],
            self._dels[:count],
            self._work_a[:count],
            self._work_b[:count],
            self._mins[:count],
        )

    @property
    def arena_allocations(self) -> int:
        """Arena + scratch ndarray allocations this context has made (a
        warm shared trie's pre-existing allocations — and any growth a
        *concurrent* verifier performs on it — are excluded)."""
        return self.scratch_allocations + self.trie_growth


class Verifier:
    """Verifies candidates for one query, accumulating matches and stats.

    Parameters
    ----------
    symbols_of:
        Callable mapping a trajectory id to its symbol string (the dataset's
        ``symbols`` method).
    query / costs / tau:
        The query string, cost model, and similarity threshold.
    use_trie:
        Cache DP columns in bidirectional tries (§5.2).  Disabling recomputes
        every column (OSF-BT -> OSF with plain local verification).
    early_termination:
        Stop extending a direction once the column minimum reaches the
        budget (§5.1).  Disabling scans to the trajectory ends.
    dp_backend:
        ``"auto"`` (resolved per query via :func:`choose_dp_backend`),
        ``"numpy"`` — anchor-grouped batch verification over the
        array-native column kernels with slot-native arena tries; or
        ``"python"`` — the pure-Python per-cell loop, kept for ablation.
        Results are bit-identical.
    symbols_array_of:
        Callable mapping a trajectory id to its ``np.int32`` symbol array
        (the dataset's ``symbols_array``).  Used by the numpy backend only;
        when omitted, arrays are converted from ``symbols_of`` and memoized
        per verifier.
    anchors:
        Symbols that can appear at candidate anchor positions (the union of
        the tau-subsequence's substitution neighborhoods).  Their
        substitution rows are precomputed densely when this verifier builds
        its own :class:`~repro.distance.costs.SubstitutionMatrix`; ignored
        when ``matrix`` is supplied.
    matrix:
        A prebuilt :class:`~repro.distance.costs.SubstitutionMatrix` for
        this exact query — the engine passes its LRU-cached instance so
        repeated queries skip substitution-row computation entirely.  Must
        have been built for the same query string.
    trie_entry:
        A :class:`~repro.core.trie.TrieCacheEntry` holding this query's
        shared direction tries — the engine passes its TrieCache entry so
        repeated queries (tau and time-window variations included) start
        verification with warm columns.  Numpy backend with
        ``use_trie=True`` only; the tries may be walked by concurrent
        verifiers (see the module docstring's concurrency notes).
    cancel:
        Optional cooperative cancellation token (anything with a
        ``cancelled() -> bool`` method, e.g.
        :class:`~repro.core.cancellation.CancelToken`).  Polled once per
        candidate (python backend) or per group/walk round (numpy
        backend) in :meth:`verify_all`, so expired work stops within one
        verification-loop iteration instead of running to completion.
    """

    def __init__(
        self,
        symbols_of,
        query: Sequence[int],
        costs: CostModel,
        tau: float,
        *,
        use_trie: bool = True,
        early_termination: bool = True,
        dp_backend: str = "auto",
        symbols_array_of=None,
        anchors: Optional[Sequence[int]] = None,
        matrix: Optional[SubstitutionMatrix] = None,
        trie_entry: Optional[TrieCacheEntry] = None,
        cancel=None,
    ) -> None:
        if dp_backend not in ("python", "numpy", "auto"):
            raise QueryError(f"unknown dp_backend {dp_backend!r}")
        if dp_backend == "auto":
            dp_backend = choose_dp_backend(len(query), costs)
        self._symbols_of = symbols_of
        self._query = tuple(query)
        self._costs = costs
        self._tau = tau
        self._use_trie = use_trie
        self._early_termination = early_termination
        self._cancel = cancel
        self._numpy = dp_backend == "numpy"
        self.dp_backend = dp_backend
        self._matrix: Optional[SubstitutionMatrix] = None
        self._ins_vec: Optional[np.ndarray] = None
        self._trie_entry = trie_entry if (self._numpy and use_trie) else None
        #: ndarrays materialized on the verification path (arena/scratch
        #: growths plus per-round kernel temporaries) — deliberately NOT a
        #: VerificationStats field, because the python backend allocates
        #: none and the stats are pinned backend-identical.
        self._allocs = 0
        #: DP kernel launches (batched rounds + single-column steps) —
        #: the "how many times did we enter numpy" trace attribute.
        #: Like ``_allocs``, kept out of VerificationStats: the python
        #: backend launches no kernels and the stats are pinned
        #: backend-identical.
        self._dp_rounds = 0
        if self._numpy:
            if matrix is not None:
                if matrix.query != self._query:
                    raise QueryError(
                        "substitution matrix was built for a different query"
                    )
                self._matrix = matrix
            else:
                self._matrix = costs.sub_matrix(self._query, anchors=anchors)
                self._allocs += 1 + (1 if anchors else 0)
            self._ins_vec = costs.ins_vector(self._query)
            self._allocs += 1
            if symbols_array_of is None:
                symbols_array_of = self._converting_array_accessor()
        self._symbols_array_of = symbols_array_of
        # One context per (query position, direction); built lazily since
        # only tau-subsequence positions are anchors (2|Q'| tries, §5.2).
        self._contexts: Dict[Tuple[int, str], _DirectionContext] = {}
        self.stats = VerificationStats()

    def _converting_array_accessor(self):
        """Fallback ``symbols_array_of``: convert + memoize per verifier."""
        cache: Dict[int, np.ndarray] = {}
        symbols_of = self._symbols_of

        def accessor(tid: int) -> np.ndarray:
            arr = cache.get(tid)
            if arr is None:
                arr = np.asarray(symbols_of(tid), dtype=np.int32)
                cache[tid] = arr
            return arr

        return accessor

    @property
    def dp_array_allocations(self) -> int:
        """ndarrays materialized verifying so far: per-query setup, arena
        and scratch (re)allocations, and per-round kernel temporaries.

        The pre-arena layout allocated at least one ndarray per *computed
        column* on top of the same per-round temporaries, so the
        benchmark's allocation-reduction metric compares
        ``computed_columns + dp_array_allocations`` (the old cost) against
        ``dp_array_allocations`` (the new one).  With a warm shared trie
        only this query's growth is counted, not the cached history."""
        total = self._allocs
        for ctx in self._contexts.values():
            total += ctx.arena_allocations
        return total

    @property
    def dp_rounds(self) -> int:
        """DP kernel launches so far: batched rounds plus single-column
        steps.  A fully-warm rewalk launches zero; the engine copies the
        count into ``QueryResult.dp_rounds`` as a trace attribute.  Kept
        out of :class:`VerificationStats` (backend-identical by
        contract): the python backend launches no kernels."""
        return self._dp_rounds

    # -- Algorithm 3: drive all candidates ---------------------------------

    def verify_all(self, candidates: Sequence[Candidate], matches: MatchSet) -> None:
        """Algorithm 3: verify every candidate into ``matches``.

        Exact ``(id, j, iq)`` repeats (possible when repeated query symbols
        or an external caller supply overlapping candidate sets) are
        verified once and counted in ``stats.duplicate_candidates``; the
        survivors are ordered by anchor position ``iq``, then trajectory,
        so consecutive candidates share direction contexts, trie roots, and
        symbol arrays — and, on the numpy backend, each ``iq`` group is
        verified as one level-synchronous batch over the shared tries.
        Neither transformation changes the result set or the column
        counters — trie cache contents and per-candidate visit counts are
        order-independent.

        Polls the cancellation token between candidates (python backend)
        or between anchor groups and walk rounds (numpy backend), so a
        cancelled or deadline-expired query raises
        :class:`~repro.exceptions.QueryCancelledError` within one loop
        iteration instead of verifying the remaining candidates.
        """
        seen = set()
        unique: List[Candidate] = []
        for cand in candidates:
            if cand in seen:
                self.stats.duplicate_candidates += 1
            else:
                seen.add(cand)
                unique.append(cand)
        unique.sort(key=lambda c: (c[2], c[0], c[1]))
        cancel = self._cancel
        if self._numpy:
            total = len(unique)
            start = 0
            while start < total:
                if cancel is not None and cancel.cancelled():
                    raise QueryCancelledError(
                        f"verification cancelled after {self.stats.candidates} "
                        f"of {len(candidates)} candidates"
                    )
                iq = unique[start][2]
                end = start
                while end < total and unique[end][2] == iq:
                    end += 1
                self._verify_group(iq, unique[start:end], matches)
                start = end
            return
        for cand in unique:
            if cancel is not None and cancel.cancelled():
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} of "
                    f"{len(candidates)} candidates"
                )
            self.verify_candidate(cand, matches)

    # -- Algorithm 4 --------------------------------------------------------

    def verify_candidate(self, candidate: Candidate, matches: MatchSet) -> None:
        """Emit every match of Definition 3 anchored at this candidate.

        Single-candidate entry point (the batched group path in
        :meth:`verify_all` produces identical results and counters)."""
        tid, j, iq = candidate
        self.stats.candidates += 1
        if self._numpy:
            data = self._symbols_array_of(tid)
            self.stats.sw_columns += len(data)
            # The anchor cost is the iq-th entry of the symbol's cached
            # full-query substitution row (sub is symmetric — §2.2.1).
            anchor_cost = float(self._matrix.row(data.item(j))[iq])
            budget = self._tau - anchor_cost
            if budget <= 0:
                return
            backward = self._context(iq, "b")
            forward = self._context(iq, "f")
            eb = self._all_prefix_wed_array(data[:j][::-1], backward, budget)
            ef = self._all_prefix_wed_array(data[j + 1 :], forward, budget)
        else:
            data = self._symbols_of(tid)
            self.stats.sw_columns += len(data)
            anchor_cost = self._costs.sub(self._query[iq], data[j])
            budget = self._tau - anchor_cost
            if budget <= 0:
                return
            backward = self._context(iq, "b")
            forward = self._context(iq, "f")
            eb = self._all_prefix_wed(_Reversed(data, j), backward, budget)
            ef = self._all_prefix_wed(_Suffix(data, j + 1), forward, budget)
        self._combine(tid, j, anchor_cost, budget, eb, ef, matches)

    def _combine(
        self,
        tid: int,
        j: int,
        anchor_cost: float,
        budget: float,
        eb: List[float],
        ef: List[float],
        matches: MatchSet,
    ) -> None:
        """Combine: match P[j-kb .. j+kf] for every pair under budget."""
        emitted = 0
        add = matches.add
        for kb, cost_b in enumerate(eb):
            remaining = budget - cost_b
            if remaining <= 0:
                continue
            base = anchor_cost + cost_b
            start = j - kb
            for kf, cost_f in enumerate(ef):
                if cost_f < remaining:
                    add(tid, start, j + kf, base + cost_f)
                    emitted += 1
        self.stats.emitted += emitted

    # -- anchor-grouped batch verification (numpy backend) ------------------

    def _verify_group(
        self, iq: int, group: Sequence[Candidate], matches: MatchSet
    ) -> None:
        """Verify all candidates sharing anchor position ``iq`` as one
        level-synchronous batch over the shared direction tries."""
        stats = self.stats
        matrix = self._matrix
        tau = self._tau
        items: List[Tuple[int, int, float, float]] = []
        views_b: List[np.ndarray] = []
        views_f: List[np.ndarray] = []
        budgets: List[float] = []
        for tid, j, _ in group:
            data = self._symbols_array_of(tid)
            stats.candidates += 1
            stats.sw_columns += len(data)
            anchor_cost = float(matrix.row(data.item(j))[iq])
            budget = tau - anchor_cost
            if budget <= 0:
                continue
            items.append((tid, j, anchor_cost, budget))
            views_b.append(data[:j][::-1])
            views_f.append(data[j + 1 :])
            budgets.append(budget)
        if not items:
            return
        backward = self._context(iq, "b")
        forward = self._context(iq, "f")
        ebs = self._batched_all_prefix_wed(views_b, budgets, backward)
        efs = self._batched_all_prefix_wed(views_f, budgets, forward)
        for (tid, j, anchor_cost, budget), eb, ef in zip(items, ebs, efs):
            self._combine(tid, j, anchor_cost, budget, eb, ef, matches)

    def _batched_all_prefix_wed(
        self,
        views: List[np.ndarray],
        budgets: List[float],
        ctx: _DirectionContext,
    ) -> List[List[float]]:
        """AllPrefixWED for many candidates over one shared slot-native
        trie, advanced level-synchronously.

        Rounds alternate two phases until every state terminates:

        1. **walk** (:meth:`_walk_level_sync`): all live states advance
           through cached columns in depth-lockstep — per round, each
           state's one ``(slot, symbol)`` edge lookup, then the whole
           frontier's column mins/lasts gathered with two vectorized
           ``np.take`` calls over the trie's scalar vectors.  On a warm
           (cross-query cached) trie this phase is the entire
           verification: no kernel ever launches.  A state whose edge is
           absent parks at the cold frontier, rendezvous-deduplicated per
           distinct ``(slot, symbol)`` miss;
        2. **resolve** (:meth:`_resolve_round`): the round's distinct
           misses — walker entries and virgin-chain steps together —
           become one :func:`step_dp_batch` call writing into freshly
           reserved arena rows, published under the trie's writer lock.

        A state that was the *sole* waiter on its miss has provably
        diverged from every other state in this walk — states sharing a
        prefix walk an identical frozen-trie path each round and
        therefore meet at the same first miss as co-waiters — so its
        future steps are guaranteed unshared misses: it advances as a
        slot-indexed **virgin chain**, skipping the walker and rendezvous
        entirely, batched into the same kernel calls.  Emitted E values,
        termination points, and every counter are identical to walking
        the candidates one at a time; batching, lockstep order, virgin
        routing, and cache warmth only change where time (not arithmetic)
        is spent — except that warm cache hits are, by definition, not
        recounted in ``computed_columns``.

        Without the trie (the ablation), every visit recomputes its
        column into detached per-node storage — see
        :meth:`_batched_detached`.
        """
        if not self._use_trie:
            return self._batched_detached(views, budgets, ctx)
        trie = ctx.trie
        root_last = trie.lasts_list[0]
        root_min = trie.mins_list[0]
        outs: List[List[float]] = [[root_last] for _ in views]
        early = self._early_termination
        cancel = self._cancel
        # One walk state per candidate still extending:
        # [slot, symbol list, out list, budget, k, len(view), view array].
        # Symbols are materialized into plain int lists *chunk by chunk*
        # (C-speed tolist of the zero-copy view, indexed per visit) so an
        # early-terminated candidate on a very long trajectory never pays
        # for symbols it will not reach.
        runnable: List[list] = []
        for view, budget, out in zip(views, budgets, outs):
            if early and root_min >= budget:
                continue
            n = len(view)
            if n:
                runnable.append(
                    [0, view[:_SYMBOL_CHUNK].tolist(), out, budget, 0, n, view]
                )
        computed = 0
        # Visited-column accounting is derived, not incremented: every
        # visit appends exactly one E value to its state's out list (hits
        # immediately, misses when their batch resolves), so the visit
        # count is the total out-list growth — one subtraction per state
        # instead of one counter bump per visited column.
        #
        # Parked misses.  The rendezvous for duplicate (slot, symbol)
        # misses within a round is ``pend_index`` — a round-local dict, so
        # the shared trie never sees half-born entries: ``edges`` gains a
        # key only when its column is already in the arena (and fully
        # written), which also means a failing batch (e.g. a cost model
        # raising mid-row) leaves the trie fully consistent with no
        # cleanup pass.
        pend_index: Dict[Tuple[int, int], int] = {}
        pend_pslots: List[int] = []
        pend_syms: List[int] = []
        pend_rowslots: List[int] = []
        pend_waiters: List[List[list]] = []
        # Virgin chains: parallel lists of (state, parent arena slot,
        # next symbol, substitution-row slot).
        v_states: List[list] = []
        v_pslots: List[int] = []
        v_syms: List[int] = []
        v_rowslots: List[int] = []
        while runnable or pend_pslots or v_states:
            if cancel is not None and cancel.cancelled():
                self.stats.visited_columns += sum(len(o) for o in outs) - len(outs)
                self.stats.computed_columns += computed
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} "
                    "candidates (mid-batch)"
                )
            if runnable:
                self._walk_level_sync(
                    ctx,
                    runnable,
                    pend_index,
                    pend_pslots,
                    pend_syms,
                    pend_rowslots,
                    pend_waiters,
                )
            if pend_pslots or v_states:
                nxt_v: Tuple[list, list, list, list] = ([], [], [], [])
                done, runnable = self._resolve_round(
                    ctx,
                    pend_pslots,
                    pend_syms,
                    pend_rowslots,
                    pend_waiters,
                    v_states,
                    v_pslots,
                    v_syms,
                    v_rowslots,
                    nxt_v,
                )
                computed += done
                v_states, v_pslots, v_syms, v_rowslots = nxt_v
                pend_index.clear()
                pend_pslots = []
                pend_syms = []
                pend_rowslots = []
                pend_waiters = []
            else:
                runnable = []
        self.stats.visited_columns += sum(len(o) for o in outs) - len(outs)
        self.stats.computed_columns += computed
        return outs

    def _walk_level_sync(
        self,
        ctx: _DirectionContext,
        states: List[list],
        pend_index: Dict[Tuple[int, int], int],
        pend_pslots: List[int],
        pend_syms: List[int],
        pend_rowslots: List[int],
        pend_waiters: List[List[list]],
    ) -> None:
        """Advance ``states`` through cached columns until every one has
        terminated or parked at a cache miss.

        While the frontier is wide (>= ``_GATHER_MIN`` live states — the
        warm-cache regime, where whole candidate groups walk cached
        levels together), states advance in depth-lockstep: one round
        per trie level, the round's edge lookups driven through
        ``map``/``zip`` at C speed and the frontier's column mins/lasts
        gathered with two vectorized ``np.take`` calls over the trie's
        parallel scalar vectors.  Once the frontier thins out, each
        remaining state runs to its miss in a tight scalar loop over the
        plain-float mirrors, where per-round batching overhead would
        dominate.  Both paths read the identical floats and park the
        identical misses — the trie is frozen during a walk phase, so
        the visit *interleaving* (lockstep vs run-to-miss) is the only
        difference, and nothing observes it.  Misses rendezvous per
        distinct ``(slot, symbol)`` in ``pend_index`` either way.
        """
        trie = ctx.trie
        edges_get = trie.edges.get
        mins_list = trie.mins_list
        lasts_list = trie.lasts_list
        rows = ctx.rows
        rows_index_get = rows.index.get
        rows_slot = rows.slot
        early = self._early_termination
        inf = float("inf")

        def park(st: list, slot: int, symbol: int) -> None:
            rendezvous = (slot, symbol)
            idx = pend_index.get(rendezvous)
            if idx is None:
                pend_index[rendezvous] = len(pend_pslots)
                pend_pslots.append(slot)
                pend_syms.append(symbol)
                # Dense substitution-row slot, resolved here (one inline
                # dict hit per distinct miss) so resolution can
                # bulk-gather.
                sslot = rows_index_get(symbol)
                if sslot is None:
                    sslot = rows_slot(symbol)
                pend_rowslots.append(sslot)
                pend_waiters.append([st])
            else:
                pend_waiters[idx].append(st)

        live = states
        while len(live) >= _GATHER_MIN:
            for st in live:
                view = st[1]
                if st[4] == len(view):
                    view.extend(st[6][len(view) : 2 * len(view) + 16].tolist())
            keys = [(st[0], st[1][st[4]]) for st in live]
            children = list(map(edges_get, keys))
            if None in children:
                hit_states: List[list] = []
                hit_slots: List[int] = []
                for st, key, child in zip(live, keys, children):
                    if child is None:
                        park(st, key[0], key[1])
                    else:
                        hit_states.append(st)
                        hit_slots.append(child)
                if not hit_states:
                    return
            else:
                hit_states = live
                hit_slots = children
            mins_l = np.take(trie.mins, hit_slots).tolist()
            lasts_l = np.take(trie.lasts, hit_slots).tolist()
            self._allocs += _GATHER_TEMP_ARRAYS
            nxt: List[list] = []
            for st, child, cmin, last in zip(hit_states, hit_slots, mins_l, lasts_l):
                st[2].append(last)
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[0] = child
                st[4] = k
                nxt.append(st)
            live = nxt
        for st in live:
            slot = st[0]
            view = st[1]
            out = st[2]
            k = st[4]
            n = st[5]
            append = out.append
            filled = len(view)
            # ``limit`` folds the early-termination flag out of the
            # per-visit condition (inf never fires).
            limit = st[3] if early else inf
            while True:
                if k == filled:
                    view.extend(st[6][filled : 2 * filled + 16].tolist())
                    filled = len(view)
                symbol = view[k]
                child = edges_get((slot, symbol))
                if child is None:
                    st[0] = slot
                    st[4] = k
                    park(st, slot, symbol)
                    break
                append(lasts_list[child])
                k += 1
                if mins_list[child] >= limit or k == n:
                    break
                slot = child

    def _resolve_round(
        self,
        ctx: _DirectionContext,
        pend_pslots: List[int],
        pend_syms: List[int],
        pend_rowslots: List[int],
        pend_waiters: List[List[list]],
        v_states: List[list],
        v_pslots: List[int],
        v_syms: List[int],
        v_rowslots: List[int],
        nxt_v: Tuple[list, list, list, list],
    ) -> Tuple[int, List[list]]:
        """Resolve one round of misses — walker entries and virgin chains
        together — into the arena with a single batched kernel call.

        Slots are global to the trie (every level has the same column
        width), so the whole round is one batch regardless of depth:
        parents gathered with one ``np.take`` from the matrix,
        substitution rows and deletes bulk-gathered by their dense
        :class:`~repro.distance.costs.DirectionRows` slots, and the
        kernel writing into freshly reserved rows — walker misses first,
        virgin chain steps behind them.  The trie's writer lock is held
        across reserve + write + publish (the module-docstring ordering),
        and parked misses are re-checked against ``edges`` first: on a
        *shared* trie another thread may have published some of them
        since this walk parked (those waiters are served as hits, and the
        column is not re-counted as computed).  Single-threaded the
        re-check never fires — walks see a frozen trie between park and
        resolve — so counters stay bit-identical to the python backend.

        Returns ``(columns computed, states returning to the walker)``;
        ``nxt_v`` receives the virgin chains still alive.  A surviving
        *sole-waiter* walker entry becomes a virgin chain (see
        :meth:`_batched_all_prefix_wed` for the divergence proof);
        multi-waiter survivors may still converge on shared symbols, so
        they return to the walker, whose rendezvous dict dedupes them.
        """
        trie = ctx.trie
        rows = ctx.rows
        prefix = ctx.ins_prefix
        early = self._early_termination
        runnable: List[list] = []
        wn = len(pend_pslots)
        vn = len(v_states)
        lock = trie.lock
        edges = trie.edges
        mins_list = trie.mins_list
        lasts_list = trie.lasts_list
        with lock:
            # Cross-thread re-check (no-op single-threaded, see docstring).
            hit = [
                i
                for i in range(wn)
                if (pend_pslots[i], pend_syms[i]) in edges
            ]
            v_hit = (
                [i for i in range(vn) if (v_pslots[i], v_syms[i]) in edges]
                if vn
                else []
            )
            if hit or v_hit:
                wn, vn = self._absorb_published(
                    ctx, hit, v_hit, pend_pslots, pend_syms, pend_rowslots,
                    pend_waiters, v_states, v_pslots, v_syms, v_rowslots,
                    runnable,
                )
                if not (wn or vn):
                    return 0, runnable
            count = wn + vn
            parents, subs, dels, work_a, work_b, mins_buf = ctx.scratch(count)
            pslots = pend_pslots + v_pslots if vn else pend_pslots
            rowslots = pend_rowslots + v_rowslots if vn else pend_rowslots
            # Parents are gathered into scratch BEFORE reserving: reserve
            # may grow (swap) the matrix, and the out= slice below must
            # come from the post-growth matrix.
            np.take(trie.matrix, pslots, axis=0, out=parents)
            np.take(rows.rows, rowslots, axis=0, out=subs)
            np.take(rows.deletes, rowslots, axis=0, out=dels)
            # Growth only happens inside reserve, and only under this
            # lock we hold — so the delta is exactly OUR growth, even on
            # a trie shared with concurrent verifiers.
            before_growth = trie.allocations
            start = trie.reserve(count)
            ctx.trie_growth += trie.allocations - before_growth
            out = trie.matrix[start : start + count]
            step_dp_batch(
                subs, dels, prefix, parents, out=out, work=(work_a, work_b)
            )
            # Direct ufunc reduce: same floats as out.min(axis=1), minus
            # the np.min wrapper dispatch paid once per round.
            np.minimum.reduce(out, axis=1, out=mins_buf)
            trie.mins[start : start + count] = mins_buf
            trie.lasts[start : start + count] = out[:, -1]
            mins = mins_buf.tolist()
            lasts = out[:, -1].tolist()
            mins_list.extend(mins)
            lasts_list.extend(lasts)
            # Publish the edges last: a lock-free reader that sees one is
            # guaranteed a fully written column and scalars.
            slot = start
            for i in range(wn):
                edges[(pend_pslots[i], pend_syms[i])] = slot
                slot += 1
            for i in range(vn):
                edges[(v_pslots[i], v_syms[i])] = slot
                slot += 1
        self._allocs += _GROUP_TEMP_ARRAYS
        self._dp_rounds += 1
        nv_states, nv_pslots, nv_syms, nv_rowslots = nxt_v
        rows_index_get = rows.index.get
        rows_slot = rows.slot
        runnable_append = runnable.append
        slot = start
        for i in range(wn):
            cmin = mins[i]
            last = lasts[i]
            wlist = pend_waiters[i]
            if len(wlist) == 1:
                st = wlist[0]
                st[2].append(last)
                k = st[4] + 1
                if (not early or cmin < st[3]) and k != st[5]:
                    # Sole waiter whose walk continues: divergence point —
                    # the state becomes a virgin chain from this slot.
                    st[4] = k
                    view = st[1]
                    if k == len(view):
                        view.extend(st[6][k : 2 * k + 16].tolist())
                    symbol2 = view[k]
                    sslot = rows_index_get(symbol2)
                    if sslot is None:
                        sslot = rows_slot(symbol2)
                    nv_states.append(st)
                    nv_pslots.append(slot)
                    nv_syms.append(symbol2)
                    nv_rowslots.append(sslot)
                slot += 1
                continue
            for st in wlist:
                st[2].append(last)
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[0] = slot
                st[4] = k
                runnable_append(st)
            slot += 1
        # Virgin section: no waiter lists — the chain advances by arena
        # slot, terminating exactly where the sequential walk would.
        for i in range(vn):
            st = v_states[i]
            row = wn + i
            last = lasts[row]
            st[2].append(last)
            cmin = mins[row]
            k = st[4] + 1
            if (early and cmin >= st[3]) or k == st[5]:
                continue
            st[4] = k
            view = st[1]
            if k == len(view):
                view.extend(st[6][k : 2 * k + 16].tolist())
            symbol2 = view[k]
            sslot = rows_index_get(symbol2)
            if sslot is None:
                sslot = rows_slot(symbol2)
            nv_states.append(st)
            nv_pslots.append(start + row)
            nv_syms.append(symbol2)
            nv_rowslots.append(sslot)
        return count, runnable

    def _absorb_published(
        self,
        ctx: _DirectionContext,
        hit: List[int],
        v_hit: List[int],
        pend_pslots: List[int],
        pend_syms: List[int],
        pend_rowslots: List[int],
        pend_waiters: List[List[list]],
        v_states: List[list],
        v_pslots: List[int],
        v_syms: List[int],
        v_rowslots: List[int],
        runnable: List[list],
    ) -> Tuple[int, int]:
        """Serve parked misses that a *concurrent* walk resolved first
        (their edges appeared between park and resolve) as cache hits,
        compacting the pending lists in place.  Only reachable on shared
        tries under concurrency; survivors — virgin chains included,
        since a cross-thread publication breaks the chain's sole-owner
        guarantee — return to the walker.  Caller holds the trie lock.
        Returns the compacted ``(walker, virgin)`` pending counts."""
        trie = ctx.trie
        edges = trie.edges
        mins_list = trie.mins_list
        lasts_list = trie.lasts_list
        early = self._early_termination
        hit_set = set(hit)
        for i in hit:
            slot = edges[(pend_pslots[i], pend_syms[i])]
            cmin = mins_list[slot]
            last = lasts_list[slot]
            for st in pend_waiters[i]:
                st[2].append(last)
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[0] = slot
                st[4] = k
                runnable.append(st)
        keep = [i for i in range(len(pend_pslots)) if i not in hit_set]
        pend_pslots[:] = [pend_pslots[i] for i in keep]
        pend_syms[:] = [pend_syms[i] for i in keep]
        pend_rowslots[:] = [pend_rowslots[i] for i in keep]
        pend_waiters[:] = [pend_waiters[i] for i in keep]
        if v_hit:
            v_hit_set = set(v_hit)
            for i in v_hit:
                st = v_states[i]
                slot = edges[(v_pslots[i], v_syms[i])]
                cmin = mins_list[slot]
                last = lasts_list[slot]
                st[2].append(last)
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[0] = slot
                st[4] = k
                runnable.append(st)
            keep = [i for i in range(len(v_states)) if i not in v_hit_set]
            v_states[:] = [v_states[i] for i in keep]
            v_pslots[:] = [v_pslots[i] for i in keep]
            v_syms[:] = [v_syms[i] for i in keep]
            v_rowslots[:] = [v_rowslots[i] for i in keep]
        return len(pend_pslots), len(v_states)

    def _batched_detached(
        self,
        views: List[np.ndarray],
        budgets: List[float],
        ctx: _DirectionContext,
    ) -> List[List[float]]:
        """The ``use_trie=False`` ablation: every visit recomputes its
        column (nothing is shared), still batched per round so the kernel
        amortizes — matching the sequential local-verification mode
        column for column."""
        root = ctx.root
        outs: List[List[float]] = [[root.column_last] for _ in views]
        early = self._early_termination
        cancel = self._cancel
        runnable: List[list] = []
        root_min = root.column_min
        for view, budget, out in zip(views, budgets, outs):
            if early and root_min >= budget:
                continue
            n = len(view)
            if n:
                runnable.append(
                    [root, view[:_SYMBOL_CHUNK].tolist(), out, budget, 0, n, view]
                )
        computed = 0
        pend_nodes: List[TrieNode] = []
        pend_syms: List[int] = []
        pend_waiters: List[List[list]] = []
        while runnable or pend_nodes:
            if cancel is not None and cancel.cancelled():
                self.stats.visited_columns += sum(len(o) for o in outs) - len(outs)
                self.stats.computed_columns += computed
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} "
                    "candidates (mid-batch)"
                )
            for st in runnable:
                view = st[1]
                k = st[4]
                if k == len(view):
                    view.extend(st[6][len(view) : 2 * len(view) + 16].tolist())
                pend_nodes.append(st[0])
                pend_syms.append(view[k])
                pend_waiters.append([st])
            if pend_nodes:
                computed += len(pend_nodes)
                runnable = self._resolve_detached(
                    ctx, pend_nodes, pend_syms, pend_waiters
                )
                pend_nodes = []
                pend_syms = []
                pend_waiters = []
            else:
                runnable = []
        self.stats.visited_columns += sum(len(o) for o in outs) - len(outs)
        self.stats.computed_columns += computed
        return outs

    def _resolve_detached(
        self,
        ctx: _DirectionContext,
        nodes: List[TrieNode],
        syms: List[int],
        waiters: List[List[list]],
    ) -> List[list]:
        """Resolve one round without the trie: per-state detached columns.

        Nothing is shared or cached in this ablation mode, so columns stay
        per-node ndarray views (they die with their walk state — an arena
        would pin every column for the query's lifetime)."""
        rows = ctx.rows
        prefix = ctx.ins_prefix
        early = self._early_termination
        rows_get = rows.get
        count = len(nodes)
        parents, subs, dels, work_a, work_b, mins_buf = ctx.scratch(count)
        for i in range(count):
            parents[i] = nodes[i].column
            pair = rows_get(syms[i])
            subs[i] = pair[0]
            dels[i] = pair[1]
        columns = step_dp_batch(subs, dels, prefix, parents, work=(work_a, work_b))
        mins = np.min(columns, axis=1, out=mins_buf).tolist()
        lasts = columns[:, -1].tolist()
        # The columns matrix plus one view per detached node — this is the
        # pre-arena allocation behaviour, kept only for use_trie=False.
        self._allocs += count + _GROUP_TEMP_ARRAYS
        self._dp_rounds += 1
        runnable: List[list] = []
        for i in range(count):
            cmin = mins[i]
            last = lasts[i]
            child = TrieNode(columns[i], cmin, last)
            for st in waiters[i]:
                st[2].append(last)
                k = st[4] + 1
                if (early and cmin >= st[3]) or k == st[5]:
                    continue
                st[0] = child
                st[4] = k
                runnable.append(st)
        return runnable

    def _context(self, iq: int, direction: str) -> _DirectionContext:
        key = (iq, direction)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = _DirectionContext(
                self._query,
                iq,
                direction,
                self._costs,
                numpy_backend=self._numpy,
                use_trie=self._use_trie,
                ins_vec=self._ins_vec,
                matrix=self._matrix,
                entry=self._trie_entry,
            )
            self._contexts[key] = ctx
        return ctx

    # -- Algorithm 5: AllPrefixWED ------------------------------------------

    def _all_prefix_wed_array(
        self,
        data_part: np.ndarray,
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """Array-native AllPrefixWED over a zero-copy trajectory view
        (single-candidate path; the batched walker produces identical
        columns and counters — including where the columns live: cache
        misses are computed straight into reserved arena rows)."""
        early = self._early_termination
        visited = computed = 0
        if not self._use_trie:
            # Detached: recompute every column, cache nothing.
            node = ctx.root
            out: List[float] = [node.column_last]
            if early and node.column_min >= budget:
                return out
            rows_get = ctx.rows.get
            prefix = ctx.ins_prefix
            item = data_part.item
            for k in range(len(data_part)):
                symbol = item(k)
                visited += 1
                sub_row, delete_cost = rows_get(symbol)
                column = step_dp_numpy(sub_row, delete_cost, prefix, node.column)
                node = TrieNode(column, column.min().item(), column.item(-1))
                self._allocs += 1 + _SINGLE_TEMP_ARRAYS
                self._dp_rounds += 1
                computed += 1
                out.append(node.column_last)
                if early and node.column_min >= budget:
                    break
            self.stats.visited_columns += visited
            self.stats.computed_columns += computed
            return out
        trie = ctx.trie
        mins_list = trie.mins_list
        lasts_list = trie.lasts_list
        out = [lasts_list[0]]
        if early and mins_list[0] >= budget:
            return out
        edges_get = trie.edges.get
        rows_get = ctx.rows.get
        prefix = ctx.ins_prefix
        item = data_part.item
        slot = 0
        for k in range(len(data_part)):
            symbol = item(k)
            visited += 1
            child = edges_get((slot, symbol))
            if child is None:
                with trie.lock:
                    child = edges_get((slot, symbol))  # cross-thread re-check
                    if child is None:
                        sub_row, delete_cost = rows_get(symbol)
                        before_growth = trie.allocations
                        child = trie.reserve(1)
                        ctx.trie_growth += trie.allocations - before_growth
                        # prev is fetched post-reserve so both views come
                        # from the (possibly grown) current matrix.
                        column = step_dp_numpy(
                            sub_row,
                            delete_cost,
                            prefix,
                            trie.matrix[slot],
                            out=trie.matrix[child],
                        )
                        cmin = column.min().item()
                        clast = column.item(-1)
                        trie.mins[child] = cmin
                        trie.lasts[child] = clast
                        mins_list.append(cmin)
                        lasts_list.append(clast)
                        trie.edges[(slot, symbol)] = child
                        computed += 1
                        self._allocs += _SINGLE_TEMP_ARRAYS
                        self._dp_rounds += 1
            slot = child
            out.append(lasts_list[slot])
            if early and mins_list[slot] >= budget:
                break
        self.stats.visited_columns += visited
        self.stats.computed_columns += computed
        return out

    def _all_prefix_wed(
        self,
        data_part: Sequence[int],
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """``E[k] = wed(data_part[:k], ctx.query_part)`` for growing ``k``.

        Stops early once the column minimum reaches ``budget`` (the stopped
        column's E value could only be >= budget, so nothing is lost).
        ``E[0]`` is the cost of inserting the whole query part.
        """
        node: TrieNode = ctx.trie.root
        query_part = ctx.query_part
        out: List[float] = [node.column_last]
        if self._early_termination and node.column_min >= budget:
            return out
        ins_prefix = ctx.ins_prefix
        nq = len(query_part)
        for k in range(len(data_part)):
            symbol = data_part[k]
            self.stats.visited_columns += 1
            child = node.find_child(symbol) if self._use_trie else None
            if child is None:
                column = self._step_dp(symbol, query_part, ins_prefix, node.column, nq)
                self.stats.computed_columns += 1
                if self._use_trie:
                    child = node.create_child(symbol, column)
                else:
                    child = TrieNode(column)
            node = child
            out.append(node.column_last)
            if self._early_termination and node.column_min >= budget:
                break
        return out

    # -- Algorithm 6: StepDP -------------------------------------------------

    def _step_dp(
        self,
        symbol: int,
        query_part: Sequence[int],
        ins_prefix: Sequence[float],
        prev: Sequence[float],
        nq: int,
    ) -> List[float]:
        # Prefix-min insert chain — the same evaluation order as
        # step_dp_numpy / step_dp_batch, cell for cell (see
        # repro.distance.wed), so the backends return identical floats.
        costs = self._costs
        sub_row = costs.sub_row(symbol, query_part)
        dele = costs.delete(symbol)
        first = prev[0] + dele
        column = [first]
        m = first - ins_prefix[0]
        for j in range(nq):
            c = prev[j] + sub_row[j]
            via_del = prev[j + 1] + dele
            if via_del < c:
                c = via_del
            chain = ins_prefix[j + 1] + m
            column.append(c if c <= chain else chain)
            d = c - ins_prefix[j + 1]
            if d < m:
                m = d
        return column

    def trie_node_count(self) -> int:
        """Total cached columns across all live tries (detached contexts
        count their root alone — nothing else survives the walk there)."""
        total = 0
        for ctx in self._contexts.values():
            total += 1 if ctx.trie is None else ctx.trie.node_count()
        return total


class _Reversed:
    """Lazy reversed view of ``seq[:end]`` (avoids copying long prefixes)."""

    __slots__ = ("_seq", "_end")

    def __init__(self, seq: Sequence[int], end: int) -> None:
        self._seq = seq
        self._end = end  # number of elements, reading backwards from end-1

    def __len__(self) -> int:
        return self._end

    def __getitem__(self, k: int) -> int:
        return self._seq[self._end - 1 - k]


class _Suffix:
    """Lazy view of ``seq[start:]``."""

    __slots__ = ("_seq", "_start")

    def __init__(self, seq: Sequence[int], start: int) -> None:
        self._seq = seq
        self._start = start

    def __len__(self) -> int:
        return len(self._seq) - self._start

    def __getitem__(self, k: int) -> int:
        return self._seq[self._start + k]
