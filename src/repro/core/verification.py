"""Candidate verification (§5, Algorithms 3–6).

Given a candidate ``(id, j, iq)`` — trajectory ``id`` contains, at position
``j``, a substitution neighbor of the query symbol at position ``iq`` — we
must report every subtrajectory ``P[s..t]`` with ``s <= j <= t`` and
``wed(P[s..t], Q) < tau``.  Lemma 1 licenses the decomposition

    wed(P[s..t], Q) = wed(P[s..j-1], Q[0..iq-1])   (backward part)
                    + sub(P[j], Q[iq])             (anchor)
                    + wed(P[j+1..t], Q[iq+1..])    (forward part)

for at least one candidate of every true match, so verifying all candidates
bidirectionally finds all matches; for the remaining candidates the sum is
an upper bound on the true WED, hence no false positives either.

Contract: Lemma 1 presupposes that the candidates come from a valid
tau-subsequence (``c(Q') >= tau``).  Only then is the minimum decomposition
over anchors *equal* to the true WED for every match; with an arbitrary
candidate set the reported distances are sound upper bounds.  The engine
never verifies outside this contract — when no tau-subsequence exists it
falls back to an exact scan.

Three optimizations, individually switchable for ablation:

- *local verification*: DP runs outward from ``j`` only while the running
  prefix lower bound (Eq. 11 — the column minimum) stays below the budget;
- *bidirectional tries*: DP columns are cached per (direction, ``iq``)
  across candidates sharing data prefixes (§5.2);
- the anchor tightens the budget to ``tau' = tau - sub(Q[iq], P[j])``.

Two DP backends compute the columns, both evaluating the repo-wide
prefix-min insert chain (see :mod:`repro.distance.wed`) so their floats
are bit-identical:

- ``dp_backend="numpy"`` (the default) is *array-native end to end* with
  **anchor-grouped batch verification**: candidates are deduped, grouped
  by anchor position ``iq``, and each group's candidates walk the shared
  direction trie *run-to-miss* — every round's distinct cache misses
  become one batched :func:`step_dp_batch` call over an ``(L, |Q^d| +
  1)`` matrix, so numpy launch overhead amortizes across the whole group
  instead of being paid per column.  Substitution rows come from a
  per-query :class:`~repro.distance.costs.SubstitutionMatrix` as cached
  ndarray slices (forward parts and reversed backward parts are zero-copy
  views of one full-query row), trajectory strings are memoized
  ``np.int32`` arrays sliced into directional views and materialized into
  the walker chunk by chunk, and trie columns are ndarrays carrying their
  minimum and last value out of the kernel as plain floats;
- ``dp_backend="python"`` is the historical pure-Python per-cell loop,
  kept as the ablation baseline
  (``benchmarks/bench_verification_hotpath.py`` tracks the gap).

Batching preserves the sequential semantics exactly: which columns get
computed, every column's floats, each candidate's early-termination point,
and the UPR/CMR counters are all order-independent, so the two backends —
and the batched vs. single-candidate numpy paths — agree bit for bit.

The :class:`VerificationStats` counters implement the §6.4 metrics: UPR
(columns surviving early termination vs. a full Smith–Waterman pass) and
CMR (columns actually computed vs. columns visited).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import MatchSet
from repro.core.trie import TrieNode, VerificationTrie
from repro.distance.costs import CostModel, SubstitutionMatrix
from repro.exceptions import QueryCancelledError, QueryError

__all__ = [
    "Candidate",
    "VerificationStats",
    "Verifier",
    "step_dp_batch",
    "step_dp_numpy",
]


def step_dp_numpy(
    sub_row: np.ndarray,
    delete_cost: float,
    ins_prefix: np.ndarray,
    prev: np.ndarray,
) -> np.ndarray:
    """Vectorized StepDP (Algorithm 6) in the prefix-min convention.

    ``C[j] = min(prev[j-1] + sub[j-1], prev[j] + del)`` (``C[0] = prev[0] +
    del``) vectorizes directly; the insert chain is evaluated as ``B[j] =
    min(C[j], P[j] + min over i < j of (C[i] - P[i]))`` with one
    ``minimum.accumulate`` pass — the exact evaluation order every DP step
    in this repo uses (see :mod:`repro.distance.wed`), so the result is
    *bit-identical* to the pure-Python backend, not merely close: the
    strict ``< tau`` match semantics see the same floats everywhere.

    ``sub_row`` and ``prev`` may be non-contiguous views; the inputs are
    never mutated and the returned column is a fresh array (it is cached
    in the trie).
    """
    c = prev + delete_cost
    np.minimum(c[1:], prev[:-1] + sub_row, out=c[1:])
    d = c - ins_prefix
    np.minimum.accumulate(d, out=d)
    np.minimum(c[1:], ins_prefix[1:] + d[:-1], out=c[1:])
    return c


def step_dp_batch(
    sub_rows: np.ndarray,
    delete_costs: np.ndarray,
    ins_prefix: np.ndarray,
    prev_columns: np.ndarray,
) -> np.ndarray:
    """:func:`step_dp_numpy` over ``L`` independent columns at once.

    ``prev_columns`` is ``(L, n+1)``, ``sub_rows`` ``(L, n)``,
    ``delete_costs`` ``(L,)``; returns the ``(L, n+1)`` next columns.  Each
    row runs the identical operation sequence as the single-column kernel,
    so batching changes throughput, never values.  This is what makes
    anchor-grouped verification fast: one launch sequence per trie level
    instead of per column.
    """
    c = prev_columns + delete_costs[:, None]
    np.minimum(c[:, 1:], prev_columns[:, :-1] + sub_rows, out=c[:, 1:])
    d = c - ins_prefix
    np.minimum.accumulate(d, axis=1, out=d)
    np.minimum(c[:, 1:], ins_prefix[1:] + d[:, :-1], out=c[:, 1:])
    return c


Candidate = Tuple[int, int, int]  # (trajectory id, position j, query position iq)

#: symbols materialized per tolist() chunk by the batched walker — small
#: enough that an immediately-terminated candidate on a long trajectory
#: wastes almost nothing, large enough to amortize the slice machinery.
_SYMBOL_CHUNK = 64


@dataclass(slots=True)
class VerificationStats:
    """Counters backing the UPR / CMR / TUR metrics of §6.4."""

    candidates: int = 0
    #: columns a full SW pass would compute: |P| per candidate (denominator of UPR)
    sw_columns: int = 0
    #: columns visited before early termination fired (numerator of UPR)
    visited_columns: int = 0
    #: columns actually computed by StepDP, i.e. trie cache misses
    computed_columns: int = 0
    #: matches emitted (pre-deduplication)
    emitted: int = 0
    #: exact (id, j, iq) repeats dropped by ``verify_all`` before verification
    duplicate_candidates: int = 0

    @property
    def unpruned_position_rate(self) -> float:
        """UPR: fraction of SW's DP columns that local verification visits."""
        return self.visited_columns / self.sw_columns if self.sw_columns else 0.0

    @property
    def cache_miss_rate(self) -> float:
        """CMR: fraction of visited columns that needed a StepDP call."""
        return (
            self.computed_columns / self.visited_columns
            if self.visited_columns
            else 0.0
        )

    @property
    def total_unpruned_rate(self) -> float:
        """TUR = UPR x CMR: StepDP calls relative to a full SW pass."""
        return self.computed_columns / self.sw_columns if self.sw_columns else 0.0


class _DirectionContext:
    """Precomputed per-direction query data shared by all candidates with
    the same anchor position ``iq``.

    ``ins_prefix`` is the cumulative insertion-cost prefix of the query
    part — the trie's root column and the ``P`` of the prefix-min DP
    convention (an ndarray on the numpy backend, a list on the python
    one, summed left-to-right either way so both hold the same floats).
    ``row_slice`` maps a *full-query* substitution row to this direction's
    part: ``slice(iq+1, None)`` forward, ``slice(iq-1, None, -1)`` backward
    (the reversed prefix) — both zero-copy ndarray views, so one cached row
    per symbol serves every anchor position and both directions.
    """

    __slots__ = ("query_part", "ins_prefix", "row_slice", "row_cache", "trie")

    def __init__(
        self,
        query: Sequence[int],
        iq: int,
        direction: str,
        costs: CostModel,
        *,
        numpy_backend: bool,
        ins_vec: Optional[np.ndarray] = None,
    ) -> None:
        if direction == "b":
            # Backward part: both strings reversed (WED is invariant under
            # simultaneous reversal because costs are position-independent).
            self.query_part: Tuple[int, ...] = tuple(reversed(query[:iq]))
            self.row_slice = slice(iq - 1, None, -1) if iq > 0 else slice(0, 0)
        else:
            self.query_part = tuple(query[iq + 1 :])
            self.row_slice = slice(iq + 1, None)
        #: symbol -> (contiguous substitution-row slice, deletion cost) for
        #: this direction (backward slices are negative-stride views;
        #: copying them once here makes every later batch-matrix fill a
        #: plain memcpy, and pairing the deletion cost makes the batch
        #: assembly a single dict hit per miss).
        self.row_cache: Dict[int, Tuple[np.ndarray, float]] = {}
        if numpy_backend:
            ins_part = ins_vec[self.row_slice]
            prefix = np.empty(len(self.query_part) + 1, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(ins_part, out=prefix[1:])
            self.ins_prefix: Sequence[float] = prefix
        else:
            prefix_list: List[float] = [0.0]
            for q in self.query_part:
                prefix_list.append(prefix_list[-1] + costs.ins(q))
            self.ins_prefix = prefix_list
        # The root column wed(eps, part prefix) IS the insertion prefix.
        self.trie = VerificationTrie(self.ins_prefix)

    def costs_for(
        self, symbol: int, matrix: SubstitutionMatrix
    ) -> Tuple[np.ndarray, float]:
        """This direction's cached (substitution-row slice, delete cost)."""
        pair = self.row_cache.get(symbol)
        if pair is None:
            pair = (
                np.ascontiguousarray(matrix.row(symbol)[self.row_slice]),
                matrix.delete(symbol),
            )
            self.row_cache[symbol] = pair
        return pair


class Verifier:
    """Verifies candidates for one query, accumulating matches and stats.

    Parameters
    ----------
    symbols_of:
        Callable mapping a trajectory id to its symbol string (the dataset's
        ``symbols`` method).
    query / costs / tau:
        The query string, cost model, and similarity threshold.
    use_trie:
        Cache DP columns in bidirectional tries (§5.2).  Disabling recomputes
        every column (OSF-BT -> OSF with plain local verification).
    early_termination:
        Stop extending a direction once the column minimum reaches the
        budget (§5.1).  Disabling scans to the trajectory ends.
    dp_backend:
        ``"numpy"`` (default) — anchor-grouped batch verification over the
        array-native column kernels; ``"python"`` — the pure-Python
        per-cell loop, kept for ablation.  Results are bit-identical.
    symbols_array_of:
        Callable mapping a trajectory id to its ``np.int32`` symbol array
        (the dataset's ``symbols_array``).  Used by the numpy backend only;
        when omitted, arrays are converted from ``symbols_of`` and memoized
        per verifier.
    anchors:
        Symbols that can appear at candidate anchor positions (the union of
        the tau-subsequence's substitution neighborhoods).  Their
        substitution rows are precomputed densely in the per-query
        :class:`~repro.distance.costs.SubstitutionMatrix`.
    cancel:
        Optional cooperative cancellation token (anything with a
        ``cancelled() -> bool`` method, e.g.
        :class:`~repro.core.cancellation.CancelToken`).  Polled once per
        candidate (python backend) or per group/trie level (numpy
        backend) in :meth:`verify_all`, so expired work stops within one
        verification-loop iteration instead of running to completion.
    """

    def __init__(
        self,
        symbols_of,
        query: Sequence[int],
        costs: CostModel,
        tau: float,
        *,
        use_trie: bool = True,
        early_termination: bool = True,
        dp_backend: str = "numpy",
        symbols_array_of=None,
        anchors: Optional[Sequence[int]] = None,
        cancel=None,
    ) -> None:
        if dp_backend not in ("python", "numpy"):
            raise QueryError(f"unknown dp_backend {dp_backend!r}")
        self._symbols_of = symbols_of
        self._query = tuple(query)
        self._costs = costs
        self._tau = tau
        self._use_trie = use_trie
        self._early_termination = early_termination
        self._cancel = cancel
        self._numpy = dp_backend == "numpy"
        self._matrix: Optional[SubstitutionMatrix] = None
        self._ins_vec: Optional[np.ndarray] = None
        if self._numpy:
            self._matrix = costs.sub_matrix(self._query, anchors=anchors)
            self._ins_vec = costs.ins_vector(self._query)
            if symbols_array_of is None:
                symbols_array_of = self._converting_array_accessor()
        self._symbols_array_of = symbols_array_of
        # One context per (query position, direction); built lazily since
        # only tau-subsequence positions are anchors (2|Q'| tries, §5.2).
        self._contexts: Dict[Tuple[int, str], _DirectionContext] = {}
        self.stats = VerificationStats()

    def _converting_array_accessor(self):
        """Fallback ``symbols_array_of``: convert + memoize per verifier."""
        cache: Dict[int, np.ndarray] = {}
        symbols_of = self._symbols_of

        def accessor(tid: int) -> np.ndarray:
            arr = cache.get(tid)
            if arr is None:
                arr = np.asarray(symbols_of(tid), dtype=np.int32)
                cache[tid] = arr
            return arr

        return accessor

    # -- Algorithm 3: drive all candidates ---------------------------------

    def verify_all(self, candidates: Sequence[Candidate], matches: MatchSet) -> None:
        """Algorithm 3: verify every candidate into ``matches``.

        Exact ``(id, j, iq)`` repeats (possible when repeated query symbols
        or an external caller supply overlapping candidate sets) are
        verified once and counted in ``stats.duplicate_candidates``; the
        survivors are ordered by anchor position ``iq``, then trajectory,
        so consecutive candidates share direction contexts, trie roots, and
        symbol arrays — and, on the numpy backend, each ``iq`` group is
        verified as one level-synchronous batch over the shared tries.
        Neither transformation changes the result set or the column
        counters — trie cache contents and per-candidate visit counts are
        order-independent.

        Polls the cancellation token between candidates (python backend)
        or between anchor groups and trie levels (numpy backend), so a
        cancelled or deadline-expired query raises
        :class:`~repro.exceptions.QueryCancelledError` within one loop
        iteration instead of verifying the remaining candidates.
        """
        seen = set()
        unique: List[Candidate] = []
        for cand in candidates:
            if cand in seen:
                self.stats.duplicate_candidates += 1
            else:
                seen.add(cand)
                unique.append(cand)
        unique.sort(key=lambda c: (c[2], c[0], c[1]))
        cancel = self._cancel
        if self._numpy:
            total = len(unique)
            start = 0
            while start < total:
                if cancel is not None and cancel.cancelled():
                    raise QueryCancelledError(
                        f"verification cancelled after {self.stats.candidates} "
                        f"of {len(candidates)} candidates"
                    )
                iq = unique[start][2]
                end = start
                while end < total and unique[end][2] == iq:
                    end += 1
                self._verify_group(iq, unique[start:end], matches)
                start = end
            return
        for cand in unique:
            if cancel is not None and cancel.cancelled():
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} of "
                    f"{len(candidates)} candidates"
                )
            self.verify_candidate(cand, matches)

    # -- Algorithm 4 --------------------------------------------------------

    def verify_candidate(self, candidate: Candidate, matches: MatchSet) -> None:
        """Emit every match of Definition 3 anchored at this candidate.

        Single-candidate entry point (the batched group path in
        :meth:`verify_all` produces identical results and counters)."""
        tid, j, iq = candidate
        self.stats.candidates += 1
        if self._numpy:
            data = self._symbols_array_of(tid)
            self.stats.sw_columns += len(data)
            # The anchor cost is the iq-th entry of the symbol's cached
            # full-query substitution row (sub is symmetric — §2.2.1).
            anchor_cost = float(self._matrix.row(data.item(j))[iq])
            budget = self._tau - anchor_cost
            if budget <= 0:
                return
            backward = self._context(iq, "b")
            forward = self._context(iq, "f")
            eb = self._all_prefix_wed_array(data[:j][::-1], backward, budget)
            ef = self._all_prefix_wed_array(data[j + 1 :], forward, budget)
        else:
            data = self._symbols_of(tid)
            self.stats.sw_columns += len(data)
            anchor_cost = self._costs.sub(self._query[iq], data[j])
            budget = self._tau - anchor_cost
            if budget <= 0:
                return
            backward = self._context(iq, "b")
            forward = self._context(iq, "f")
            eb = self._all_prefix_wed(_Reversed(data, j), backward, budget)
            ef = self._all_prefix_wed(_Suffix(data, j + 1), forward, budget)
        self._combine(tid, j, anchor_cost, budget, eb, ef, matches)

    def _combine(
        self,
        tid: int,
        j: int,
        anchor_cost: float,
        budget: float,
        eb: List[float],
        ef: List[float],
        matches: MatchSet,
    ) -> None:
        """Combine: match P[j-kb .. j+kf] for every pair under budget."""
        emitted = 0
        add = matches.add
        for kb, cost_b in enumerate(eb):
            remaining = budget - cost_b
            if remaining <= 0:
                continue
            base = anchor_cost + cost_b
            start = j - kb
            for kf, cost_f in enumerate(ef):
                if cost_f < remaining:
                    add(tid, start, j + kf, base + cost_f)
                    emitted += 1
        self.stats.emitted += emitted

    # -- anchor-grouped batch verification (numpy backend) ------------------

    def _verify_group(
        self, iq: int, group: Sequence[Candidate], matches: MatchSet
    ) -> None:
        """Verify all candidates sharing anchor position ``iq`` as one
        level-synchronous batch over the shared direction tries."""
        stats = self.stats
        matrix = self._matrix
        tau = self._tau
        items: List[Tuple[int, int, float, float]] = []
        views_b: List[np.ndarray] = []
        views_f: List[np.ndarray] = []
        budgets: List[float] = []
        for tid, j, _ in group:
            data = self._symbols_array_of(tid)
            stats.candidates += 1
            stats.sw_columns += len(data)
            anchor_cost = float(matrix.row(data.item(j))[iq])
            budget = tau - anchor_cost
            if budget <= 0:
                continue
            items.append((tid, j, anchor_cost, budget))
            views_b.append(data[:j][::-1])
            views_f.append(data[j + 1 :])
            budgets.append(budget)
        if not items:
            return
        backward = self._context(iq, "b")
        forward = self._context(iq, "f")
        ebs = self._batched_all_prefix_wed(views_b, budgets, backward)
        efs = self._batched_all_prefix_wed(views_f, budgets, forward)
        for (tid, j, anchor_cost, budget), eb, ef in zip(items, ebs, efs):
            self._combine(tid, j, anchor_cost, budget, eb, ef, matches)

    def _batched_all_prefix_wed(
        self,
        views: List[np.ndarray],
        budgets: List[float],
        ctx: _DirectionContext,
    ) -> List[List[float]]:
        """AllPrefixWED for many candidates over one shared trie, walked
        run-to-miss.

        Each round, every runnable state advances through consecutive trie
        *hits* in a tight local-variable loop (as cheap as the sequential
        walk), parking at its first cache miss; the round's distinct
        ``(node, symbol)`` misses are then computed in one
        :func:`step_dp_batch` call and their new trie nodes shared by every
        parked state.  A trie node's identity is its symbol path, so
        shared-prefix states converge on the same objects regardless of
        schedule: which columns get computed, each state's visit count,
        and every float are identical to walking the candidates one at a
        time — batching only amortizes the numpy launch overhead.
        """
        root = ctx.trie.root
        outs: List[List[float]] = [[root.column_last] for _ in views]
        early = self._early_termination
        use_trie = self._use_trie
        matrix = self._matrix
        prefix = ctx.ins_prefix
        width = len(ctx.query_part) + 1
        cancel = self._cancel
        # One walk state per candidate still extending:
        # [node, symbol list, out list, budget, k, len(view), view array].
        # Symbols are materialized into plain int lists *chunk by chunk*
        # (C-speed tolist of the zero-copy view, indexed per visit by the
        # tight loop) so an early-terminated candidate on a very long
        # trajectory never pays for symbols it will not reach.
        runnable: List[list] = []
        root_min = root.column_min
        for view, budget, out in zip(views, budgets, outs):
            if early and root_min >= budget:
                continue
            n = len(view)
            if n:
                runnable.append(
                    [root, view[:_SYMBOL_CHUNK].tolist(), out, budget, 0, n, view]
                )
        visited = computed = 0
        # Parked misses.  With the trie on, the parent's ``children`` dict
        # doubles as the rendezvous: a miss leaves the pending batch index
        # as an *int* placeholder, so later states reaching the same
        # (node, symbol) join its waiters with the one dict lookup they
        # were doing anyway.  Placeholders are replaced by the real
        # TrieNode when the batch resolves, and stripped if the batch
        # fails (see below); cancellation polls only between rounds, when
        # none are outstanding — so the tries never leak them.  Without
        # the trie every state is its own miss (no sharing), matching the
        # sequential local-verification mode column for column.
        pend_nodes: List[TrieNode] = []
        pend_syms: List[int] = []
        pend_waiters: List[List[list]] = []
        costs_cache_get = ctx.row_cache.get
        while runnable or pend_nodes:
            if cancel is not None and cancel.cancelled():
                self.stats.visited_columns += visited
                self.stats.computed_columns += computed
                raise QueryCancelledError(
                    f"verification cancelled after {self.stats.candidates} "
                    "candidates (mid-batch)"
                )
            for st in runnable:
                node, view, out, budget, k, n = st[:6]
                append = out.append
                filled = len(view)
                if use_trie:
                    while True:
                        if k == filled:
                            view.extend(st[6][filled : 2 * filled + 16].tolist())
                            filled = len(view)
                        symbol = view[k]
                        visited += 1
                        child = node.children.get(symbol)
                        if child is None:
                            st[0] = node
                            st[4] = k
                            node.children[symbol] = len(pend_nodes)
                            pend_nodes.append(node)
                            pend_syms.append(symbol)
                            pend_waiters.append([st])
                            break
                        if type(child) is int:
                            st[0] = node
                            st[4] = k
                            pend_waiters[child].append(st)
                            break
                        append(child.column_last)
                        k += 1
                        if (early and child.column_min >= budget) or k == n:
                            break
                        node = child
                else:
                    # Every visit recomputes its column: park immediately.
                    if k == filled:
                        view.extend(st[6][filled : 2 * filled + 16].tolist())
                    symbol = view[k]
                    visited += 1
                    st[0] = node
                    st[4] = k
                    pend_nodes.append(node)
                    pend_syms.append(symbol)
                    pend_waiters.append([st])
            runnable = []
            if pend_nodes:
                batch = len(pend_nodes)
                try:
                    parents = np.empty((batch, width), dtype=np.float64)
                    subs = np.empty((batch, width - 1), dtype=np.float64)
                    dels_list: List[float] = []
                    for i in range(batch):
                        parents[i] = pend_nodes[i].column
                        symbol = pend_syms[i]
                        pair = costs_cache_get(symbol)
                        if pair is None:
                            pair = ctx.costs_for(symbol, matrix)
                        subs[i] = pair[0]
                        dels_list.append(pair[1])
                    dels = np.asarray(dels_list, dtype=np.float64)
                    columns = step_dp_batch(subs, dels, prefix, parents)
                    mins = columns.min(axis=1).tolist()
                    lasts = columns[:, -1].tolist()
                    computed += batch
                    for i in range(batch):
                        child = TrieNode(columns[i], mins[i], lasts[i])
                        if use_trie:
                            pend_nodes[i].children[pend_syms[i]] = child
                        cmin = mins[i]
                        last = lasts[i]
                        for st in pend_waiters[i]:
                            st[2].append(last)
                            k = st[4] + 1
                            if (early and cmin >= st[3]) or k == st[5]:
                                continue
                            st[0] = child
                            st[4] = k
                            runnable.append(st)
                except BaseException:
                    # A failing batch (e.g. a cost model raising mid-row)
                    # must not strand int placeholders in the shared tries:
                    # strip any still unresolved so the verifier stays
                    # usable after the caller handles the error.
                    if use_trie:
                        for node_, symbol_ in zip(pend_nodes, pend_syms):
                            if type(node_.children.get(symbol_)) is int:
                                del node_.children[symbol_]
                    raise
                pend_nodes = []
                pend_syms = []
                pend_waiters = []
        self.stats.visited_columns += visited
        self.stats.computed_columns += computed
        return outs

    def _context(self, iq: int, direction: str) -> _DirectionContext:
        key = (iq, direction)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = _DirectionContext(
                self._query,
                iq,
                direction,
                self._costs,
                numpy_backend=self._numpy,
                ins_vec=self._ins_vec,
            )
            self._contexts[key] = ctx
        return ctx

    # -- Algorithm 5: AllPrefixWED ------------------------------------------

    def _all_prefix_wed_array(
        self,
        data_part: np.ndarray,
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """Array-native AllPrefixWED over a zero-copy trajectory view
        (single-candidate path; the batched walker produces identical
        columns and counters)."""
        node: TrieNode = ctx.trie.root
        out: List[float] = [node.column_last]
        early = self._early_termination
        if early and node.column_min >= budget:
            return out
        matrix = self._matrix
        prefix = ctx.ins_prefix
        use_trie = self._use_trie
        item = data_part.item
        visited = computed = 0
        for k in range(len(data_part)):
            symbol = item(k)
            visited += 1
            child = node.children.get(symbol) if use_trie else None
            if child is None:
                sub_row, delete_cost = ctx.costs_for(symbol, matrix)
                column = step_dp_numpy(
                    sub_row,
                    delete_cost,
                    prefix,
                    node.column,
                )
                computed += 1
                child = TrieNode(column, column.min().item(), column.item(-1))
                if use_trie:
                    node.children[symbol] = child
            node = child
            out.append(node.column_last)
            if early and node.column_min >= budget:
                break
        self.stats.visited_columns += visited
        self.stats.computed_columns += computed
        return out

    def _all_prefix_wed(
        self,
        data_part: Sequence[int],
        ctx: _DirectionContext,
        budget: float,
    ) -> List[float]:
        """``E[k] = wed(data_part[:k], ctx.query_part)`` for growing ``k``.

        Stops early once the column minimum reaches ``budget`` (the stopped
        column's E value could only be >= budget, so nothing is lost).
        ``E[0]`` is the cost of inserting the whole query part.
        """
        node: TrieNode = ctx.trie.root
        query_part = ctx.query_part
        out: List[float] = [node.column_last]
        if self._early_termination and node.column_min >= budget:
            return out
        ins_prefix = ctx.ins_prefix
        nq = len(query_part)
        for k in range(len(data_part)):
            symbol = data_part[k]
            self.stats.visited_columns += 1
            child = node.find_child(symbol) if self._use_trie else None
            if child is None:
                column = self._step_dp(symbol, query_part, ins_prefix, node.column, nq)
                self.stats.computed_columns += 1
                if self._use_trie:
                    child = node.create_child(symbol, column)
                else:
                    child = TrieNode(column)
            node = child
            out.append(node.column_last)
            if self._early_termination and node.column_min >= budget:
                break
        return out

    # -- Algorithm 6: StepDP -------------------------------------------------

    def _step_dp(
        self,
        symbol: int,
        query_part: Sequence[int],
        ins_prefix: Sequence[float],
        prev: Sequence[float],
        nq: int,
    ) -> List[float]:
        # Prefix-min insert chain — the same evaluation order as
        # step_dp_numpy / step_dp_batch, cell for cell (see
        # repro.distance.wed), so the backends return identical floats.
        costs = self._costs
        sub_row = costs.sub_row(symbol, query_part)
        dele = costs.delete(symbol)
        first = prev[0] + dele
        column = [first]
        m = first - ins_prefix[0]
        for j in range(nq):
            c = prev[j] + sub_row[j]
            via_del = prev[j + 1] + dele
            if via_del < c:
                c = via_del
            chain = ins_prefix[j + 1] + m
            column.append(c if c <= chain else chain)
            d = c - ins_prefix[j + 1]
            if d < m:
                m = d
        return column

    def trie_node_count(self) -> int:
        """Total cached columns across all live tries."""
        return sum(ctx.trie.node_count() for ctx in self._contexts.values())


class _Reversed:
    """Lazy reversed view of ``seq[:end]`` (avoids copying long prefixes)."""

    __slots__ = ("_seq", "_end")

    def __init__(self, seq: Sequence[int], end: int) -> None:
        self._seq = seq
        self._end = end  # number of elements, reading backwards from end-1

    def __len__(self) -> int:
        return self._end

    def __getitem__(self, k: int) -> int:
        return self._seq[self._end - 1 - k]


class _Suffix:
    """Lazy view of ``seq[start:]``."""

    __slots__ = ("_seq", "_start")

    def __init__(self, seq: Sequence[int], start: int) -> None:
        self._seq = seq
        self._start = start

    def __len__(self) -> int:
        return len(self._seq) - self._start

    def __getitem__(self, k: int) -> int:
        return self._seq[self._start + k]
