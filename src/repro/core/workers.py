"""Cross-process shard workers: CPU-bound verification past the GIL.

The thread-pool fan-out of :class:`~repro.core.partitioned.
PartitionedSubtrajectorySearch` parallelizes I/O-ish work but not the
Smith–Waterman-style verification that dominates query cost (§6) — pure-
Python DP holds the GIL, so N shard threads share one core.  This module
moves each shard's engine into a long-lived **worker process**:

- workers are spawned once, at index build: each receives its shard's
  :class:`~repro.trajectory.dataset.TrajectoryDataset` + cost model +
  engine options and builds its :class:`~repro.core.engine.
  SubtrajectorySearch` locally (inheriting the engine's defaults,
  including the adaptive ``dp_backend="auto"`` verification path and the
  per-engine SubstitutionMatrix LRU), so the (expensive) index
  construction and the (large) index memory live only in the worker;
- queries travel as small pickled descriptors over a per-worker
  :func:`multiprocessing.Pipe`; results come back as pickled
  :class:`~repro.core.engine.QueryResult` objects (the merge-irrelevant
  ``subsequence`` field is stripped to keep replies small);
- deadlines survive the process boundary: the parent sends the *remaining*
  budget with each query and the worker rebuilds a local token from it, so
  clock-skew between processes cannot extend a deadline; the parent can
  additionally trip a per-worker shared cancellation flag
  (:class:`multiprocessing.Value`) that the worker's token polls between
  verification-loop iterations — abandoning a query stops shard CPU work
  within one iteration;
- online inserts replicate through a **versioned** ``add`` message: the
  parent sends the shard-local id it expects the insert to receive, and
  the worker acknowledges only if its replica agrees — any divergence
  (a lost or reordered update) surfaces as :class:`~repro.exceptions.
  WorkerError` instead of silently wrong answers, which is what the
  serving layer's cache-generation guarantees rest on;
- lifecycle is leak-proof: workers are daemon processes, pools shut down
  idempotently, and a module-level ``atexit`` hook terminates every pool
  still alive at interpreter exit (so ``repro serve --self-test`` cannot
  strand children).

Protocol (one request in flight per worker, enforced by a parent-side
lock; every request gets exactly one reply, keeping the pipe in sync even
when the caller stops waiting):

    ("query", req_id, symbols, kwargs, remaining_seconds | None,
              trace_ctx | None)
    ("add",   req_id, expected_local_id, trajectory, validate)
    ("stats", req_id)                 -> {"substitution": ..., "trie": ...}
    ("stop",  req_id)
    reply: (req_id, "ok", payload) | (req_id, "error", exception)

``trace_ctx`` is a ``(trace_id, parent_span_id)`` pair (see
:mod:`repro.obs.tracing`): when present, the worker wraps the engine
query in a local trace rooted at the shipped context and the "ok"
payload becomes ``(result, exported_spans)`` — span starts relative to
the worker root, re-anchored by the parent via ``Span.graft`` — so one
request's trace crosses the pickle boundary intact.  Untraced queries
keep the bare-``QueryResult`` payload.

plus a readiness handshake: the worker's first message (req 0) reports
whether its engine built, so constructor errors (bad engine options,
mismatched representation) raise in the parent at pool construction with
their real cause — exactly as the in-process backends do.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import weakref
from time import monotonic
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import WorkerError

__all__ = ["ShardWorkerPool", "default_start_method"]

#: parent-side poll slice while waiting on a worker reply; bounds how fast
#: a tripped token propagates to the worker's shared flag.
_POLL_SECONDS = 0.02
#: grace given to a worker to exit after a "stop" before SIGTERM.
_STOP_TIMEOUT = 5.0


def default_start_method() -> str:
    """The multiprocessing start method used when none is requested.

    ``REPRO_MP_START`` overrides; otherwise ``fork`` where available
    (instant worker start, no re-import or re-pickle of the shard data)
    — but only while the parent is single-threaded.  Forking a threaded
    parent (e.g. rebuilding an engine while an HTTP server is live) can
    deadlock the child on locks held mid-fork by other threads, so such
    parents get ``spawn``, which always works: the worker entry point and
    every shipped object are picklable.
    """
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    if "fork" in mp.get_all_start_methods() and threading.active_count() == 1:
        return "fork"
    return "spawn"


class _WorkerCancelToken:
    """Worker-side cancellation token for one request.

    Duck-types :class:`~repro.core.cancellation.CancelToken`: combines the
    deadline the parent shipped (as a *remaining* budget, re-anchored on
    the worker's own monotonic clock) with the pool's shared cancellation
    flag.  The flag holds a request-id watermark — every request id at or
    below it is cancelled — so one plain 64-bit store cancels the in-flight
    request without locks.
    """

    __slots__ = ("_req_id", "_flag", "_expires")

    def __init__(self, req_id: int, flag, remaining: Optional[float]) -> None:
        self._req_id = req_id
        self._flag = flag
        self._expires = None if remaining is None else monotonic() + remaining

    def cancelled(self) -> bool:
        if self._expires is not None and monotonic() >= self._expires:
            return True
        return self._flag.value >= self._req_id


def _worker_main(conn, flag, shard_index, dataset, costs, engine_kwargs) -> None:
    """Worker process entry point: build the shard engine, serve the pipe.

    Top-level (not a closure) so ``spawn`` contexts can pickle it.  Every
    received request is answered exactly once; failures — including
    cancellations — travel back as pickled exceptions.
    """
    # Imported here, not at module top, so the worker builds its engine
    # against whatever is on *its* path under spawn (and to keep this
    # module importable without pulling the whole engine in first).
    from repro.core.engine import SubtrajectorySearch

    # Readiness handshake (req 0): a failed engine build must raise in the
    # parent's constructor with its real cause, not as an opaque dead
    # worker at first query.
    try:
        engine = SubtrajectorySearch(dataset, costs, **engine_kwargs)
    except BaseException as exc:  # noqa: BLE001 — ship the failure to the parent
        try:
            conn.send((0, "error", exc))
        except Exception:
            conn.send((0, "error", WorkerError(f"engine build failed: {exc!r}")))
        conn.close()
        return
    conn.send((0, "ok", None))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break  # parent gone (or interactive interrupt): nothing to reply to
        kind, req_id = msg[0], msg[1]
        try:
            if kind == "stop":
                conn.send((req_id, "ok", None))
                break
            if kind == "query":
                symbols, kwargs, remaining = msg[2], msg[3], msg[4]
                trace_ctx = msg[5] if len(msg) > 5 else None
                token = _WorkerCancelToken(req_id, flag, remaining)
                if trace_ctx is None:
                    result = engine.query(symbols, cancel=token, **kwargs)
                    # The merge ignores the tau-subsequence; stripping it
                    # keeps reply pickles small (neighborhoods are large).
                    result.subsequence = []
                    conn.send((req_id, "ok", result))
                else:
                    from repro.obs.tracing import Trace

                    trace = Trace(
                        "shard_worker",
                        trace_id=trace_ctx[0],
                        parent_id=trace_ctx[1],
                        shard=shard_index,
                        pid=os.getpid(),
                    )
                    result = engine.query(
                        symbols, cancel=token, trace=trace.root, **kwargs
                    )
                    result.subsequence = []
                    trace.finish()
                    conn.send((req_id, "ok", (result, trace.export())))
            elif kind == "add":
                expected, trajectory, validate = msg[2], msg[3], msg[4]
                tid = engine.add_trajectory(trajectory, validate=validate)
                if tid != expected:
                    raise WorkerError(
                        f"shard {shard_index} replica diverged: insert got local "
                        f"id {tid}, parent expected {expected}"
                    )
                conn.send((req_id, "ok", tid))
            elif kind == "stats":
                # One combined payload for every engine-level cache plus
                # the index, so a single non-blocking poll serves all
                # observability consumers (healthz, /stats, /metrics,
                # aggregated shard stats).
                conn.send(
                    (
                        req_id,
                        "ok",
                        {
                            "substitution": engine.substitution_cache_stats(),
                            "trie": engine.trie_cache_stats(),
                            "index": engine.index_stats(),
                        },
                    )
                )
            else:
                raise WorkerError(f"unknown message kind {kind!r}")
        except BaseException as exc:  # noqa: BLE001 — ship failures to the parent
            try:
                conn.send((req_id, "error", exc))
            except Exception:
                # Unpicklable exception: degrade to a description so the
                # parent still gets its one reply.
                conn.send((req_id, "error", WorkerError(f"worker error: {exc!r}")))
    conn.close()


class _ShardWorker:
    """Parent-side proxy for one worker process.

    Serializes request/response round-trips with a lock (the worker is
    single-threaded, so pipelining would only queue in the pipe) and
    monitors process liveness while waiting, so a crashed worker surfaces
    as :class:`WorkerError` instead of a hang.
    """

    def __init__(self, ctx, index: int, dataset, costs, engine_kwargs: Dict[str, Any]) -> None:
        self.index = index
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        # Raw (lockless) value is enough: single writer semantics per
        # request, and a stale read only delays cancellation by one poll.
        self._flag = ctx.Value("q", 0, lock=False)
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self._flag, index, dataset, costs, dict(engine_kwargs)),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        self._lock = threading.Lock()
        self._req = 0
        # Block until the worker reports its engine built (req 0); engine
        # construction errors re-raise here with their original type.
        self._receive(0, None)

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def daemon(self) -> bool:
        return self._process.daemon

    # -- request/response ---------------------------------------------------

    def call(self, kind: str, payload: Tuple, token=None):
        """One round-trip: send ``(kind, ...payload)``, await the reply."""
        req_id = self.begin(kind, payload)
        return self.finish(req_id, token)

    def try_call(self, kind: str, payload: Tuple):
        """Like :meth:`call`, but returns ``None`` instead of waiting when
        the worker is busy with an in-flight request.

        Diagnostics path (``/healthz`` polling a worker's cache stats):
        a liveness probe must never queue behind a long-running
        verification on the single-request-per-worker pipe."""
        if not self._lock.acquire(blocking=False):
            return None
        try:
            self._req += 1
            req_id = self._req
            self._conn.send((kind, req_id, *payload))
            return self._receive(req_id, None)
        except (OSError, ValueError) as exc:
            raise WorkerError(
                f"shard {self.index} worker unreachable: {exc}"
            ) from exc
        finally:
            self._lock.release()

    def begin(self, kind: str, payload: Tuple) -> int:
        """Send a request and return its id *without* waiting.

        Acquires this worker's lock; the caller MUST pair every successful
        ``begin`` with exactly one ``finish`` (which releases it).
        """
        self._lock.acquire()
        try:
            self._req += 1
            req_id = self._req
            self._conn.send((kind, req_id, *payload))
            return req_id
        except BaseException as exc:
            self._lock.release()
            if isinstance(exc, (OSError, ValueError)):
                raise WorkerError(
                    f"shard {self.index} worker unreachable: {exc}"
                ) from exc
            raise

    def finish(self, req_id: int, token=None):
        """Await the reply to ``req_id``, polling ``token`` while waiting.

        When the token trips, the worker's shared flag is raised so the
        worker abandons the request within one verification-loop iteration
        — and still sends its (error) reply, keeping the pipe in sync.
        """
        try:
            return self._receive(req_id, token)
        finally:
            self._lock.release()

    def signal_cancel(self, req_id: int) -> None:
        """Cancel ``req_id`` (and everything before it) on the worker."""
        self._flag.value = max(self._flag.value, req_id)

    def _receive(self, req_id: int, token):
        signalled = token is None
        while True:
            try:
                ready = self._conn.poll(_POLL_SECONDS)
                reply = self._conn.recv() if ready else None
            except (EOFError, OSError) as exc:
                raise WorkerError(
                    f"shard {self.index} worker died mid-request"
                ) from exc
            if reply is not None:
                rid, status, payload = reply
                if rid != req_id:
                    raise WorkerError(
                        f"shard {self.index} pipe desynchronized: got reply for "
                        f"request {rid}, expected {req_id}"
                    )
                if status == "ok":
                    return payload
                raise payload
            if not signalled and token.cancelled():
                self.signal_cancel(req_id)
                signalled = True
            if not self._process.is_alive() and not self._conn.poll(0):
                raise WorkerError(
                    f"shard {self.index} worker process exited "
                    f"(exitcode {self._process.exitcode})"
                )

    # -- lifecycle ----------------------------------------------------------

    def stop(self, timeout: float = _STOP_TIMEOUT) -> None:
        """Stop the worker: polite "stop" first, SIGTERM if it lingers."""
        self.signal_cancel(self._req)  # unblock any abandoned in-flight work
        if self._process.is_alive():
            try:
                self.call("stop", ())
            except WorkerError:
                pass  # already dead or pipe broken — join/terminate below
            self._process.join(timeout)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:
            pass


# Pools still open at interpreter exit get closed here.  Workers are
# daemonic as a second line of defense, but an orderly close lets them
# exit their loop instead of being killed mid-pickle.
_LIVE_POOLS: "weakref.WeakSet[ShardWorkerPool]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _shutdown_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass  # exit-time cleanup must never raise


class ShardWorkerPool:
    """One worker process per shard, queried over pipes.

    Parameters
    ----------
    shard_datasets:
        One :class:`~repro.trajectory.dataset.TrajectoryDataset` per
        shard; each worker builds its engine from its dataset.
    costs / engine_kwargs:
        Forwarded to every worker's ``SubtrajectorySearch``.
    start_method:
        ``multiprocessing`` start method (default:
        :func:`default_start_method`).
    per_shard_kwargs:
        Optional list (one dict per shard) of engine kwargs merged *over*
        ``engine_kwargs`` for that shard's worker — how the partitioned
        engine ships each worker its own frozen ``index_path`` (the path
        crosses the pipe, never the index: the worker mmaps the file).
    """

    def __init__(
        self,
        shard_datasets: Sequence,
        costs,
        engine_kwargs: Optional[Dict[str, Any]] = None,
        *,
        start_method: Optional[str] = None,
        per_shard_kwargs: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
    ) -> None:
        if per_shard_kwargs is not None and len(per_shard_kwargs) != len(
            shard_datasets
        ):
            raise WorkerError(
                f"expected {len(shard_datasets)} per-shard kwarg dicts, "
                f"got {len(per_shard_kwargs)}"
            )
        ctx = mp.get_context(start_method or default_start_method())
        self._closed = False
        self._workers: List[_ShardWorker] = []
        try:
            for index, dataset in enumerate(shard_datasets):
                kwargs = dict(engine_kwargs or {})
                if per_shard_kwargs is not None and per_shard_kwargs[index]:
                    kwargs.update(per_shard_kwargs[index])
                self._workers.append(
                    _ShardWorker(ctx, index, dataset, costs, kwargs)
                )
        except BaseException:
            self.close()
            raise
        global _ATEXIT_REGISTERED
        _LIVE_POOLS.add(self)
        if not _ATEXIT_REGISTERED:
            atexit.register(_shutdown_live_pools)
            _ATEXIT_REGISTERED = True

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def workers_alive(self) -> List[bool]:
        """Liveness of each worker process (diagnostics/tests)."""
        return [w.alive for w in self._workers]

    # -- queries ------------------------------------------------------------

    def query_shard(self, shard: int, query: Sequence[int], kwargs: Dict[str, Any],
                    cancel=None, trace_ctx=None):
        """Run one query on one shard worker (blocking round-trip).

        With ``trace_ctx`` (a ``(trace_id, parent_span_id)`` pair) the
        worker traces its engine query and the return value is
        ``(result, exported_spans)`` instead of the bare result."""
        self._check_open()
        payload = (list(query), kwargs, _remaining_of(cancel), trace_ctx)
        return self._workers[shard].call("query", payload, cancel)

    def query_all(
        self,
        query: Sequence[int],
        kwargs: Dict[str, Any],
        cancel=None,
        trace_ctxs: Optional[Sequence] = None,
        on_reply=None,
    ) -> List:
        """Fan one query out to every worker; results in shard order.

        Requests are *all sent before any reply is awaited* — that is what
        buys more than one core: every worker verifies concurrently while
        the parent merely waits.  On the first failure the remaining
        workers are cancelled (not abandoned), so no reply is ever left in
        a pipe.

        ``trace_ctxs`` (one span context per shard, or None) makes each
        worker return ``(result, exported_spans)`` — see
        :meth:`query_shard`.  ``on_reply(shard_index)`` is invoked right
        after each shard's reply is successfully collected (the hook the
        caller uses to close per-shard RPC spans at their true end).
        """
        self._check_open()
        if trace_ctxs is not None and len(trace_ctxs) != len(self._workers):
            raise WorkerError(
                f"expected {len(self._workers)} trace contexts, "
                f"got {len(trace_ctxs)}"
            )
        pending: List[Tuple[_ShardWorker, int]] = []
        try:
            for index, worker in enumerate(self._workers):
                ctx = None if trace_ctxs is None else trace_ctxs[index]
                payload = (list(query), kwargs, _remaining_of(cancel), ctx)
                pending.append((worker, worker.begin("query", payload)))
        except BaseException:
            for worker, rid in pending:
                worker.signal_cancel(rid)
                try:
                    worker.finish(rid, cancel)
                except Exception:
                    pass
            raise
        results: List = []
        first_error: Optional[BaseException] = None
        for pos, (worker, rid) in enumerate(pending):
            try:
                results.append(worker.finish(rid, cancel))
                if on_reply is not None:
                    on_reply(pos)
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                    # Tell the shards we have not collected yet to stop
                    # working — their (error) replies are still drained.
                    for later, later_rid in pending[pos + 1:]:
                        later.signal_cancel(later_rid)
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # -- diagnostics --------------------------------------------------------

    def cache_stats(self) -> List[Optional[Dict[str, Dict[str, int]]]]:
        """Per-worker engine-cache counters (``{"substitution": ...,
        "trie": ...}``), polled without blocking: a worker busy with an
        in-flight query yields ``None`` (the caller reports partial
        coverage instead of stalling)."""
        self._check_open()
        return [w.try_call("stats", ()) for w in self._workers]

    def substitution_cache_stats(self) -> List[Optional[Dict[str, int]]]:
        """Per-worker SubstitutionMatrix-LRU counters (see
        :meth:`cache_stats` for the polling semantics)."""
        return [
            None if part is None else part.get("substitution")
            for part in self.cache_stats()
        ]

    def trie_cache_stats(self) -> List[Optional[Dict[str, int]]]:
        """Per-worker TrieCache counters (see :meth:`cache_stats` for the
        polling semantics)."""
        return [
            None if part is None else part.get("trie")
            for part in self.cache_stats()
        ]

    # -- replication --------------------------------------------------------

    def replicate_add(self, shard: int, expected_local_id: int, trajectory,
                      *, validate: bool = False) -> int:
        """Apply one online insert on a shard worker, versioned.

        ``expected_local_id`` is the shard-local id the parent's replica
        assigns; the worker acknowledges only if its own insert agrees,
        so parent and worker cannot silently diverge.  Synchronous — when
        this returns, queries on that worker see the new trajectory
        (read-your-writes for the inserter).
        """
        self._check_open()
        return self._workers[shard].call(
            "add", (expected_local_id, trajectory, bool(validate))
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (idempotent; also runs via ``atexit``)."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for worker in self._workers:
            worker.stop()

    def _check_open(self) -> None:
        if self._closed:
            raise WorkerError("worker pool is closed")


def _remaining_of(cancel) -> Optional[float]:
    """The budget to ship with a request: seconds left on the token's
    deadline at send time (clamped at 0 so an expired token still yields
    an immediately-expired worker token), or ``None``."""
    if cancel is None:
        return None
    remaining = getattr(cancel, "remaining", None)
    if remaining is None:
        return None
    value = remaining()
    return None if value is None else max(0.0, value)
