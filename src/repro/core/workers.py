"""Cross-process shard workers: CPU-bound verification past the GIL.

The thread-pool fan-out of :class:`~repro.core.partitioned.
PartitionedSubtrajectorySearch` parallelizes I/O-ish work but not the
Smith–Waterman-style verification that dominates query cost (§6) — pure-
Python DP holds the GIL, so N shard threads share one core.  This module
moves each shard's engine into a long-lived **worker process**:

- workers are spawned once, at index build: each receives its shard's
  :class:`~repro.trajectory.dataset.TrajectoryDataset` + cost model +
  engine options and builds its :class:`~repro.core.engine.
  SubtrajectorySearch` locally (inheriting the engine's defaults,
  including the adaptive ``dp_backend="auto"`` verification path and the
  per-engine SubstitutionMatrix LRU), so the (expensive) index
  construction and the (large) index memory live only in the worker;
- queries travel as small pickled descriptors over a per-worker
  :func:`multiprocessing.Pipe`; results come back as pickled
  :class:`~repro.core.engine.QueryResult` objects (the merge-irrelevant
  ``subsequence`` field is stripped to keep replies small);
- deadlines survive the process boundary: the parent sends the *remaining*
  budget with each query and the worker rebuilds a local token from it, so
  clock-skew between processes cannot extend a deadline; the parent can
  additionally trip a per-worker shared cancellation flag
  (:class:`multiprocessing.Value`) that the worker's token polls between
  verification-loop iterations — abandoning a query stops shard CPU work
  within one iteration;
- online inserts replicate through a **versioned** ``add`` message: the
  parent sends the shard-local id it expects the insert to receive, and
  the worker acknowledges only if its replica agrees — any divergence
  (a lost or reordered update) surfaces as :class:`~repro.exceptions.
  WorkerError` instead of silently wrong answers, which is what the
  serving layer's cache-generation guarantees rest on;
- lifecycle is leak-proof: workers are daemon processes, pools shut down
  idempotently (a wedged worker is escalated SIGTERM → SIGKILL so it can
  never outlive ``close()``), and a module-level ``atexit`` hook
  terminates every pool still alive at interpreter exit (so ``repro
  serve --self-test`` cannot strand children).

**Fault tolerance** (the supervision layer; policy objects live in
:mod:`repro.core.supervision`):

- a pool-level *supervisor thread* polls worker liveness and respawns
  dead workers with bounded exponential backoff + per-shard jitter; the
  query path additionally respawns eagerly when it trips over a corpse,
  so recovery latency is bounded by one engine rebuild, not a poll tick;
- a respawned worker rebuilds its engine from the parent's shard dataset
  mirror, then the parent *replays its insert journal* — the write-ahead
  record of every acknowledged online insert — through the same
  versioned ``add`` protocol, so the replica is bit-identical to the
  crashed one (the handshake reports the rebuilt engine's length; only
  the entries past it replay, and any id disagreement fails loudly);
- a per-shard :class:`~repro.core.supervision.CircuitBreaker` (closed →
  open after N consecutive shard failures → half-open probe) keeps a
  flapping shard from eating every query's deadline: with the breaker
  open, queries either fail fast (:class:`~repro.exceptions.
  ShardUnavailableError`) or — with ``allow_partial`` — degrade to the
  live shards;
- :meth:`ShardWorkerPool.query_all` retries a dead shard's query exactly
  once on the respawned worker, within the caller's remaining deadline
  budget, re-shipping the *updated* remaining time;
- deterministic chaos: a :class:`~repro.faultinject.FaultPlan` ships
  per-shard worker-side fault tables into the children (kill before /
  after request K, delay or drop a reply, ignore stop) and parent-side
  respawn failures into the supervisor, all keyed to request ordinals
  that survive respawns — see :mod:`repro.faultinject`.

Protocol (one request in flight per worker, enforced by a parent-side
lock; every request gets exactly one reply, keeping the pipe in sync even
when the caller stops waiting):

    ("query", req_id, symbols, kwargs, remaining_seconds | None,
              trace_ctx | None)
    ("add",   req_id, expected_local_id, trajectory, validate)
    ("stats", req_id)                 -> {"substitution": ..., "trie": ...}
    ("ping",  req_id)                 -> {"pid": ...}   (liveness heartbeat)
    ("stop",  req_id)
    reply: (req_id, "ok", payload) | (req_id, "error", exception)

``trace_ctx`` is a ``(trace_id, parent_span_id)`` pair (see
:mod:`repro.obs.tracing`): when present, the worker wraps the engine
query in a local trace rooted at the shipped context and the "ok"
payload becomes ``(result, exported_spans)`` — span starts relative to
the worker root, re-anchored by the parent via ``Span.graft`` — so one
request's trace crosses the pickle boundary intact.  Untraced queries
keep the bare-``QueryResult`` payload.

plus a readiness handshake: the worker's first message (req 0) reports
whether its engine built — and, on success, the engine's dataset length
and pid (the journal-replay watermark) — so constructor errors (bad
engine options, mismatched representation) raise in the parent at pool
construction with their real cause, exactly as the in-process backends
do.

**Remote nodes** (``shard_map=``): the same protocol runs over the
length-prefixed socket transport of :mod:`repro.core.transport` against
standalone ``repro worker --listen`` node processes
(:mod:`repro.core.remote`).  Each (re)connection ships a ``hello``
carrying the shard dataset + engine config, and the node answers with
the same req-0 readiness handshake — so a *reconnect is a respawn*: the
node builds a fresh engine from the shipped snapshot and the parent
replays its insert journal past the handshake watermark before the
connection takes traffic.  Cancellation travels as an out-of-band
``("cancel", req_id)`` frame instead of a shared flag, per-call
deadlines derive from the shipped remaining budget (a half-open link
costs at most the caller's own budget), and the supervisor heartbeats
idle connections with ``ping`` so silent node death is detected without
traffic.  Network chaos (``conn_drop`` / ``conn_hang`` /
``slow_link_ms`` / ``short_write``) is injected client-side around the
sends, keyed to the same across-reconnect ordinals as worker faults.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing as mp
import os
import threading
import weakref
from collections import deque
from time import monotonic, sleep
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import transport
from repro.core.supervision import CircuitBreaker, RespawnBackoff, WorkerState
from repro.exceptions import ShardUnavailableError, TransportError, WorkerError

__all__ = ["ShardWorkerPool", "default_start_method"]

logger = logging.getLogger(__name__)

#: parent-side poll slice while waiting on a worker reply; bounds how fast
#: a tripped token propagates to the worker's shared flag.
_POLL_SECONDS = 0.02
#: grace given to a worker to exit after a "stop" before SIGTERM (and, a
#: join later, SIGKILL).
_STOP_TIMEOUT = 5.0
#: supervisor liveness-poll period.
_SUPERVISOR_POLL = 0.1
#: how long after the shipped remaining budget expires the parent keeps
#: waiting for a remote reply before declaring the link dead — covers
#: transport latency plus the worker's own cancellation reply.
_REMOTE_DEADLINE_GRACE = 5.0
#: bound on a remote readiness handshake (connection + engine build).
_REMOTE_HANDSHAKE_TIMEOUT = 120.0
#: bound on remote liveness/stats probes when no call timeout is set.
_REMOTE_PROBE_TIMEOUT = 5.0
#: period of the supervisor's remote heartbeat (idle connections get a
#: "ping" this often, so silent node death is detected without traffic).
_HEARTBEAT_INTERVAL = 1.0


def default_start_method() -> str:
    """The multiprocessing start method used when none is requested.

    ``REPRO_MP_START`` overrides; otherwise ``fork`` where available
    (instant worker start, no re-import or re-pickle of the shard data)
    — but only while the parent is single-threaded.  Forking a threaded
    parent (e.g. rebuilding an engine while an HTTP server is live) can
    deadlock the child on locks held mid-fork by other threads, so such
    parents get ``spawn``, which always works: the worker entry point and
    every shipped object are picklable.  (Supervised *respawns* reuse the
    pool's original context: the replacement worker must build from the
    same inheritance path as the one it replaces.)
    """
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    if "fork" in mp.get_all_start_methods() and threading.active_count() == 1:
        return "fork"
    return "spawn"


class _WorkerCancelToken:
    """Worker-side cancellation token for one request.

    Duck-types :class:`~repro.core.cancellation.CancelToken`: combines the
    deadline the parent shipped (as a *remaining* budget, re-anchored on
    the worker's own monotonic clock) with the pool's shared cancellation
    flag.  The flag holds a request-id watermark — every request id at or
    below it is cancelled — so one plain 64-bit store cancels the in-flight
    request without locks.
    """

    __slots__ = ("_req_id", "_flag", "_expires")

    def __init__(self, req_id: int, flag, remaining: Optional[float]) -> None:
        self._req_id = req_id
        self._flag = flag
        self._expires = None if remaining is None else monotonic() + remaining

    def cancelled(self) -> bool:
        if self._expires is not None and monotonic() >= self._expires:
            return True
        return self._flag.value >= self._req_id


def _worker_main(
    conn, flag, shard_index, dataset, costs, engine_kwargs,
    faults=None, request_offsets=None,
) -> None:
    """Worker process entry point: build the shard engine, serve the pipe.

    Top-level (not a closure) so ``spawn`` contexts can pickle it.  Every
    received request is answered exactly once; failures — including
    cancellations — travel back as pickled exceptions.  ``faults`` is an
    optional :class:`~repro.faultinject.WorkerFaults` table and
    ``request_offsets`` the per-kind ordinals already consumed by this
    shard's previous incarnations (so fault rules fire once across
    respawns).
    """
    # Imported here, not at module top, so the worker builds its engine
    # against whatever is on *its* path under spawn (and to keep this
    # module importable without pulling the whole engine in first).
    from repro.core.engine import SubtrajectorySearch

    if faults is not None:
        faults.install()
    counts: Dict[str, int] = dict(request_offsets or {})

    def _guarded_send(message) -> bool:
        """Send a reply; a pipe torn down mid-send (parent died, or the
        parent closed our conn racing this send) must end the loop
        cleanly, not crash the worker with traceback noise."""
        try:
            conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    # Readiness handshake (req 0): a failed engine build must raise in the
    # parent's constructor with its real cause, not as an opaque dead
    # worker at first query.  On success the payload carries the dataset
    # length — the parent's journal-replay watermark — and the pid.
    try:
        engine = SubtrajectorySearch(dataset, costs, **engine_kwargs)
    except BaseException as exc:  # noqa: BLE001 — ship the failure to the parent
        if not _guarded_send((0, "error", exc)):
            _guarded_send(
                (0, "error", WorkerError(f"engine build failed: {exc!r}"))
            )
        conn.close()
        return
    if not _guarded_send((0, "ok", {"len": len(dataset), "pid": os.getpid()})):
        conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break  # parent gone (or interactive interrupt): nothing to reply to
        kind, req_id = msg[0], msg[1]
        if kind == "ping":
            # Liveness heartbeat: answered before fault accounting so a
            # probe can never consume (or trip) a request-ordinal rule.
            if not _guarded_send((req_id, "ok", {"pid": os.getpid()})):
                break
            continue
        ordinal = 0
        if faults is not None and kind in ("query", "add"):
            ordinal = counts.get(kind, 0) + 1
            counts[kind] = ordinal
            faults.before(kind, ordinal)
            if faults.drop_pipe(kind, ordinal):
                conn.close()
                os._exit(70)
        try:
            if kind == "stop":
                if faults is not None and faults.wedge_stop:
                    continue  # chaos: pretend not to hear — forces escalation
                _guarded_send((req_id, "ok", None))
                break
            if kind == "query":
                symbols, kwargs, remaining = msg[2], msg[3], msg[4]
                trace_ctx = msg[5] if len(msg) > 5 else None
                token = _WorkerCancelToken(req_id, flag, remaining)
                if trace_ctx is None:
                    result = engine.query(symbols, cancel=token, **kwargs)
                    # The merge ignores the tau-subsequence; stripping it
                    # keeps reply pickles small (neighborhoods are large).
                    result.subsequence = []
                    payload = result
                else:
                    from repro.obs.tracing import Trace

                    trace = Trace(
                        "shard_worker",
                        trace_id=trace_ctx[0],
                        parent_id=trace_ctx[1],
                        shard=shard_index,
                        pid=os.getpid(),
                    )
                    result = engine.query(
                        symbols, cancel=token, trace=trace.root, **kwargs
                    )
                    result.subsequence = []
                    trace.finish()
                    payload = (result, trace.export())
                if faults is not None:
                    faults.delay(kind, ordinal)
                if not _guarded_send((req_id, "ok", payload)):
                    break
            elif kind == "add":
                expected, trajectory, validate = msg[2], msg[3], msg[4]
                tid = engine.add_trajectory(trajectory, validate=validate)
                if tid != expected:
                    raise WorkerError(
                        f"shard {shard_index} replica diverged: insert got local "
                        f"id {tid}, parent expected {expected}"
                    )
                if faults is not None:
                    faults.delay(kind, ordinal)
                if not _guarded_send((req_id, "ok", tid)):
                    break
            elif kind == "stats":
                # One combined payload for every engine-level cache plus
                # the index, so a single non-blocking poll serves all
                # observability consumers (healthz, /stats, /metrics,
                # aggregated shard stats).
                if not _guarded_send(
                    (
                        req_id,
                        "ok",
                        {
                            "substitution": engine.substitution_cache_stats(),
                            "trie": engine.trie_cache_stats(),
                            "index": engine.index_stats(),
                        },
                    )
                ):
                    break
            else:
                raise WorkerError(f"unknown message kind {kind!r}")
        except BaseException as exc:  # noqa: BLE001 — ship failures to the parent
            if not _guarded_send((req_id, "error", exc)):
                # Unpicklable exception: degrade to a description so the
                # parent still gets its one reply.  If even the fallback
                # cannot be sent the pipe is gone — exit the loop cleanly
                # instead of dying with a BrokenPipeError traceback.
                if not _guarded_send(
                    (req_id, "error", WorkerError(f"worker error: {exc!r}"))
                ):
                    break
            continue
        if faults is not None and kind in ("query", "add"):
            faults.after(kind, ordinal)
    try:
        conn.close()
    except OSError:
        pass


class _ShardWorker:
    """Parent-side proxy for one (respawnable) worker process.

    Serializes request/response round-trips with a lock (the worker is
    single-threaded, so pipelining would only queue in the pipe) and
    monitors process liveness while waiting, so a crashed worker surfaces
    as :class:`WorkerError` instead of a hang.  The constructor arguments
    are retained so the supervisor can respawn the process; ``restarts``
    counts completed respawns.
    """

    def __init__(
        self, ctx, index: int, dataset, costs, engine_kwargs: Dict[str, Any],
        faults=None,
    ) -> None:
        self.index = index
        self.restarts = 0
        self._ctx = ctx
        self._dataset = dataset
        self._costs = costs
        self._engine_kwargs = dict(engine_kwargs)
        self._faults = faults
        self._lock = threading.Lock()
        self._req = 0
        #: requests sent per kind over ALL incarnations — shipped to a
        #: respawned worker so fault-rule ordinals keep counting.
        self._sent: Dict[str, int] = {"query": 0, "add": 0}
        self._spawn()

    # -- process lifecycle --------------------------------------------------

    def _spawn(self) -> Dict[str, Any]:
        """Start (or restart) the worker process and run the readiness
        handshake.  Returns the handshake payload (engine length, pid).
        The caller must hold ``_lock`` on every call but the first."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Raw (lockless) value is enough: single writer semantics per
        # request, and a stale read only delays cancellation by one poll.
        self._flag = self._ctx.Value("q", 0, lock=False)
        self._process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._flag,
                self.index,
                self._dataset,
                self._costs,
                dict(self._engine_kwargs),
                self._faults,
                dict(self._sent),
            ),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        # Block until the worker reports its engine built (req 0); engine
        # construction errors re-raise here with their original type.
        return self._receive(0, None)

    def _teardown_incarnation(self) -> None:
        """Dispose of the current (dead or dying) incarnation before a
        respawn.  Caller must hold ``_lock``."""
        if self._process.is_alive():
            # Pipe-level death (dropped conn) with the process lingering:
            # the old incarnation must not keep burning CPU beside the new.
            self._process.kill()
            self._process.join(_STOP_TIMEOUT)
        try:
            self._conn.close()
        except OSError:
            pass

    def _dead_reason(self) -> str:
        return (
            f"shard {self.index} worker process exited "
            f"(exitcode {self._process.exitcode})"
        )

    def respawn(self, journal: Sequence[Tuple[int, Any, bool]]) -> None:
        """Replace a dead worker with a fresh process and replay the
        insert journal so the replica is bit-identical.

        Caller must hold ``_lock``.  The handshake reports the rebuilt
        engine's dataset length; only journal entries at or past that
        watermark replay (the respawn dataset mirror normally already
        contains every acknowledged insert — the journal closes the race
        where an insert was acknowledged but not yet mirrored when the
        respawn snapshot was taken).  Any id disagreement during replay
        raises :class:`WorkerError` — divergence fails loudly.
        """
        self._teardown_incarnation()
        handshake = self._spawn()
        watermark = int(handshake.get("len", 0)) if handshake else 0
        for expected, trajectory, validate in journal:
            if expected < watermark:
                continue  # already inside the respawn dataset snapshot
            self._req += 1
            self._sent["add"] += 1  # replays consume fault ordinals too
            req_id = self._req
            self._conn.send(("add", req_id, expected, trajectory, validate))
            self._receive(req_id, None)  # versioned: divergence raises
        self.restarts += 1

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    @property
    def daemon(self) -> bool:
        return self._process.daemon

    # -- request/response ---------------------------------------------------

    def call(self, kind: str, payload: Tuple, token=None):
        """One round-trip: send ``(kind, ...payload)``, await the reply."""
        req_id = self.begin(kind, payload)
        return self.finish(req_id, token)

    def try_call(self, kind: str, payload: Tuple):
        """Like :meth:`call`, but returns ``None`` instead of waiting when
        the worker is busy with an in-flight request.

        Diagnostics path (``/healthz`` polling a worker's cache stats):
        a liveness probe must never queue behind a long-running
        verification on the single-request-per-worker pipe.  A *dead*
        worker raises :class:`WorkerError` (never hangs)."""
        if not self._lock.acquire(blocking=False):
            return None
        try:
            if not self.alive:
                raise WorkerError(self._dead_reason())
            self._req += 1
            req_id = self._req
            self._conn.send((kind, req_id, *payload))
            return self._receive(req_id, None)
        except (OSError, ValueError) as exc:
            raise WorkerError(
                f"shard {self.index} worker unreachable: {exc}"
            ) from exc
        finally:
            self._lock.release()

    def begin(self, kind: str, payload: Tuple) -> int:
        """Send a request and return its id *without* waiting.

        Acquires this worker's lock; the caller MUST pair every successful
        ``begin`` with exactly one ``finish`` (which releases it).
        """
        self._lock.acquire()
        try:
            self._req += 1
            req_id = self._req
            if kind in self._sent:
                self._sent[kind] += 1
            self._conn.send((kind, req_id, *payload))
            return req_id
        except BaseException as exc:
            self._lock.release()
            if isinstance(exc, (OSError, ValueError)):
                raise WorkerError(
                    f"shard {self.index} worker unreachable: {exc}"
                ) from exc
            raise

    def finish(self, req_id: int, token=None):
        """Await the reply to ``req_id``, polling ``token`` while waiting.

        When the token trips, the worker's shared flag is raised so the
        worker abandons the request within one verification-loop iteration
        — and still sends its (error) reply, keeping the pipe in sync.
        """
        try:
            return self._receive(req_id, token)
        finally:
            self._lock.release()

    def signal_cancel(self, req_id: int) -> None:
        """Cancel ``req_id`` (and everything before it) on the worker."""
        self._flag.value = max(self._flag.value, req_id)

    def _receive(self, req_id: int, token):
        signalled = token is None
        while True:
            try:
                ready = self._conn.poll(_POLL_SECONDS)
                reply = self._conn.recv() if ready else None
            except (EOFError, OSError) as exc:
                raise WorkerError(
                    f"shard {self.index} worker died mid-request"
                ) from exc
            if reply is not None:
                rid, status, payload = reply
                if rid != req_id:
                    raise WorkerError(
                        f"shard {self.index} pipe desynchronized: got reply for "
                        f"request {rid}, expected {req_id}"
                    )
                if status == "ok":
                    return payload
                raise payload
            if not signalled and token.cancelled():
                self.signal_cancel(req_id)
                signalled = True
            if not self.alive and not self._conn.poll(0):
                raise WorkerError(self._dead_reason())

    # -- lifecycle ----------------------------------------------------------

    def stop(self, timeout: float = _STOP_TIMEOUT) -> None:
        """Stop the worker: polite "stop", SIGTERM if it lingers, SIGKILL
        if it is wedged — a worker can never outlive ``close()``."""
        self.signal_cancel(self._req)  # unblock any abandoned in-flight work
        if self._process.is_alive():
            # Polite phase: send "stop" without waiting for the reply (the
            # join below observes the orderly exit; the unread reply dies
            # with the pipe).  A worker wedged mid-request may hold the
            # lock indefinitely — bound the wait and escalate instead.
            acquired = self._lock.acquire(timeout=timeout)
            try:
                if acquired:
                    try:
                        self._req += 1
                        self._conn.send(("stop", self._req))
                    except (OSError, ValueError):
                        pass  # already dead or pipe broken — escalate below
            finally:
                if acquired:
                    self._lock.release()
            self._process.join(timeout)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout)
            if self._process.is_alive():
                # SIGTERM ignored (wedged in native code, or a chaos
                # `wedge_stop` fault): SIGKILL cannot be ignored.
                self._process.kill()
                self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:
            pass


class _RemoteShardWorker(_ShardWorker):
    """Parent-side proxy for one shard served by a remote worker node
    over the framed socket transport.

    Shares the request/response machinery of :class:`_ShardWorker` (lock,
    req ids, begin/finish pairing, journal-replaying ``respawn``) but the
    "process" is a TCP connection to a ``repro worker --listen`` node:

    - **connection = incarnation**: every (re)connection ships a
      ``hello`` carrying the shard dataset snapshot + engine config, and
      the node builds a *fresh* engine for it, answering with the usual
      req-0 readiness handshake.  A surviving node-side engine across
      reconnects would be unsound: an insert the node committed whose ack
      was lost in a connection drop would leave the replica permanently
      ahead of the parent's expected ids.  Rebuild-from-snapshot plus
      journal replay past the handshake watermark — exactly the pipe
      backend's respawn semantics — makes reconnection idempotent;
    - ``restarts`` therefore counts *reconnects* (the
      ``repro_node_reconnects_total`` metric);
    - cancellation is an out-of-band ``("cancel", req_id)`` frame on the
      same full-duplex socket (the node's reader thread folds it into the
      engine's shared flag); the node still sends its one reply, keeping
      the stream in sync;
    - per-call deadlines: a query's reply must arrive within the shipped
      remaining budget plus a grace window, other calls within
      ``call_timeout`` (when set).  Expiry **poisons the connection** —
      a late reply would desynchronize the next request — so the link is
      dropped and the normal reconnect path takes over.  This is the only
      way a half-open connection (``conn_hang``, a silently dead peer)
      is ever unmasked;
    - injected network chaos (:class:`~repro.faultinject.NetworkFaults`)
      is consulted around every request send, keyed to this proxy's
      per-kind send ordinals, which persist across reconnects.
    """

    def __init__(
        self,
        index: int,
        address: str,
        dataset,
        costs,
        engine_kwargs: Dict[str, Any],
        faults=None,
        net_faults=None,
        *,
        connect_timeout: float = 5.0,
        call_timeout: Optional[float] = None,
        max_frame: int = transport.DEFAULT_MAX_FRAME,
    ) -> None:
        self.index = index
        self.restarts = 0
        self.address = str(address)
        self._host, self._port = transport.parse_hostport(address)
        self._dataset = dataset
        self._costs = costs
        self._engine_kwargs = dict(engine_kwargs)
        self._faults = faults
        self._net_faults = net_faults
        self._connect_timeout = connect_timeout
        self._call_timeout = call_timeout
        self._max_frame = max_frame
        self._lock = threading.Lock()
        self._req = 0
        self._sent: Dict[str, int] = {"query": 0, "add": 0}
        self._conn: Optional[transport.FramedSocket] = None
        self._connected = False
        self._pid: Optional[int] = None
        #: absolute monotonic deadline of the in-flight call (one request
        #: in flight per worker, so a scalar is enough).
        self._call_expires: Optional[float] = None
        self._spawn()

    # -- connection lifecycle ----------------------------------------------

    def _spawn(self) -> Dict[str, Any]:
        """(Re)connect to the node, ship the hello, run the handshake.
        Returns the handshake payload (engine length = replay watermark,
        node pid).  Caller must hold ``_lock`` on every call but the
        first.

        ``connect_timeout`` is a *total* budget over the whole attempt —
        connect, hello, and handshake are all retried inside it.  A
        killed node's replacement takes a moment to rebind its port, and
        the race has more than one losing shape: connection-refused
        before the rebind, but also an RST or EOF *mid-handshake* when
        the connect lands on a node that is still going down.  Any
        transport failure before the handshake completes just means
        "this incarnation attempt lost the race" — try again until the
        budget runs out."""
        deadline = monotonic() + self._connect_timeout
        while True:
            try:
                return self._spawn_once()
            except TransportError:
                self._teardown_incarnation()
                if monotonic() >= deadline:
                    raise
                sleep(0.05)

    def _spawn_once(self) -> Dict[str, Any]:
        conn = transport.connect(
            self._host,
            self._port,
            timeout=self._connect_timeout,
            max_frame=self._max_frame,
        )
        self._conn = conn
        self._connected = True
        self._call_expires = monotonic() + _REMOTE_HANDSHAKE_TIMEOUT
        conn.send(
            (
                "hello",
                0,
                {
                    "shard": self.index,
                    "dataset": self._dataset,
                    "costs": self._costs,
                    "engine_kwargs": dict(self._engine_kwargs),
                    "faults": self._faults,
                    "request_offsets": dict(self._sent),
                },
            )
        )
        handshake = self._receive(0, None)
        self._pid = int(handshake.get("pid", 0)) or None
        return handshake

    def _teardown_incarnation(self) -> None:
        self._connected = False
        if self._conn is not None:
            self._conn.close()

    def _dead_reason(self) -> str:
        return f"shard {self.index} node {self.address} is disconnected"

    @property
    def alive(self) -> bool:
        return (
            self._connected and self._conn is not None and not self._conn.closed
        )

    @property
    def pid(self) -> Optional[int]:
        """The node process's pid as reported in the handshake."""
        return self._pid

    @property
    def daemon(self) -> bool:
        return True  # the node is external; nothing here outlives us

    def heartbeat(self) -> None:
        """Idle-connection liveness probe: a bounded ``ping`` that flips
        :attr:`alive` off when the node is gone (the supervisor's
        reconnect path takes it from there).  Skips silently when the
        connection is busy with an in-flight request — traffic is its own
        heartbeat."""
        try:
            self.try_call("ping", ())
        except WorkerError:
            pass  # _receive already marked the connection dead

    # -- request/response ---------------------------------------------------

    def begin(self, kind: str, payload: Tuple) -> int:
        self._lock.acquire()
        try:
            self._req += 1
            req_id = self._req
            ordinal = 0
            if kind in self._sent:
                self._sent[kind] += 1
                ordinal = self._sent[kind]
            # Per-call deadline: the shipped remaining budget (queries
            # carry it at payload[2]) plus grace, else the static call
            # timeout.  None = wait forever, exactly like a pipe.
            remaining = payload[2] if kind == "query" else None
            budget = (
                remaining + _REMOTE_DEADLINE_GRACE
                if remaining is not None
                else self._call_timeout
            )
            self._call_expires = (
                None if budget is None else monotonic() + budget
            )
            conn = self._conn
            if conn is None or conn.closed:
                raise WorkerError(self._dead_reason())
            net = self._net_faults
            chunk = None
            if net is not None and ordinal:
                latency = net.latency(kind, ordinal)
                if latency > 0:
                    sleep(latency)
                if net.hang(kind, ordinal):
                    conn.hang()
                chunk = net.short_write(kind, ordinal)
            conn.send((kind, req_id, *payload), chunk=chunk)
            if net is not None and ordinal and net.drop_after(kind, ordinal):
                conn.drop()
            return req_id
        except BaseException as exc:
            self._lock.release()
            if isinstance(exc, TransportError):
                self._connected = False
            raise

    def try_call(self, kind: str, payload: Tuple):
        if not self._lock.acquire(blocking=False):
            return None
        try:
            if not self.alive:
                raise WorkerError(self._dead_reason())
            self._req += 1
            req_id = self._req
            budget = (
                self._call_timeout
                if self._call_timeout is not None
                else _REMOTE_PROBE_TIMEOUT
            )
            self._call_expires = monotonic() + budget
            self._conn.send((kind, req_id, *payload))
            return self._receive(req_id, None)
        except TransportError:
            self._connected = False
            raise
        finally:
            self._lock.release()

    def signal_cancel(self, req_id: int) -> None:
        """Cancel ``req_id`` on the node via an out-of-band frame (the
        socket is full-duplex; the node's reader thread consumes it
        without a reply, so the stream stays one-reply-per-request)."""
        conn = self._conn
        if conn is None or conn.closed:
            return
        try:
            conn.send(("cancel", req_id))
        except (TransportError, OSError):
            pass  # a torn link is already being handled by the caller

    def _receive(self, req_id: int, token):
        signalled = token is None
        expires = self._call_expires
        while True:
            conn = self._conn
            if not self._connected or conn is None or conn.closed:
                raise WorkerError(self._dead_reason())
            try:
                reply = conn.recv() if conn.poll(_POLL_SECONDS) else None
            except TransportError:
                self._connected = False
                raise
            if reply is not None:
                rid, status, payload = reply
                if rid != req_id:
                    self._connected = False
                    conn.drop()
                    raise WorkerError(
                        f"shard {self.index} stream desynchronized: got reply "
                        f"for request {rid}, expected {req_id}"
                    )
                if status == "ok":
                    return payload
                raise payload
            if not signalled and token.cancelled():
                self.signal_cancel(req_id)
                signalled = True
            if expires is not None and monotonic() >= expires:
                # A late reply would poison the next request's framing —
                # a timed-out link must be torn down, never reused.
                self._connected = False
                conn.drop()
                raise TransportError(
                    f"shard {self.index} node {self.address}: no reply "
                    "within the per-call deadline"
                )
            if conn.hung and expires is None:
                # Injected half-open link with nothing bounding the wait:
                # fail deterministically instead of spinning forever.
                self._connected = False
                conn.drop()
                raise TransportError(
                    f"shard {self.index} node {self.address}: link went "
                    "half-open with no call deadline"
                )

    # -- lifecycle ----------------------------------------------------------

    def stop(self, timeout: float = _STOP_TIMEOUT) -> None:
        """End this connection's engine politely and disconnect.  The
        node itself is an external process with its own lifecycle — pool
        shutdown must never kill it."""
        conn = self._conn
        if conn is None:
            return
        if self.alive:
            acquired = self._lock.acquire(timeout=timeout)
            try:
                if acquired:
                    try:
                        self._req += 1
                        conn.send(("stop", self._req))
                    except (TransportError, OSError):
                        pass
            finally:
                if acquired:
                    self._lock.release()
        self._connected = False
        conn.close()


# Pools still open at interpreter exit get closed here.  Workers are
# daemonic as a second line of defense, but an orderly close lets them
# exit their loop instead of being killed mid-pickle.
_LIVE_POOLS: "weakref.WeakSet[ShardWorkerPool]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _shutdown_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass  # exit-time cleanup must never raise


class ShardWorkerPool:
    """One worker process per shard, queried over pipes, supervised.

    Parameters
    ----------
    shard_datasets:
        One :class:`~repro.trajectory.dataset.TrajectoryDataset` per
        shard; each worker builds its engine from its dataset.  The pool
        keeps the reference: a respawned worker rebuilds from the same
        (possibly since-grown) dataset mirror, topped up by the insert
        journal.
    costs / engine_kwargs:
        Forwarded to every worker's ``SubtrajectorySearch``.
    start_method:
        ``multiprocessing`` start method (default:
        :func:`default_start_method`).
    per_shard_kwargs:
        Optional list (one dict per shard) of engine kwargs merged *over*
        ``engine_kwargs`` for that shard's worker — how the partitioned
        engine ships each worker its own frozen ``index_path`` (the path
        crosses the pipe, never the index: the worker mmaps the file —
        including again on every respawn).
    supervise:
        Run the supervisor thread (liveness poll + respawn with backoff)
        and enable the query path's respawn-and-retry.  Off, a dead
        worker stays dead and every query to it raises
        :class:`WorkerError` — the pre-supervision semantics, kept for
        tests that pin crash behavior.
    fault_plan:
        Optional :class:`~repro.faultinject.FaultPlan` — deterministic
        chaos, see that module.
    breaker_failures / breaker_cooldown:
        Per-shard circuit breaker: consecutive shard failures that open
        it, and seconds before a half-open probe is allowed.
    respawn_backoff / respawn_backoff_cap:
        Base and cap (seconds) of the supervisor's exponential respawn
        backoff (jittered per shard).
    shard_map:
        One ``"host:port"`` node address per shard.  When given, shards
        are served by standalone ``repro worker --listen`` node processes
        over the framed socket transport instead of child processes —
        respawns become reconnects (hello + handshake + journal replay),
        the supervisor heartbeats idle connections, and injected network
        faults from ``fault_plan`` apply around the sends.
    connect_timeout / call_timeout:
        Socket-transport bounds (remote only): TCP connect timeout, and
        the per-call reply deadline used when a request ships no
        remaining budget (None = wait forever, like a pipe; queries that
        carry a budget are always bounded by it plus a grace window).
    """

    def __init__(
        self,
        shard_datasets: Sequence,
        costs,
        engine_kwargs: Optional[Dict[str, Any]] = None,
        *,
        start_method: Optional[str] = None,
        per_shard_kwargs: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
        supervise: bool = True,
        fault_plan=None,
        breaker_failures: int = 3,
        breaker_cooldown: float = 1.0,
        respawn_backoff: float = 0.05,
        respawn_backoff_cap: float = 2.0,
        supervisor_poll: float = _SUPERVISOR_POLL,
        shard_map: Optional[Sequence[str]] = None,
        connect_timeout: float = 5.0,
        call_timeout: Optional[float] = None,
        heartbeat_interval: float = _HEARTBEAT_INTERVAL,
    ) -> None:
        if per_shard_kwargs is not None and len(per_shard_kwargs) != len(
            shard_datasets
        ):
            raise WorkerError(
                f"expected {len(shard_datasets)} per-shard kwarg dicts, "
                f"got {len(per_shard_kwargs)}"
            )
        if shard_map is not None and len(shard_map) != len(shard_datasets):
            raise WorkerError(
                f"shard map has {len(shard_map)} nodes but the pool has "
                f"{len(shard_datasets)} shards"
            )
        self._remote = shard_map is not None
        ctx = (
            None
            if self._remote
            else mp.get_context(start_method or default_start_method())
        )
        self._closed = False
        self._workers: List[_ShardWorker] = []
        self._supervise = bool(supervise)
        self._heartbeat_interval = heartbeat_interval
        self._fault_plan = fault_plan
        seed = 0 if fault_plan is None else int(getattr(fault_plan, "seed", 0))
        n = len(shard_datasets)
        self._journals: List[List[Tuple[int, Any, bool]]] = [[] for _ in range(n)]
        self._breakers = [
            CircuitBreaker(
                failure_threshold=breaker_failures, cooldown=breaker_cooldown
            )
            for _ in range(n)
        ]
        self._backoffs = [
            RespawnBackoff(
                base=respawn_backoff, cap=respawn_backoff_cap, seed=seed + i
            )
            for i in range(n)
        ]
        self._respawn_attempts = [0] * n
        self._respawn_not_before = [0.0] * n
        self._respawn_fail_budget = [
            0 if fault_plan is None else fault_plan.respawn_failures(i)
            for i in range(n)
        ]
        self._last_errors = [""] * n
        self._events: List[deque] = [deque(maxlen=16) for _ in range(n)]
        self._supervisor_poll = supervisor_poll
        self._supervisor: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        try:
            for index, dataset in enumerate(shard_datasets):
                kwargs = dict(engine_kwargs or {})
                if per_shard_kwargs is not None and per_shard_kwargs[index]:
                    kwargs.update(per_shard_kwargs[index])
                faults = (
                    None if fault_plan is None else fault_plan.worker_faults(index)
                )
                if shard_map is not None:
                    net = (
                        None
                        if fault_plan is None
                        else fault_plan.network_faults(index)
                    )
                    self._workers.append(
                        _RemoteShardWorker(
                            index,
                            shard_map[index],
                            dataset,
                            costs,
                            kwargs,
                            faults,
                            net,
                            connect_timeout=connect_timeout,
                            call_timeout=call_timeout,
                        )
                    )
                else:
                    self._workers.append(
                        _ShardWorker(ctx, index, dataset, costs, kwargs, faults)
                    )
        except BaseException:
            self.close()
            raise
        global _ATEXIT_REGISTERED
        _LIVE_POOLS.add(self)
        if not _ATEXIT_REGISTERED:
            atexit.register(_shutdown_live_pools)
            _ATEXIT_REGISTERED = True
        if self._supervise:
            self._supervisor = threading.Thread(
                target=self._supervise_loop,
                name="repro-shard-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def supervised(self) -> bool:
        """Whether the supervisor thread and query-path retry are on."""
        return self._supervise

    @property
    def remote(self) -> bool:
        """Whether shards are served by remote nodes over sockets."""
        return self._remote

    def nodes(self) -> List[Optional[str]]:
        """Per-shard node addresses (None entries on the pipe backend)."""
        return [getattr(w, "address", None) for w in self._workers]

    def workers_alive(self) -> List[bool]:
        """Liveness of each worker process (diagnostics/tests)."""
        return [w.alive for w in self._workers]

    # -- supervision --------------------------------------------------------

    def _supervise_loop(self) -> None:
        """Liveness poll: respawn dead workers on the backoff schedule.

        Runs until ``close()``.  Never raises; a failed respawn is
        recorded and retried after backoff.  On the remote transport the
        loop doubles as the heartbeat: idle connections get a bounded
        ``ping`` every ``heartbeat_interval`` seconds, so a silently dead
        node flips to not-alive (and into this same respawn/reconnect
        path) without waiting for query traffic to trip over it."""
        next_beat = monotonic() + self._heartbeat_interval
        while not self._stop_event.wait(self._supervisor_poll):
            if self._closed:
                break
            beat = False
            if self._remote and monotonic() >= next_beat:
                beat = True
                next_beat = monotonic() + self._heartbeat_interval
            for shard, worker in enumerate(self._workers):
                if worker.alive:
                    if beat:
                        try:
                            worker.heartbeat()
                        except Exception:  # noqa: BLE001 — loop must survive
                            logger.exception(
                                "heartbeat of shard %d failed", shard
                            )
                    continue
                try:
                    self._try_respawn(shard, blocking=False)
                except Exception:  # noqa: BLE001 — the loop must survive
                    logger.exception("supervisor respawn of shard %d failed", shard)

    def _try_respawn(
        self,
        shard: int,
        *,
        blocking: bool,
        force: bool = False,
        seen_restarts: Optional[int] = None,
    ) -> bool:
        """Attempt to bring ``shard``'s worker back up.  Returns True when
        the worker is alive afterwards (already, or freshly respawned).

        ``blocking`` waits (bounded) for the worker lock — the query-path
        retry; non-blocking skips the tick when the lock is busy — the
        supervisor, which must never queue behind an in-flight request.
        The blocking wait is bounded rather than infinite because a
        fan-out retry may still hold *later* shards' locks: an unbounded
        wait here against another fan-out holding this lock while wanting
        one of ours would deadlock.  ``force`` ignores the backoff window
        — used by the query path, whose bound is the caller's own
        deadline budget.

        ``seen_restarts`` is the worker's restart generation the caller
        observed *failing*.  A dying worker closes its pipe before
        ``waitpid`` reports it dead, so ``is_alive()`` can stay True for
        a worker whose requests already EOF — trusting it would retry on
        a corpse's pipe.  When the generation hasn't changed since the
        failure, respawn over the stale-alive process (``respawn`` kills
        any lingering incarnation first); when it has, the supervisor
        beat us to it and the live worker really is fresh.
        """
        if self._closed or not self._supervise:
            return False
        worker = self._workers[shard]
        if blocking:
            if not worker._lock.acquire(timeout=2.0):
                # The lock is usually held by the supervisor mid-respawn
                # (a remote reconnect can take up to connect_timeout).
                # Giving up here would lose the caller's retry — instead
                # wait, bounded, for the holder's outcome: a changed
                # generation means the worker came back fresh and the
                # caller can simply retry on it.
                budget = getattr(worker, "_connect_timeout", 0.0) + 2.0
                waited = 0.0
                acquired = False
                while waited < budget:
                    if worker.alive and not (
                        seen_restarts is not None
                        and worker.restarts == seen_restarts
                    ):
                        return True
                    if worker._lock.acquire(timeout=0.1):
                        acquired = True
                        break
                    waited += 0.1
                if not acquired:
                    return False
        elif not worker._lock.acquire(blocking=False):
            return False
        try:
            if self._closed:
                return False
            if worker.alive and not (
                seen_restarts is not None and worker.restarts == seen_restarts
            ):
                return True
            now = monotonic()
            if not force and now < self._respawn_not_before[shard]:
                return False
            if self._respawn_fail_budget[shard] > 0:
                # Injected respawn failure (deterministic chaos): consume
                # one budget unit and behave exactly like a real failure.
                self._respawn_fail_budget[shard] -= 1
                self._note_respawn_failure(
                    shard, "fault-injected respawn failure"
                )
                return False
            try:
                worker.respawn(list(self._journals[shard]))
            except BaseException as exc:  # noqa: BLE001 — recorded, retried
                self._note_respawn_failure(shard, repr(exc))
                return False
            self._respawn_attempts[shard] = 0
            self._respawn_not_before[shard] = 0.0
            self._last_errors[shard] = ""
            self._events[shard].append(f"respawned pid={worker.pid}")
            logger.warning(
                "shard %d worker respawned (pid %s, restart #%d)",
                shard, worker.pid, worker.restarts,
            )
            return True
        finally:
            worker._lock.release()

    def _note_respawn_failure(self, shard: int, error: str) -> None:
        attempt = self._respawn_attempts[shard]
        delay = self._backoffs[shard].delay(attempt)
        self._respawn_attempts[shard] = attempt + 1
        self._respawn_not_before[shard] = monotonic() + delay
        self._last_errors[shard] = error
        self._events[shard].append(
            f"respawn failed (attempt {attempt + 1}, backoff {delay:.3f}s): {error}"
        )

    def _note_shard_failure(self, shard: int, exc: BaseException) -> None:
        self._breakers[shard].record_failure()
        self._last_errors[shard] = repr(exc)
        self._events[shard].append(f"query failed: {type(exc).__name__}")

    def worker_states(self) -> List[WorkerState]:
        """Per-shard supervision snapshots (the ``/healthz`` payload)."""
        now = monotonic()
        states = []
        for shard, worker in enumerate(self._workers):
            breaker = self._breakers[shard]
            states.append(
                WorkerState(
                    shard=shard,
                    alive=worker.alive,
                    pid=worker.pid,
                    restarts=worker.restarts,
                    breaker=breaker.state,
                    consecutive_failures=breaker.consecutive_failures,
                    respawn_wait=max(
                        0.0, self._respawn_not_before[shard] - now
                    ),
                    last_error=self._last_errors[shard],
                    events=list(self._events[shard]),
                    node=getattr(worker, "address", None),
                    retry_after=breaker.cooldown_remaining(),
                )
            )
        return states

    def restarts_total(self) -> int:
        """Completed worker respawns across all shards (monotonic).  On
        the remote transport a "respawn" is a completed reconnect —
        this is also the ``repro_node_reconnects_total`` figure."""
        return sum(w.restarts for w in self._workers)

    def retry_after(self) -> float:
        """Seconds a client should wait before retrying: the soonest any
        currently-open breaker will admit a probe (0 when none is open).
        The HTTP layer turns this into the 503 ``Retry-After`` header."""
        waits = [
            b.cooldown_remaining()
            for b in self._breakers
            if b.state == "open"
        ]
        return min(waits) if waits else 0.0

    # -- queries ------------------------------------------------------------

    def query_shard(self, shard: int, query: Sequence[int], kwargs: Dict[str, Any],
                    cancel=None, trace_ctx=None, on_event=None):
        """Run one query on one shard worker (blocking round-trip), with
        the same breaker gate and respawn-and-retry-once the fan-out path
        applies.

        With ``trace_ctx`` (a ``(trace_id, parent_span_id)`` pair) the
        worker traces its engine query and the return value is
        ``(result, exported_spans)`` instead of the bare result."""
        self._check_open()
        breaker = self._breakers[shard]
        if not breaker.allow():
            raise ShardUnavailableError(
                f"shard {shard} circuit breaker is {breaker.state}"
            )
        worker = self._workers[shard]

        def attempt():
            payload = (list(query), kwargs, _remaining_of(cancel), trace_ctx)
            return worker.call("query", payload, cancel)

        try:
            result = attempt()
        except WorkerError as exc:
            failed_gen = worker.restarts
            self._note_shard_failure(shard, exc)
            if not self._retry_budget_left(cancel) or not self._try_respawn(
                shard, blocking=True, force=True, seen_restarts=failed_gen
            ):
                raise
            if on_event is not None:
                on_event(shard, "retried")
            try:
                result = attempt()
            except WorkerError as retry_exc:
                self._note_shard_failure(shard, retry_exc)
                raise
        breaker.record_success()
        return result

    def _retry_budget_left(self, cancel) -> bool:
        """Whether the caller's deadline still has room for a retry."""
        if not self._supervise:
            return False
        return cancel is None or not cancel.cancelled()

    def query_all(
        self,
        query: Sequence[int],
        kwargs: Dict[str, Any],
        cancel=None,
        trace_ctxs: Optional[Sequence] = None,
        on_reply=None,
        *,
        allow_partial: bool = False,
        on_event: Optional[Callable[[int, str], None]] = None,
    ) -> List:
        """Fan one query out to every worker; results in shard order.

        Requests are *all sent before any reply is awaited* — that is what
        buys more than one core: every worker verifies concurrently while
        the parent merely waits.  On the first non-retryable failure the
        remaining workers are cancelled (not abandoned), so no reply is
        ever left in a pipe.

        Fault tolerance: a shard whose worker died (``WorkerError``) is
        respawned and retried exactly once within the remaining deadline
        budget; a shard whose circuit breaker is open is not even sent to.
        With ``allow_partial=False`` (the default) any shard that stays
        down fails the whole query loudly; with ``allow_partial=True``
        such shards yield ``None`` in the result list (callers mark the
        merged answer ``complete=False``) — unless *every* shard is down,
        which always raises.

        ``trace_ctxs`` (one span context per shard, or None) makes each
        worker return ``(result, exported_spans)`` — see
        :meth:`query_shard`.  ``on_reply(shard_index)`` is invoked right
        after each shard's reply is successfully collected (the hook the
        caller uses to close per-shard RPC spans at their true end).
        ``on_event(shard_index, event)`` reports retry/degrade decisions
        (``"retried"`` / ``"degraded"`` / ``"breaker_open"``) for span
        annotation.
        """
        self._check_open()
        n = len(self._workers)
        if trace_ctxs is not None and len(trace_ctxs) != n:
            raise WorkerError(
                f"expected {n} trace contexts, got {len(trace_ctxs)}"
            )

        def payload_for(shard: int) -> Tuple:
            ctx = None if trace_ctxs is None else trace_ctxs[shard]
            # Rebuilt per (re)send so a retry ships the *updated*
            # remaining deadline budget.
            return (list(query), kwargs, _remaining_of(cancel), ctx)

        def emit(shard: int, event: str) -> None:
            if on_event is not None:
                on_event(shard, event)

        # req id per shard, or None for shards not sent to (breaker open /
        # send failed and degraded).
        pending: List[Optional[int]] = [None] * n
        degraded: List[bool] = [False] * n
        first_error: Optional[BaseException] = None

        def fail_shard(shard: int, exc: BaseException) -> None:
            nonlocal first_error
            if allow_partial:
                degraded[shard] = True
                emit(shard, "degraded")
            elif first_error is None:
                first_error = exc

        # -- send phase ----------------------------------------------------
        try:
            for shard, worker in enumerate(self._workers):
                if first_error is not None:
                    break  # strict mode already doomed: don't start more work
                if not self._breakers[shard].allow():
                    emit(shard, "breaker_open")
                    fail_shard(
                        shard,
                        ShardUnavailableError(
                            f"shard {shard} circuit breaker is "
                            f"{self._breakers[shard].state}"
                        ),
                    )
                    continue
                try:
                    pending[shard] = worker.begin("query", payload_for(shard))
                except WorkerError as exc:
                    failed_gen = worker.restarts
                    self._note_shard_failure(shard, exc)
                    if self._retry_budget_left(cancel) and self._try_respawn(
                        shard, blocking=True, force=True,
                        seen_restarts=failed_gen,
                    ):
                        emit(shard, "retried")
                        try:
                            pending[shard] = worker.begin(
                                "query", payload_for(shard)
                            )
                            continue
                        except WorkerError as retry_exc:
                            self._note_shard_failure(shard, retry_exc)
                            exc = retry_exc
                    fail_shard(shard, exc)
        except BaseException:
            self._drain(pending, cancel)
            raise

        if first_error is not None:
            # Strict mode already doomed during the send phase: cancel and
            # drain whatever was sent, then raise without waiting for
            # full results.
            self._drain(pending, cancel)
            raise first_error

        # -- collect phase -------------------------------------------------
        results: List = [None] * n
        for shard, worker in enumerate(self._workers):
            rid = pending[shard]
            if rid is None:
                continue
            try:
                results[shard] = worker.finish(rid, cancel)
                self._breakers[shard].record_success()
                pending[shard] = None
                if on_reply is not None:
                    on_reply(shard)
                continue
            except WorkerError as exc:
                pending[shard] = None
                failed_gen = worker.restarts
                self._note_shard_failure(shard, exc)
                if first_error is None and self._retry_budget_left(
                    cancel
                ) and self._try_respawn(
                    shard, blocking=True, force=True, seen_restarts=failed_gen
                ):
                    emit(shard, "retried")
                    try:
                        rid = worker.begin("query", payload_for(shard))
                        results[shard] = worker.finish(rid, cancel)
                        self._breakers[shard].record_success()
                        if on_reply is not None:
                            on_reply(shard)
                        continue
                    except WorkerError as retry_exc:
                        self._note_shard_failure(shard, retry_exc)
                        exc = retry_exc
                fail_shard(shard, exc)
            except BaseException as exc:
                # Non-worker failure (deadline, cancellation, engine
                # error shipped back from a healthy worker): dooms the
                # query on every mode — cancel the shards we have not
                # collected yet, drain their replies, and raise.
                pending[shard] = None
                if first_error is None:
                    first_error = exc
            if first_error is not None:
                self._drain(pending, cancel)
                raise first_error
        if first_error is not None:
            self._drain(pending, cancel)
            raise first_error
        if allow_partial and all(
            degraded[i] or results[i] is None for i in range(n)
        ):
            raise ShardUnavailableError(
                "every shard is unavailable (nothing to serve a partial "
                "result from)"
            )
        return results

    def _drain(self, pending: List[Optional[int]], cancel) -> None:
        """Cancel and drain every still-pending request so no reply is
        left in a pipe (keeps request/reply framing in sync)."""
        for shard, rid in enumerate(pending):
            if rid is None:
                continue
            worker = self._workers[shard]
            worker.signal_cancel(rid)
            try:
                worker.finish(rid, cancel)
            except Exception:
                pass
            pending[shard] = None

    # -- diagnostics --------------------------------------------------------

    def cache_stats(self) -> List[Optional[Dict[str, Dict[str, int]]]]:
        """Per-worker engine-cache counters (``{"substitution": ...,
        "trie": ...}``), polled without blocking: a worker busy with an
        in-flight query — or dead and awaiting respawn — yields ``None``
        (the caller reports partial coverage instead of stalling or
        erroring a health probe)."""
        self._check_open()
        stats: List[Optional[Dict[str, Dict[str, int]]]] = []
        for worker in self._workers:
            try:
                stats.append(worker.try_call("stats", ()))
            except WorkerError:
                stats.append(None)
        return stats

    def substitution_cache_stats(self) -> List[Optional[Dict[str, int]]]:
        """Per-worker SubstitutionMatrix-LRU counters (see
        :meth:`cache_stats` for the polling semantics)."""
        return [
            None if part is None else part.get("substitution")
            for part in self.cache_stats()
        ]

    def trie_cache_stats(self) -> List[Optional[Dict[str, int]]]:
        """Per-worker TrieCache counters (see :meth:`cache_stats` for the
        polling semantics)."""
        return [
            None if part is None else part.get("trie")
            for part in self.cache_stats()
        ]

    # -- replication --------------------------------------------------------

    def replicate_add(self, shard: int, expected_local_id: int, trajectory,
                      *, validate: bool = False) -> int:
        """Apply one online insert on a shard worker, versioned and
        journaled.

        ``expected_local_id`` is the shard-local id the parent's replica
        assigns; the worker acknowledges only if its own insert agrees,
        so parent and worker cannot silently diverge.  Synchronous — when
        this returns, queries on that worker see the new trajectory
        (read-your-writes for the inserter).  The acknowledged insert is
        appended to the shard's journal *before* the worker lock is
        released, so a respawn can never snapshot a state where the
        insert is committed on the worker but absent from both the
        dataset mirror and the journal.
        """
        self._check_open()
        worker = self._workers[shard]
        entry = (int(expected_local_id), trajectory, bool(validate))
        req_id = worker.begin("add", entry)
        try:
            tid = worker._receive(req_id, None)
            self._journals[shard].append(entry)
            self._breakers[shard].record_success()
            return tid
        except WorkerError as exc:
            self._note_shard_failure(shard, exc)
            raise
        finally:
            worker._lock.release()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop the supervisor, then every worker (idempotent; also runs
        via ``atexit``)."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        # The supervisor must be down before workers stop, or it would
        # respawn what close() is killing.
        self._stop_event.set()
        if self._supervisor is not None and self._supervisor.is_alive():
            if self._supervisor is not threading.current_thread():
                self._supervisor.join(timeout=2.0)
        for worker in self._workers:
            worker.stop()

    def _check_open(self) -> None:
        if self._closed:
            raise WorkerError("worker pool is closed")


def _remaining_of(cancel) -> Optional[float]:
    """The budget to ship with a request: seconds left on the token's
    deadline at send time (clamped at 0 so an expired token still yields
    an immediately-expired worker token), or ``None``."""
    if cancel is None:
        return None
    remaining = getattr(cancel, "remaining", None)
    if remaining is None:
        return None
    value = remaining()
    return None if value is None else max(0.0, value)
