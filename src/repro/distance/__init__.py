"""Distance layer: weighted edit distance and friends.

- :mod:`repro.distance.costs` — the :class:`CostModel` abstraction (§2.2.1)
  and the six WED instances from the paper (§2.2.2–2.2.3).
- :mod:`repro.distance.wed` — dynamic-programming WED computation.
- :mod:`repro.distance.smith_waterman` — the adapted Smith–Waterman scan
  (Appendix A) and the exhaustive all-matches oracle.
- :mod:`repro.distance.alignment` — optimal alignment backtrace.
- :mod:`repro.distance.nonwed` — DTW / LCSS / LORS / LCRS used by the
  effectiveness experiments (§6.2); these are *not* WED instances.
"""

from repro.distance.costs import (
    CostModel,
    EDRCost,
    ERPCost,
    LevenshteinCost,
    NetEDRCost,
    NetERPCost,
    SURSCost,
    validate_cost_model,
)
from repro.distance.smith_waterman import all_matches, best_match
from repro.distance.wed import wed, wed_within

__all__ = [
    "CostModel",
    "EDRCost",
    "ERPCost",
    "LevenshteinCost",
    "NetEDRCost",
    "NetERPCost",
    "SURSCost",
    "all_matches",
    "best_match",
    "validate_cost_model",
    "wed",
    "wed_within",
]
