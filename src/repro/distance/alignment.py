"""Optimal alignment backtrace for WED.

Produces the explicit edit script behind ``wed(P, Q)`` — used by the SURS
example in the paper (Example 1: edges aligned to the gap symbol), by the
library's explanatory examples, and by tests that cross-check the DP value
against the summed cost of the script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence, Tuple

from repro.distance.costs import CostModel

__all__ = ["AlignmentOp", "align", "script_cost"]

OpKind = Literal["match", "sub", "del", "ins"]


@dataclass(frozen=True, slots=True)
class AlignmentOp:
    """One edit operation: ``kind`` with the symbols involved.

    ``data_symbol`` is ``None`` for insertions, ``query_symbol`` is ``None``
    for deletions; ``match`` is a zero-cost substitution.
    """

    kind: OpKind
    data_symbol: Optional[int]
    query_symbol: Optional[int]
    cost: float


def align(
    data: Sequence[int], query: Sequence[int], costs: CostModel
) -> Tuple[List[AlignmentOp], float]:
    """The optimal edit script converting ``query`` into ``data``.

    Ties are broken substitution-first, then deletion, then insertion, so
    the output is deterministic.  Returns ``(ops, total_cost)`` with
    ``total_cost == wed(data, query)``.
    """
    m, n = len(data), len(query)
    # Full matrix: D[i][j] = wed(data[:i], query[:j]).
    dmat = [[0.0] * (n + 1) for _ in range(m + 1)]
    for j in range(1, n + 1):
        dmat[0][j] = dmat[0][j - 1] + costs.ins(query[j - 1])
    for i in range(1, m + 1):
        dmat[i][0] = dmat[i - 1][0] + costs.delete(data[i - 1])
        row = dmat[i]
        prev = dmat[i - 1]
        sub_row = costs.sub_row(data[i - 1], query)
        dele = costs.delete(data[i - 1])
        for j in range(1, n + 1):
            row[j] = min(
                prev[j - 1] + sub_row[j - 1],
                prev[j] + dele,
                row[j - 1] + costs.ins(query[j - 1]),
            )
    ops: List[AlignmentOp] = []
    i, j = m, n
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            c = costs.sub(data[i - 1], query[j - 1])
            if abs(dmat[i][j] - (dmat[i - 1][j - 1] + c)) < 1e-12:
                kind: OpKind = "match" if c == 0.0 else "sub"
                ops.append(AlignmentOp(kind, data[i - 1], query[j - 1], c))
                i -= 1
                j -= 1
                continue
        if i > 0:
            c = costs.delete(data[i - 1])
            if abs(dmat[i][j] - (dmat[i - 1][j] + c)) < 1e-12:
                ops.append(AlignmentOp("del", data[i - 1], None, c))
                i -= 1
                continue
        c = costs.ins(query[j - 1])
        ops.append(AlignmentOp("ins", None, query[j - 1], c))
        j -= 1
    ops.reverse()
    return ops, dmat[m][n]


def script_cost(ops: Sequence[AlignmentOp]) -> float:
    """Total cost of an edit script."""
    return sum(op.cost for op in ops)
