"""Cost models defining weighted edit distances (§2.2).

A :class:`CostModel` supplies the three edit-operation costs
``ins`` / ``del`` / ``sub`` over an integer symbol alphabet (vertex ids or
edge ids), plus the two filtering hooks the search engine needs:

- ``neighbors(q)`` — the substitution neighborhood ``B(q)`` (Definition 4):
  all symbols ``b`` with ``sub(q, b) <= eta``;
- ``filter_cost(q)`` — ``c(q) = min over q' in Sigma+ \\ B(q) of sub(q, q')``
  (Eq. 7), the guaranteed cost of editing ``q`` away without landing in its
  neighborhood.

The WED assumptions (§2.2.1) must hold: ``sub(a,b) >= 0``, symmetry
``sub(a,b) == sub(b,a)`` (hence ``ins(a) == del(a)``), and ``sub(a,a) == 0``.
:func:`validate_cost_model` spot-checks them.

Six instances are provided: Levenshtein, EDR, ERP (coordinate-based), and
NetEDR, NetERP, SURS (network-aware, §2.2.3).  Network distances run on an
undirected view of the graph — the paper's fix for the asymmetry of directed
shortest paths — and are answered by a hub-labeling oracle when available,
falling back to cached bidirectional Dijkstra.
"""

from __future__ import annotations

import heapq
import math
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CostModelError
from repro.network.graph import RoadNetwork
from repro.network.hub_labeling import HubLabeling
from repro.network.shortest_path import bidirectional_dijkstra, bounded_dijkstra
from repro.spatial.geometry import Point, centroid, euclidean, padded_radius
from repro.spatial.kdtree import KDTree

__all__ = [
    "CostModel",
    "DirectionRows",
    "EDRCost",
    "ERPCost",
    "LevenshteinCost",
    "NetEDRCost",
    "NetERPCost",
    "SURSCost",
    "SubstitutionMatrix",
    "SubstitutionMatrixCache",
    "validate_cost_model",
]


class DirectionRows:
    """Per-direction substitution costs, stored *dense and slot-indexed*.

    The verifier's DP consumes, per visited data symbol, the symbol's
    substitution row restricted to one *query part* (forward suffix or
    reversed backward prefix of the query) plus its deletion cost.  Each
    distinct symbol gets an integer *slot* on first touch; its row (a
    contiguous copy of the possibly negative-stride full-row slice) lands
    in row ``slot`` of one growable matrix, with the deletion cost in a
    parallel vector.  Batch assembly then gathers a whole round of rows
    with two ``np.take`` calls instead of one numpy ``__setitem__`` per
    cache miss — the per-miss copy loop used to be the largest
    non-kernel cost of batched verification.

    Instances are owned by (and cached inside) the
    :class:`SubstitutionMatrix`, so when the engine's matrix LRU serves a
    repeated query, the per-direction dense copies are reused too — not
    just the full rows.
    """

    __slots__ = (
        "_matrix",
        "_slice",
        "_lock",
        "index",
        "rows",
        "deletes",
        "allocations",
    )

    def __init__(
        self, matrix: "SubstitutionMatrix", row_slice: slice, width: int
    ) -> None:
        self._matrix = matrix
        self._slice = row_slice
        #: serializes first-touch slot assignment/growth; readers stay
        #: lock-free (see :meth:`slot`).
        self._lock = threading.Lock()
        #: symbol -> dense slot; the verifier's walker reads it inline
        #: (one dict hit per cache miss) and calls :meth:`slot` only on
        #: first touch of a symbol.
        self.index: Dict[int, int] = {}
        self.rows = np.empty((16, width), dtype=np.float64)
        self.deletes = np.empty(16, dtype=np.float64)
        #: ndarray (re)allocations, feeding the verifier's accounting
        self.allocations = 2

    def slot(self, symbol: int) -> int:
        """The dense row slot for ``symbol`` (computed on first touch).

        Shared across concurrent query threads (the engine's matrix LRU
        hands one instance to every verifier of a repeated query), so
        writes are serialized: the slot is assigned, its row and delete
        written, and only then published in ``index`` — a lock-free
        reader either misses (and comes here) or sees a fully written
        row.  Growth publishes the grown buffers *before* writing the new
        row, so any slot a reader has seen is present in whatever
        ``rows``/``deletes`` arrays it fetches afterwards.
        """
        i = self.index.get(symbol)
        if i is None:
            with self._lock:
                i = self.index.get(symbol)
                if i is None:
                    matrix = self._matrix
                    i = len(self.index)
                    if i == len(self.rows):
                        grown = np.empty(
                            (2 * i, self.rows.shape[1]), dtype=np.float64
                        )
                        grown[:i] = self.rows
                        grown_d = np.empty(2 * i, dtype=np.float64)
                        grown_d[:i] = self.deletes
                        self.rows = grown
                        self.deletes = grown_d
                        self.allocations += 2
                    self.rows[i] = matrix.row(symbol)[self._slice]
                    self.deletes[i] = matrix.delete(symbol)
                    self.index[symbol] = i
        return i

    def get(self, symbol: int) -> Tuple[np.ndarray, float]:
        """This direction's ``(substitution row, delete cost)`` views."""
        i = self.slot(symbol)
        return self.rows[i], float(self.deletes[i])

    def __len__(self) -> int:
        return len(self.index)


class SubstitutionMatrix:
    """Per-query substitution costs served as ``np.ndarray`` rows.

    ``row(b)[i] == sub(b, query[i])`` for the fixed query this table was
    built for.  The verifier's DP consumes one row per visited data symbol
    (Algorithm 6), so rows are computed once per distinct symbol — via the
    model's vectorized :meth:`CostModel.sub_row_array` — and then served as
    cached arrays whose *slices* (forward / reversed-backward query parts)
    are zero-copy views.

    ``anchors`` optionally names symbols whose rows are precomputed into
    one dense matrix up front — the engine passes the union of the chosen
    tau-subsequence's substitution neighborhoods, i.e. every symbol that
    can appear at a candidate's anchor position.  All other symbols (the
    alphabet may be unbounded) fall back to a per-symbol dict cache filled
    on first touch.

    ``delete(b)`` memoizes the deletion cost alongside, since it is needed
    once per DP column as well.
    """

    __slots__ = (
        "_costs",
        "_query",
        "_rows",
        "_deletes",
        "_dense",
        "_directions",
        "dense_rows",
    )

    def __init__(
        self,
        costs: "CostModel",
        query: Sequence[int],
        *,
        anchors: Optional[Sequence[int]] = None,
    ) -> None:
        self._costs = costs
        self._query = tuple(query)
        self._rows: Dict[int, np.ndarray] = {}
        self._deletes: Dict[int, float] = {}
        self._directions: Dict[Hashable, DirectionRows] = {}
        self._dense: Optional[np.ndarray] = None
        #: number of rows precomputed densely from ``anchors``
        self.dense_rows = 0
        if anchors:
            uniq = list(dict.fromkeys(int(b) for b in anchors))
            dense = np.empty((len(uniq), len(self._query)), dtype=np.float64)
            for i, b in enumerate(uniq):
                dense[i] = costs.sub_row_array(b, self._query)
                self._rows[b] = dense[i]
            self._dense = dense
            self.dense_rows = len(uniq)

    @property
    def query(self) -> Tuple[int, ...]:
        """The query string the rows are computed against."""
        return self._query

    def row(self, symbol: int) -> np.ndarray:
        """``[sub(symbol, q) for q in query]`` as a cached float64 array."""
        r = self._rows.get(symbol)
        if r is None:
            r = self._costs.sub_row_array(symbol, self._query)
            self._rows[symbol] = r
        return r

    def delete(self, symbol: int) -> float:
        """Memoized deletion cost ``del(symbol)``."""
        d = self._deletes.get(symbol)
        if d is None:
            d = float(self._costs.delete(symbol))
            self._deletes[symbol] = d
        return d

    def direction_rows(self, key: Hashable, row_slice: slice) -> DirectionRows:
        """The :class:`DirectionRows` cache for one ``(iq, direction)``.

        ``key`` identifies the direction context (the verifier uses the
        ``(iq, direction)`` pair); the first caller fixes ``row_slice``
        for that key and later callers share the cached copies.
        """
        rows = self._directions.get(key)
        if rows is None:
            width = len(range(*row_slice.indices(len(self._query))))
            # setdefault: concurrent first callers converge on ONE
            # instance (slot tables must not fork between threads).
            rows = self._directions.setdefault(
                key, DirectionRows(self, row_slice, width)
            )
        return rows

    def cached_rows(self) -> int:
        """Distinct symbols with a materialized row (dense part included)."""
        return len(self._rows)


class SubstitutionMatrixCache:
    """Engine-level LRU of per-query :class:`SubstitutionMatrix` objects.

    The matrix (and the :class:`DirectionRows` caches hanging off it)
    depends only on the query and the cost-model configuration, never on
    the dataset or the threshold, so the serving layer's repeated (zipf)
    queries can skip substitution-row computation entirely — even when
    they vary tau or the time window.  Keys are the query-and-model
    prefix of the engine's normalized
    :func:`~repro.core.engine.query_signature` (see
    ``SubtrajectorySearch._substitution_matrix``), so one cache is valid
    for exactly one engine/cost-model instance.

    ``capacity == 0`` disables caching (``get`` always misses without
    counting, ``put`` drops).  Thread-safe: engines are queried from many
    server threads at once; the matrices' plain row dicts tolerate
    concurrent lazy fills (dict updates are atomic under the GIL; a
    benign race recomputes a row at worst), and the slot-indexed
    :class:`DirectionRows` tables serialize their first-touch writes —
    see :meth:`DirectionRows.slot`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise CostModelError("substitution cache capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, SubstitutionMatrix]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[SubstitutionMatrix]:
        """The cached matrix for ``key`` (refreshing recency), or None."""
        if self.capacity == 0:
            return None
        with self._lock:
            matrix = self._entries.get(key)
            if matrix is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return matrix

    def put(self, key: Hashable, matrix: SubstitutionMatrix) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = matrix
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        """Observable counters (served via ``/healthz`` and service stats)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class CostModel(ABC):
    """Edit-operation costs plus the filtering hooks of §3.1.

    ``representation`` declares which alphabet the model expects
    (``"vertex"`` or ``"edge"``); the engine checks it against the dataset.
    """

    representation: str = "vertex"
    #: display name used in benchmark tables
    name: str = "wed"

    @abstractmethod
    def sub(self, a: int, b: int) -> float:
        """Substitution cost ``sub(a, b)``."""

    @abstractmethod
    def ins(self, a: int) -> float:
        """Insertion cost ``ins(a)`` (== deletion cost by symmetry)."""

    def delete(self, a: int) -> float:
        """Deletion cost ``del(a)``; defaults to ``ins(a)`` (§2.2.1)."""
        return self.ins(a)

    def sub_row(self, p: int, seq: Sequence[int]) -> List[float]:
        """``[sub(p, s) for s in seq]`` — override for vectorized models.

        This is the hot path of the pure-Python DP (one call per column)."""
        s = self.sub
        return [s(p, q) for q in seq]

    # -- array-native hooks (the dp_backend="numpy" hot path) ---------------

    def sub_row_array(self, p: int, seq: Sequence[int]) -> np.ndarray:
        """:meth:`sub_row` as a float64 array — override for models whose
        row can be computed without a per-element Python loop.

        The array-native verifier calls this once per distinct symbol per
        query (rows are cached in a :class:`SubstitutionMatrix`), so even
        the default loop-and-wrap implementation is off the per-column
        hot path."""
        return np.asarray(self.sub_row(p, seq), dtype=np.float64)

    def ins_vector(self, seq: Sequence[int]) -> np.ndarray:
        """``[ins(q) for q in seq]`` as a float64 array (once per query).

        Deliberately *not* vectorized in subclasses: it runs once per
        query, and looping :meth:`ins` keeps the values bit-identical to
        the pure-Python DP's."""
        return np.fromiter((self.ins(q) for q in seq), dtype=np.float64, count=len(seq))

    def vectorized_rows(self) -> bool:
        """True when this model computes substitution rows without a
        per-element Python loop (it overrides :meth:`sub_row_array`).

        ``dp_backend="auto"`` reads this as a cost proxy: vectorizable
        rows are cheap rows, and on cheap rows short queries cannot
        amortize the numpy kernel-launch overhead, so the pure-Python DP
        wins there.  Models without an override (the network-aware
        family, ERP) pay real work per row, which the array-native
        backend computes once per symbol per query instead of once per
        DP column — numpy wins at every query length."""
        return type(self).sub_row_array is not CostModel.sub_row_array

    def sub_matrix(
        self, query: Sequence[int], *, anchors: Optional[Sequence[int]] = None
    ) -> SubstitutionMatrix:
        """A per-query :class:`SubstitutionMatrix` over this model.

        ``anchors`` (e.g. the union of the query's substitution
        neighborhoods) selects symbols whose rows are precomputed densely;
        everything else is cached on first touch."""
        return SubstitutionMatrix(self, query, anchors=anchors)

    # -- filtering hooks (§3.1) -------------------------------------------

    def neighbors(self, q: int) -> List[int]:
        """Substitution neighborhood ``B(q)`` (Definition 4).

        Always contains ``q`` itself since ``sub(q, q) == 0 <= eta``."""
        return [q]

    def filter_cost(self, q: int) -> float:
        """``c(q)``: the minimum cost of deleting ``q`` or substituting it
        with a symbol outside ``B(q)`` (Eq. 7)."""
        return self.ins(q)


# ---------------------------------------------------------------------------
# Coordinate-free instance
# ---------------------------------------------------------------------------


class LevenshteinCost(CostModel):
    """Unit-cost edit distance (Eq. 1); works on either representation."""

    name = "Lev"

    def __init__(self, representation: str = "vertex") -> None:
        self.representation = representation

    def sub(self, a: int, b: int) -> float:
        return 0.0 if a == b else 1.0

    def ins(self, a: int) -> float:
        return 1.0

    def sub_row(self, p: int, seq: Sequence[int]) -> List[float]:
        return [0.0 if p == q else 1.0 for q in seq]

    def sub_row_array(self, p: int, seq: Sequence[int]) -> np.ndarray:
        return (np.asarray(seq, dtype=np.int64) != p).astype(np.float64)

    def filter_cost(self, q: int) -> float:
        return 1.0


# ---------------------------------------------------------------------------
# Coordinate-based instances (EDR, ERP)
# ---------------------------------------------------------------------------


class _CoordinateModel(CostModel):
    """Shared machinery: vertex coordinates + kd-tree for range queries."""

    def __init__(self, graph: RoadNetwork) -> None:
        self.representation = "vertex"
        self._graph = graph
        self._coords = list(graph.coords)
        self._coords_arr = np.asarray(self._coords, dtype=np.float64)
        self._tree = KDTree(self._coords)

    def _distance(self, a: int, b: int) -> float:
        return euclidean(self._coords[a], self._coords[b])

    def _seq_coords(self, seq: Sequence[int]) -> np.ndarray:
        """Coordinates of ``seq`` as an (n, 2) array."""
        return self._coords_arr[np.asarray(seq, dtype=np.intp)]


class EDRCost(_CoordinateModel):
    """Edit distance on real sequences (Eq. 2): unit costs, substitution is
    free within matching threshold ``epsilon``.

    ``B(q)`` with the paper's ``eta = 0`` is the epsilon-ball around ``q``;
    ``c(q) = 1`` because any edit leaving the ball costs one unit.
    """

    name = "EDR"

    def __init__(self, graph: RoadNetwork, epsilon: float) -> None:
        if epsilon < 0:
            raise CostModelError("EDR epsilon must be nonnegative")
        super().__init__(graph)
        self.epsilon = epsilon

    def sub(self, a: int, b: int) -> float:
        # Same squared-distance comparison as the row forms below, so the
        # anchor cost and the DP rows agree on boundary cases regardless of
        # which backend computes which.
        (ax, ay), (bx, by) = self._coords[a], self._coords[b]
        dx = ax - bx
        dy = ay - by
        return 0.0 if dx * dx + dy * dy <= self.epsilon * self.epsilon else 1.0

    def ins(self, a: int) -> float:
        return 1.0

    def sub_row(self, p: int, seq: Sequence[int]) -> List[float]:
        px, py = self._coords[p]
        eps2 = self.epsilon * self.epsilon
        out = []
        coords = self._coords
        for q in seq:
            qx, qy = coords[q]
            dx = px - qx
            dy = py - qy
            out.append(0.0 if dx * dx + dy * dy <= eps2 else 1.0)
        return out

    def sub_row_array(self, p: int, seq: Sequence[int]) -> np.ndarray:
        # Same squared-distance comparison as sub_row, so both DP backends
        # see bit-identical rows.
        qc = self._seq_coords(seq)
        px, py = self._coords[p]
        d2 = (qc[:, 0] - px) ** 2 + (qc[:, 1] - py) ** 2
        return (d2 > self.epsilon * self.epsilon).astype(np.float64)

    def neighbors(self, q: int) -> List[int]:
        # B(q) must be exactly {b : sub(q, b) == 0} or the subsequence
        # filter loses soundness at the epsilon boundary; the kd-tree's
        # hypot-based search is padded a few ulps and then filtered with
        # the DP's own squared-distance predicate.
        cx, cy = self._coords[q]
        eps = self.epsilon
        eps2 = eps * eps
        coords = self._coords
        out = []
        for b in self._tree.range_search((cx, cy), padded_radius(eps)):
            dx = cx - coords[b][0]
            dy = cy - coords[b][1]
            if dx * dx + dy * dy <= eps2:
                out.append(b)
        return out

    def filter_cost(self, q: int) -> float:
        return 1.0


class ERPCost(_CoordinateModel):
    """Edit distance with real penalty (Eq. 3): substitution costs the
    Euclidean distance; insertion/deletion cost the distance to a reference
    point ``g`` (defaults to the barycenter of all vertices — §2.2.2).

    ``eta`` must be a small positive number for continuous costs (§3.1,
    App. D); ``B(q)`` is the eta-ball and ``c(q)`` is the cheaper of deleting
    ``q`` or substituting it with the nearest vertex outside the ball.
    """

    name = "ERP"

    def __init__(
        self,
        graph: RoadNetwork,
        *,
        eta: float = 0.0,
        reference: Optional[Point] = None,
    ) -> None:
        if eta < 0:
            raise CostModelError("ERP eta must be nonnegative")
        super().__init__(graph)
        self.eta = eta
        self._g: Point = reference if reference is not None else centroid(self._coords)

    @property
    def reference(self) -> Point:
        """The ERP reference point ``g``."""
        return self._g

    def sub(self, a: int, b: int) -> float:
        return self._distance(a, b)

    def ins(self, a: int) -> float:
        return euclidean(self._coords[a], self._g)

    def sub_row(self, p: int, seq: Sequence[int]) -> List[float]:
        px, py = self._coords[p]
        coords = self._coords
        return [math.hypot(px - coords[q][0], py - coords[q][1]) for q in seq]

    # No vectorized sub_row_array override: np.hypot (libm) and
    # math.hypot (correctly rounded) can differ by an ulp, which would
    # break the bit-identical-backends invariant; the default wraps the
    # math.hypot row, computed once per symbol per query anyway.

    def neighbors(self, q: int) -> List[int]:
        return self._tree.range_search(self._coords[q], self.eta)

    def filter_cost(self, q: int) -> float:
        best = self.ins(q)  # deleting q (sub(q, eps)) is always allowed
        hit = self._tree.nearest_outside(self._coords[q], self.eta)
        if hit is not None:
            best = min(best, hit[1])
        return best


# ---------------------------------------------------------------------------
# Network-aware instances (NetEDR, NetERP, SURS) — §2.2.3
# ---------------------------------------------------------------------------


def _smallest_distance_outside(graph: RoadNetwork, source: int, eta: float) -> float:
    """The smallest shortest-path distance from ``source`` strictly greater
    than ``eta`` (``inf`` when everything reachable lies within ``eta``).

    This is the NetERP substitution part of ``c(q)``: the cheapest
    substitution landing outside ``B(q)``.
    """
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        if d > eta:
            return d  # first settled vertex beyond eta is the closest one
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd < dist.get(e.target, math.inf):
                dist[e.target] = nd
                heapq.heappush(heap, (nd, e.target))
    return math.inf


class _NetworkModel(CostModel):
    """Shared machinery for shortest-path-distance models.

    Distances are computed on an undirected view of the graph (symmetry fix,
    §2.2.3) and answered by hub labeling when ``use_hub_labeling`` is set
    (exact, built once) or by memoized bidirectional Dijkstra otherwise.
    """

    def __init__(self, graph: RoadNetwork, *, use_hub_labeling: bool = True) -> None:
        self.representation = "vertex"
        self._graph = graph.undirected()
        self._oracle: Optional[HubLabeling] = (
            HubLabeling(self._graph) if use_hub_labeling else None
        )
        self._cache: Dict[Tuple[int, int], float] = {}

    def network_distance(self, a: int, b: int) -> float:
        """Memoized undirected shortest-path distance between vertices."""
        if a == b:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        d = self._cache.get(key)
        if d is None:
            if self._oracle is not None:
                d = self._oracle.query(key[0], key[1])
            else:
                d = bidirectional_dijkstra(self._graph, key[0], key[1])
            self._cache[key] = d
        return d


class NetEDRCost(_NetworkModel):
    """EDR with shortest-path distance in place of Euclidean (§2.2.3)."""

    name = "NetEDR"

    def __init__(
        self,
        graph: RoadNetwork,
        epsilon: Optional[float] = None,
        *,
        use_hub_labeling: bool = True,
    ) -> None:
        super().__init__(graph, use_hub_labeling=use_hub_labeling)
        # Paper default (§6.1): epsilon = median edge weight.
        self.epsilon = graph.median_edge_weight() if epsilon is None else epsilon
        if self.epsilon < 0:
            raise CostModelError("NetEDR epsilon must be nonnegative")

    def sub(self, a: int, b: int) -> float:
        return 0.0 if self.network_distance(a, b) <= self.epsilon else 1.0

    def ins(self, a: int) -> float:
        return 1.0

    def neighbors(self, q: int) -> List[int]:
        return sorted(bounded_dijkstra(self._graph, q, self.epsilon))

    def filter_cost(self, q: int) -> float:
        return 1.0


class NetERPCost(_NetworkModel):
    """ERP with shortest-path distance; constant insertion/deletion cost
    ``g_del`` replaces the reference point (§2.2.3 — this makes NetERP
    non-metric, which the method tolerates)."""

    name = "NetERP"

    def __init__(
        self,
        graph: RoadNetwork,
        g_del: float,
        *,
        eta: Optional[float] = None,
        use_hub_labeling: bool = True,
    ) -> None:
        if g_del <= 0:
            raise CostModelError("NetERP deletion cost must be positive")
        super().__init__(graph, use_hub_labeling=use_hub_labeling)
        self.g_del = g_del
        # Paper default (§6.1 / App. D): eta = median edge weight.
        self.eta = graph.median_edge_weight() if eta is None else eta
        if self.eta < 0:
            raise CostModelError("NetERP eta must be nonnegative")

    def sub(self, a: int, b: int) -> float:
        return self.network_distance(a, b)

    def ins(self, a: int) -> float:
        return self.g_del

    def neighbors(self, q: int) -> List[int]:
        return sorted(bounded_dijkstra(self._graph, q, self.eta))

    def filter_cost(self, q: int) -> float:
        return min(self.g_del, _smallest_distance_outside(self._graph, q, self.eta))


class SURSCost(CostModel):
    """Shortest unshared road segments (Eq. 4) over the edge alphabet.

    ``sub(a,b) = w(a) + w(b)`` makes substitution equivalent to a deletion
    plus an insertion, so WED totals the travel cost of edges not shared by
    the two trajectories, order-sensitively (Example 1).  With the paper's
    ``eta = 0``, ``B(q) = {q}`` and ``c(q) = w(q)``.
    """

    name = "SURS"

    def __init__(self, graph: RoadNetwork) -> None:
        self.representation = "edge"
        self._weights = [e.weight for e in graph.edges]
        self._weights_arr = np.asarray(self._weights, dtype=np.float64)

    def sub(self, a: int, b: int) -> float:
        return 0.0 if a == b else self._weights[a] + self._weights[b]

    def ins(self, a: int) -> float:
        return self._weights[a]

    def sub_row(self, p: int, seq: Sequence[int]) -> List[float]:
        w = self._weights
        wp = w[p]
        return [0.0 if p == q else wp + w[q] for q in seq]

    def sub_row_array(self, p: int, seq: Sequence[int]) -> np.ndarray:
        idx = np.asarray(seq, dtype=np.intp)
        row = self._weights_arr[idx] + self._weights[p]
        row[idx == p] = 0.0
        return row

    def filter_cost(self, q: int) -> float:
        return self._weights[q]


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_cost_model(
    model: CostModel,
    symbols: Sequence[int],
    *,
    tolerance: float = 1e-9,
) -> None:
    """Spot-check the WED assumptions (§2.2.1) on a sample of symbols.

    Raises :class:`CostModelError` on the first violation.  Checks:
    nonnegativity, ``sub(a,a) == 0``, symmetry, ``ins == del``, and that
    ``neighbors``/``filter_cost`` are mutually consistent: every ``b`` in
    ``B(q)`` is not an admissible target for ``c(q)``, i.e.
    ``c(q) <= sub(q, b')`` for sampled ``b'`` outside ``B(q)`` and
    ``c(q) <= del(q)``.
    """
    for a in symbols:
        if model.sub(a, a) > tolerance:
            raise CostModelError(f"sub({a},{a}) != 0")
        if model.ins(a) < 0 or model.delete(a) < 0:
            raise CostModelError(f"negative ins/del cost at {a}")
        if abs(model.ins(a) - model.delete(a)) > tolerance:
            raise CostModelError(f"ins({a}) != del({a})")
        for b in symbols:
            sab = model.sub(a, b)
            if sab < 0:
                raise CostModelError(f"negative sub({a},{b})")
            if abs(sab - model.sub(b, a)) > tolerance:
                raise CostModelError(f"sub({a},{b}) asymmetric")
    for q in symbols:
        neigh = set(model.neighbors(q))
        if q not in neigh:
            raise CostModelError(f"{q} not in its own neighborhood")
        cq = model.filter_cost(q)
        if cq < 0:
            raise CostModelError(f"negative filter cost c({q})")
        if cq > model.delete(q) + tolerance:
            raise CostModelError(f"c({q}) exceeds deletion cost")
        for b in symbols:
            if b not in neigh and model.sub(q, b) + tolerance < cq:
                raise CostModelError(
                    f"c({q})={cq} not a lower bound: sub({q},{b})={model.sub(q, b)}"
                )
