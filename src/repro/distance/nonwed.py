"""Similarity functions outside the WED class (§2.2.4, §6.2, App. F).

DTW, LCSS, LORS, and LCRS are used by the paper's *effectiveness*
experiments (travel-time estimation, route naturalness) as comparison
points; they are not WED instances, and the paper finds the best-matching
subtrajectory for them by brute force.  We provide:

- whole-string values: :func:`dtw`, :func:`lcss`, :func:`lors`, :func:`lcrs`;
- best-subtrajectory searches with free boundaries on the data string:
  :func:`subsequence_dtw_best`, :func:`lcss_best_match`,
  :func:`lors_best_match` (the latter two track the matched data span).

LORS here is the weighted longest common subsequence over edge symbols,
which satisfies the App. F identities with SURS and LCRS:

    SURS(x, y) = w(x) + w(y) - 2 * LORS(x, y)
    LCRS(x, y) = LORS(x, y) / (w(x) + w(y) - LORS(x, y))
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple

__all__ = [
    "discrete_frechet",
    "dtw",
    "lcrs",
    "lcss",
    "lcss_best_match",
    "lors",
    "lors_best_match",
    "subsequence_dtw_best",
]

DistanceFn = Callable[[int, int], float]
MatchFn = Callable[[int, int], bool]


def dtw(a: Sequence[int], b: Sequence[int], dist: DistanceFn) -> float:
    """Classic dynamic time warping with per-pair cost ``dist``."""
    if not a or not b:
        return math.inf
    n = len(b)
    prev = [math.inf] * (n + 1)
    prev[0] = 0.0
    for x in a:
        cur = [math.inf] * (n + 1)
        for j in range(1, n + 1):
            c = dist(x, b[j - 1])
            cur[j] = c + min(prev[j - 1], prev[j], cur[j - 1])
        prev = cur
        prev[0] = math.inf  # only the very first row may start for free
    return prev[n]


def subsequence_dtw_best(
    data: Sequence[int], query: Sequence[int], dist: DistanceFn
) -> Tuple[int, int, float]:
    """Best DTW alignment of ``query`` against any subtrajectory of ``data``.

    Free start/end on the data axis (Mueller's subsequence DTW); returns
    ``(s, t, value)`` with 0-based inclusive data bounds.
    """
    if not data or not query:
        return 0, -1, math.inf
    nq = len(query)
    # cost[i][j] over query index i (rows) and data index j (cols).
    prev = [0.0] * len(data)  # row 0: free start before any query symbol
    starts = list(range(len(data)))
    # First query row: each data position may begin a match.
    cur = [dist(query[0], data[j]) for j in range(len(data))]
    cur_starts = list(range(len(data)))
    for j in range(1, len(data)):
        if cur[j - 1] + dist(query[0], data[j]) < cur[j]:
            cur[j] = cur[j - 1] + dist(query[0], data[j])
            cur_starts[j] = cur_starts[j - 1]
    prev, starts = cur, cur_starts
    for i in range(1, nq):
        cur = [math.inf] * len(data)
        cur_starts = [0] * len(data)
        for j in range(len(data)):
            c = dist(query[i], data[j])
            best = prev[j]  # advance query only
            best_s = starts[j]
            if j > 0:
                if prev[j - 1] < best:
                    best = prev[j - 1]
                    best_s = starts[j - 1]
                if cur[j - 1] < best:
                    best = cur[j - 1]
                    best_s = cur_starts[j - 1]
            cur[j] = c + best
            cur_starts[j] = best_s
        prev, starts = cur, cur_starts
    t = min(range(len(data)), key=lambda j: (prev[j], j - starts[j]))
    return starts[t], t, prev[t]


def discrete_frechet(a: Sequence[int], b: Sequence[int], dist: DistanceFn) -> float:
    """Discrete Frechet distance (the coupling distance of Eiter & Mannila).

    Like DTW with ``max`` in place of ``sum``: the length of the shortest
    leash that lets two walkers traverse both sequences monotonically.
    Listed among the related coordinate-aware functions in §7 (used by the
    distributed system of Xie et al. [58]); not a WED instance.
    """
    if not a or not b:
        return math.inf
    n = len(b)
    prev = [math.inf] * n
    for i, x in enumerate(a):
        cur = [math.inf] * n
        for j in range(n):
            d = dist(x, b[j])
            if i == 0 and j == 0:
                reach = d
            elif i == 0:
                reach = max(cur[j - 1], d)
            elif j == 0:
                reach = max(prev[j], d)
            else:
                reach = max(min(prev[j - 1], prev[j], cur[j - 1]), d)
            cur[j] = reach
        prev = cur
    return prev[n - 1]


def lcss(a: Sequence[int], b: Sequence[int], match: MatchFn) -> int:
    """Longest common subsequence length under a match predicate."""
    n = len(b)
    prev = [0] * (n + 1)
    for x in a:
        cur = [0] * (n + 1)
        for j in range(1, n + 1):
            if match(x, b[j - 1]):
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[n]


def _weighted_lcs_with_span(
    data: Sequence[int],
    query: Sequence[int],
    gain: Callable[[int], float],
    match: MatchFn,
) -> Tuple[int, int, float]:
    """Weighted LCS of ``query`` vs ``data`` returning the matched data span.

    ``gain(symbol)`` is the score contributed by matching ``symbol``.
    Returns ``(s, t, value)``; ``(0, -1, 0.0)`` when nothing matches.  The
    span is the first/last matched data position of one optimal solution
    (ties resolved toward shorter spans).
    """
    m, n = len(data), len(query)
    val = [[0.0] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        row, prev = val[i], val[i - 1]
        d = data[i - 1]
        g = gain(d)
        for j in range(1, n + 1):
            if match(d, query[j - 1]):
                row[j] = max(prev[j - 1] + g, prev[j], row[j - 1])
            else:
                row[j] = max(prev[j], row[j - 1])
    best = val[m][n]
    if best <= 0.0:
        return 0, -1, 0.0
    # Backtrace one optimal solution, collecting matched data positions.
    i, j = m, n
    first = last = -1
    while i > 0 and j > 0:
        d = data[i - 1]
        if match(d, query[j - 1]) and abs(
            val[i][j] - (val[i - 1][j - 1] + gain(d))
        ) < 1e-9:
            last = max(last, i - 1)
            first = i - 1
            i -= 1
            j -= 1
        elif val[i - 1][j] >= val[i][j - 1]:
            i -= 1
        else:
            j -= 1
    return first, last, best


def lors(
    x: Sequence[int],
    y: Sequence[int],
    weight: Callable[[int], float],
) -> float:
    """Longest overlapping road segments: total weight of the heaviest
    order-preserving common subsequence of edge symbols [48]."""
    _, _, v = _weighted_lcs_with_span(x, y, weight, lambda a, b: a == b)
    return v


def lcrs(
    x: Sequence[int],
    y: Sequence[int],
    weight: Callable[[int], float],
) -> float:
    """Longest common road segments ratio [64]:
    ``LORS / (w(x) + w(y) - LORS)`` in ``[0, 1]``."""
    shared = lors(x, y, weight)
    total = sum(weight(e) for e in x) + sum(weight(e) for e in y)
    denom = total - shared
    if denom <= 0.0:
        return 1.0
    return shared / denom


def lors_best_match(
    data: Sequence[int],
    query: Sequence[int],
    weight: Callable[[int], float],
) -> Tuple[int, int, float]:
    """Best-matching data span under LORS; ``(s, t, shared_weight)``."""
    return _weighted_lcs_with_span(data, query, weight, lambda a, b: a == b)


def lcss_best_match(
    data: Sequence[int],
    query: Sequence[int],
    match: MatchFn,
) -> Tuple[int, int, float]:
    """Best-matching data span under LCSS; ``(s, t, match_count)``."""
    return _weighted_lcs_with_span(data, query, lambda _: 1.0, match)
