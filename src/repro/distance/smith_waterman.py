"""Smith–Waterman adapted to subtrajectory WED search (Appendix A).

Two entry points:

- :func:`best_match` — Algorithm 7: the single best-matching substring of a
  data string in ``O(|P| * |Q|)``, tracking match starts through the DP
  (the K matrix technique of [38]).
- :func:`all_matches` — the exhaustive oracle for Definition 3: *every*
  ``(s, t)`` with ``wed(P[s..t], Q) < tau``, via one thresholded DP per
  start position (the "naive solution" of §3 with the row-minimum early
  exit).  This is the ground truth the engine is tested against.

Indices in results are 0-based inclusive.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.distance.costs import CostModel
from repro.distance.wed import wed_row_init, wed_step_min

__all__ = ["Match", "all_matches", "best_match"]

#: A subtrajectory match: (start, end, distance), 0-based inclusive bounds.
Match = Tuple[int, int, float]


def best_match(data: Sequence[int], query: Sequence[int], costs: CostModel) -> Match:
    """The substring of ``data`` with minimum WED to ``query``.

    Returns ``(s, t, value)``; when the optimum aligns the whole query to
    insertions the match is empty and ``s == t + 1``.  The insert chain is
    evaluated in the repo-wide prefix-min convention (see
    :mod:`repro.distance.wed`), with the chain's origin carrying its match
    start through the scan.
    """
    nq = len(query)
    # Column for the empty data prefix: D[i] = wed(eps, Q_{1:i}), start = 0
    # — this is also the insertion prefix P of the evaluation convention.
    prefix = [0.0]
    for q in query:
        prefix.append(prefix[-1] + costs.ins(q))
    col = list(prefix)
    starts = [0] * (nq + 1)
    best_val = col[nq]
    best_s, best_t = 0, -1
    for j, p in enumerate(data):
        sub_row = costs.sub_row(p, query)
        dele = costs.delete(p)
        new_col = [0.0] * (nq + 1)
        new_starts = [0] * (nq + 1)
        new_starts[0] = j + 1  # empty match starting after position j
        # Insert-chain state: m = min over settled cells of (C[i] - P[i]),
        # m_start = the match start of the cell achieving it.
        m = 0.0  # new_col[0] - prefix[0]
        m_start = j + 1
        for i in range(1, nq + 1):
            a = col[i - 1] + sub_row[i - 1]  # substitute
            b = col[i] + dele  # delete data symbol
            if a <= b:
                c_val, c_start = a, starts[i - 1]
            else:
                c_val, c_start = b, starts[i]
            chain = prefix[i] + m  # insert query symbols from the origin
            if c_val <= chain:
                new_col[i] = c_val
                new_starts[i] = c_start
            else:
                new_col[i] = chain
                new_starts[i] = m_start
            d = c_val - prefix[i]
            if d < m:
                m = d
                m_start = c_start
        col, starts = new_col, new_starts
        if col[nq] < best_val:
            best_val = col[nq]
            best_s, best_t = starts[nq], j
    return best_s, best_t, best_val


def all_matches(
    data: Sequence[int],
    query: Sequence[int],
    costs: CostModel,
    tau: float,
) -> List[Match]:
    """All non-empty ``(s, t)`` with ``wed(data[s..t], query) < tau``.

    One thresholded DP per start position; the inner loop stops as soon as
    the row minimum (a monotone lower bound for every longer substring,
    Eq. 11) reaches ``tau``.  The minimum comes out of the DP step itself
    (:func:`~repro.distance.wed.wed_step_min`) rather than a separate
    O(|Q|) scan per step.  Worst case ``O(|P|^2 * |Q|)`` — this is the
    reference oracle, not the fast path.
    """
    if tau <= 0:
        return []
    out: List[Match] = []
    n = len(data)
    init = wed_row_init(costs, query)
    if min(init) >= tau:
        return []
    for s in range(n):
        row = init
        for t in range(s, n):
            row, row_min = wed_step_min(
                costs, query, data[t], row, ins_prefix=init
            )
            if row[-1] < tau:
                out.append((s, t, row[-1]))
            if row_min >= tau:
                break
    return out
