"""Weighted edit distance by dynamic programming (§2.2.1).

``wed(P, Q)`` is defined recursively with user-supplied edit costs and
computed in ``O(|P| * |Q|)``.  :func:`wed_within` adds the standard
threshold early exit (stop as soon as every cell of a row reaches ``tau``),
used by the whole-matching baselines.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.distance.costs import CostModel

__all__ = ["wed", "wed_row_init", "wed_step", "wed_within"]


def wed_row_init(costs: CostModel, query: Sequence[int]) -> List[float]:
    """The DP row for the empty data string: ``wed(eps, Q_{1:j})`` —
    cumulative insertion costs of the query prefix."""
    row = [0.0]
    for q in query:
        row.append(row[-1] + costs.ins(q))
    return row


def wed_step(
    costs: CostModel,
    query: Sequence[int],
    symbol: int,
    prev_row: Sequence[float],
    *,
    sub_row: Sequence[float] | None = None,
    ins_row: Sequence[float] | None = None,
) -> List[float]:
    """One DP step: extend the data string by ``symbol``.

    ``prev_row[j] = wed(P_{1:k}, Q_{1:j})`` in, the same for ``k+1`` out.
    ``sub_row``/``ins_row`` may carry precomputed per-query costs (hot path
    of verification — Algorithm 6 ``StepDP``).
    """
    if sub_row is None:
        sub_row = costs.sub_row(symbol, query)
    dele = costs.delete(symbol)
    row = [prev_row[0] + dele]
    if ins_row is None:
        ins_row = [costs.ins(q) for q in query]
    for j in range(1, len(query) + 1):
        best = prev_row[j - 1] + sub_row[j - 1]
        via_del = prev_row[j] + dele
        if via_del < best:
            best = via_del
        via_ins = row[j - 1] + ins_row[j - 1]
        if via_ins < best:
            best = via_ins
        row.append(best)
    return row


def wed(data: Sequence[int], query: Sequence[int], costs: CostModel) -> float:
    """``wed(P, Q)`` for whole strings (either may be empty)."""
    row = wed_row_init(costs, query)
    for p in data:
        row = wed_step(costs, query, p, row)
    return row[-1]


def wed_within(
    data: Sequence[int],
    query: Sequence[int],
    costs: CostModel,
    tau: float,
) -> float:
    """``wed(P, Q)`` if it is < ``tau``, else ``math.inf``.

    Abandons the DP as soon as the row minimum reaches ``tau`` — the row
    minimum is a monotone lower bound on any extension (Eq. 11 applied to
    whole matching).
    """
    row = wed_row_init(costs, query)
    if min(row) >= tau:
        # Even the empty prefix cannot recover; but the full value might
        # still matter to callers only when < tau, so report inf.
        if row[-1] < tau:
            pass  # unreachable: row[-1] >= min(row) >= tau
        return math.inf
    for p in data:
        row = wed_step(costs, query, p, row)
        if min(row) >= tau:
            return math.inf
    return row[-1] if row[-1] < tau else math.inf
