"""Weighted edit distance by dynamic programming (§2.2.1).

``wed(P, Q)`` is defined recursively with user-supplied edit costs and
computed in ``O(|P| * |Q|)``.  :func:`wed_within` adds the standard
threshold early exit (stop as soon as every cell of a row reaches ``tau``),
used by the whole-matching baselines.

Floating-point convention
-------------------------
Every DP step in this repo — :func:`wed_step`, the verifier's pure-Python
``_step_dp``, and the vectorized ``step_dp_numpy`` / ``step_dp_batch``
kernels — evaluates the insertion chain in the *prefix-min* form

    B[j] = min(C[j], P[j] + min over i < j of (C[i] - P[i]))

where ``C[j]`` is the substitution/deletion candidate and ``P`` is the
cumulative insertion-cost prefix (``P[j] = P[j-1] + ins[j-1]``, summed left
to right).  In real arithmetic this equals the textbook recurrence
``B[j] = min(C[j], B[j-1] + ins[j])`` exactly; fixing one evaluation order
everywhere makes every backend and kernel produce *bit-identical* floats,
so the strict ``< tau`` match semantics of Definition 2 can never disagree
between deployments.  (The prefix-min form is the one ``minimum.accumulate``
vectorizes in O(1) passes; the no-chain case stays exactly ``C[j]``.)
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.distance.costs import CostModel

__all__ = ["wed", "wed_row_init", "wed_step", "wed_step_min", "wed_within"]


def wed_row_init(costs: CostModel, query: Sequence[int]) -> List[float]:
    """The DP row for the empty data string: ``wed(eps, Q_{1:j})`` —
    cumulative insertion costs of the query prefix (this is also the
    insertion prefix ``P`` of the module's evaluation convention)."""
    row = [0.0]
    for q in query:
        row.append(row[-1] + costs.ins(q))
    return row


def wed_step_min(
    costs: CostModel,
    query: Sequence[int],
    symbol: int,
    prev_row: Sequence[float],
    *,
    sub_row: Sequence[float] | None = None,
    ins_row: Sequence[float] | None = None,
    ins_prefix: Sequence[float] | None = None,
) -> Tuple[List[float], float]:
    """One DP step plus the running row minimum, in a single pass.

    Returns ``(row, min(row))``.  The minimum is the Eq. 11 lower bound the
    thresholded callers (:func:`wed_within`, the Smith–Waterman oracle, the
    engine's scan fallback) test after every step; tracking it inside the
    DP loop replaces their separate ``min(row)`` scan — an O(|Q|) pass per
    step — with one comparison per cell.

    ``sub_row`` / ``ins_row`` / ``ins_prefix`` may carry precomputed
    per-query costs (``ins_prefix`` is :func:`wed_row_init`'s row; passing
    it saves rebuilding the prefix every step).
    """
    if sub_row is None:
        sub_row = costs.sub_row(symbol, query)
    dele = costs.delete(symbol)
    if ins_prefix is None:
        if ins_row is None:
            ins_row = [costs.ins(q) for q in query]
        prefix = [0.0]
        for c in ins_row:
            prefix.append(prefix[-1] + c)
        ins_prefix = prefix
    first = prev_row[0] + dele
    row = [first]
    row_min = first
    m = first - ins_prefix[0]
    for j in range(len(query)):
        c = prev_row[j] + sub_row[j]
        via_del = prev_row[j + 1] + dele
        if via_del < c:
            c = via_del
        chain = ins_prefix[j + 1] + m
        best = c if c <= chain else chain
        row.append(best)
        if best < row_min:
            row_min = best
        d = c - ins_prefix[j + 1]
        if d < m:
            m = d
    return row, row_min


def wed_step(
    costs: CostModel,
    query: Sequence[int],
    symbol: int,
    prev_row: Sequence[float],
    *,
    sub_row: Sequence[float] | None = None,
    ins_row: Sequence[float] | None = None,
    ins_prefix: Sequence[float] | None = None,
) -> List[float]:
    """One DP step: extend the data string by ``symbol``.

    ``prev_row[j] = wed(P_{1:k}, Q_{1:j})`` in, the same for ``k+1`` out.
    ``sub_row``/``ins_row``/``ins_prefix`` may carry precomputed per-query
    costs (hot path of verification — Algorithm 6 ``StepDP``).
    """
    return wed_step_min(
        costs,
        query,
        symbol,
        prev_row,
        sub_row=sub_row,
        ins_row=ins_row,
        ins_prefix=ins_prefix,
    )[0]


def wed(data: Sequence[int], query: Sequence[int], costs: CostModel) -> float:
    """``wed(P, Q)`` for whole strings (either may be empty)."""
    init = wed_row_init(costs, query)
    row: List[float] = init
    for p in data:
        row = wed_step(costs, query, p, row, ins_prefix=init)
    return row[-1]


def wed_within(
    data: Sequence[int],
    query: Sequence[int],
    costs: CostModel,
    tau: float,
) -> float:
    """``wed(P, Q)`` if it is < ``tau``, else ``math.inf``.

    Abandons the DP as soon as the row minimum reaches ``tau`` — the row
    minimum is a monotone lower bound on any extension (Eq. 11 applied to
    whole matching) and comes out of :func:`wed_step_min` for free.
    """
    init = wed_row_init(costs, query)
    row: List[float] = init
    if min(init) >= tau:
        # Even the empty prefix cannot recover; but the full value might
        # still matter to callers only when < tau, so report inf.
        if row[-1] < tau:
            pass  # unreachable: row[-1] >= min(row) >= tau
        return math.inf
    for p in data:
        row, row_min = wed_step_min(costs, query, p, row, ins_prefix=init)
        if row_min >= tau:
            return math.inf
    return row[-1] if row[-1] < tau else math.inf
