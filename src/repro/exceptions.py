"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed road networks (unknown vertices, bad edges...)."""


class TrajectoryError(ReproError):
    """Raised for invalid trajectories (non-paths, bad timestamps...)."""


class CostModelError(ReproError):
    """Raised when a cost model violates the WED assumptions (§2.2)."""


class QueryError(ReproError):
    """Raised for invalid queries (empty query, non-positive threshold...)."""


class IndexError_(ReproError):
    """Raised for index construction/lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class MapMatchError(ReproError):
    """Raised when HMM map matching cannot produce a path (broken HMM)."""


class ServiceError(ReproError):
    """Base class for query-serving failures (:mod:`repro.service`)."""


class DeadlineExceededError(ServiceError):
    """Raised when a query misses its per-query deadline."""


class AdmissionError(ServiceError):
    """Raised when admission control sheds a query (pending limit reached,
    or the service is shutting down)."""


class QueryCancelledError(ServiceError):
    """Raised inside a query when its cooperative cancellation token fires
    (deadline expired or the caller abandoned the query).  Execution layers
    normally translate it into :class:`DeadlineExceededError` before it
    reaches a client."""


class WorkerError(ServiceError):
    """Raised when a shard worker process fails: it died mid-request, its
    pipe desynchronized, or a replicated update diverged from the parent."""


class ShardUnavailableError(WorkerError):
    """Raised when a shard cannot serve right now: its circuit breaker is
    open (flapping worker in cooldown) or every shard is down so not even
    a partial answer exists.  A :class:`WorkerError` subclass so existing
    worker-failure handling (HTTP 503, retries) applies unchanged."""


class TransportError(WorkerError):
    """Raised by the socket transport (:mod:`repro.core.transport`) when a
    connection fails mid-frame: the peer vanished, a send/recv hit an OS
    error, or a per-call deadline expired.  A :class:`WorkerError`
    subclass so the pool's reconnect-and-retry-once path treats a broken
    link exactly like a dead worker process."""


class FrameTooLargeError(TransportError):
    """Raised when a frame (outgoing or incoming) exceeds the transport's
    maximum frame size.  Raised *before* any payload bytes are consumed,
    so the stream never desynchronizes — the connection is simply
    unusable and must be re-established."""


class FrameTruncatedError(TransportError):
    """Raised when the stream ends (EOF) inside a frame: the length
    prefix promised more bytes than ever arrived.  Distinguishes a
    half-written frame from a clean close between frames."""
