"""Deterministic fault injection for the processes serving backend.

Chaos testing a multiprocess system with ``kill -9`` from the outside is
racy: whether the victim dies before, during, or after a request depends
on scheduler timing, so a failing run cannot be replayed.  This module
moves the faults *inside* the system, keyed to request ordinals, so a
fault schedule is a value — serializable, seedable, and bit-identically
replayable:

- a :class:`FaultPlan` is a list of :class:`FaultRule` directives
  ("kill shard 1's worker before it answers its 2nd query", "fail shard
  0's next 3 respawns", "delay shard 2's 5th reply by 50 ms");
- worker-side rules ship into each worker process as a picklable
  :class:`WorkerFaults` table; the worker consults it around every
  request it serves.  Request ordinals are **global per shard across
  respawns** — the pool tells each (re)spawned worker how many requests
  its shard has already been sent — so "kill before request 2" fires
  exactly once no matter how many times the worker is reborn;
- parent-side rules (``fail_respawn``) are consumed by the supervisor in
  :mod:`repro.core.workers` when it tries to bring a dead worker back;
- network rules ship into the client-side socket proxies of the
  ``remote`` backend as a :class:`NetworkFaults` table, consulted around
  every request *send* — ordinals count sends per shard across
  reconnects, so a dropped connection's retry lands on the next ordinal
  exactly like a killed worker's does;
- the plan's ``seed`` drives the optional randomized schedule builders
  (:meth:`FaultPlan.kill_loop`) so a "kill a random shard every K
  queries" chaos run is reproducible from one integer.

Entry points: ``PartitionedSubtrajectorySearch(..., backend="processes",
fault_plan=plan)``, ``repro serve --fault-plan plan.json``, and the
chaos suite / ``benchmarks/bench_fault_recovery.py``.

Fault operations (``FaultRule.op``):

=============== ========== =====================================================
op              side       effect
=============== ========== =====================================================
``kill_before`` worker     ``os._exit`` before processing the matched request
``kill_after``  worker     process + reply, then ``os._exit`` (next request
                           finds a dead worker)
``delay_reply`` worker     sleep ``seconds`` before sending the matched reply
``drop_pipe``   worker     close the parent pipe and exit without replying
``wedge_stop``  worker     ignore SIGTERM and "stop" requests (only SIGKILL
                           works — exercises the stop() escalation chain)
``fail_respawn``parent     make the supervisor's next ``count`` respawn
                           attempts of the shard fail
``conn_drop``   network    tear the shard's socket down right after the
                           matched request is sent (reply lost in flight)
``conn_hang``   network    half-open link: the matched request is silently
                           swallowed and no reply ever arrives — only the
                           per-call deadline unmasks it
``slow_link_ms``network    sleep ``ms`` milliseconds before sending the
                           matched request (injected network latency)
``short_write`` network    send the matched request one byte at a time,
                           exercising the peer's partial-read reassembly
=============== ========== =====================================================

Network ops apply only to the ``remote`` backend (pipes have no half-open
failure mode); worker and parent ops apply to both — on ``remote`` the
worker table ships to the node in the connection handshake, so an
injected ``kill_before`` takes the whole node process down.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import asdict, dataclass, field
from random import Random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FaultRule",
    "FaultPlan",
    "NetworkFaults",
    "WorkerFaults",
    "load_fault_plan",
]

#: exit status used by injected kills — distinguishable from a real crash
#: in worker exitcode assertions.
FAULT_EXIT_CODE = 70

_WORKER_OPS = ("kill_before", "kill_after", "delay_reply", "drop_pipe", "wedge_stop")
_PARENT_OPS = ("fail_respawn",)
_NETWORK_OPS = ("conn_drop", "conn_hang", "slow_link_ms", "short_write")


@dataclass(frozen=True)
class FaultRule:
    """One fault directive.

    ``shard`` targets one shard's worker.  ``request`` is the 1-based
    ordinal of the matched request *of kind* ``on`` ("query" or "add"),
    counted per shard across respawns (worker ops count requests the
    worker received; network ops count requests the client sent);
    ``request=0`` matches every request (a shard held permanently down).
    ``count``/``seconds``/``ms`` parameterize
    ``fail_respawn``/``delay_reply``/``slow_link_ms``.
    """

    shard: int
    op: str
    request: int = 0
    on: str = "query"
    count: int = 1
    seconds: float = 0.0
    ms: float = 0.0

    def __post_init__(self) -> None:
        ops = _WORKER_OPS + _PARENT_OPS + _NETWORK_OPS
        if self.op not in ops:
            raise ValueError(
                f"unknown fault op {self.op!r} (expected one of {ops})"
            )
        if self.on not in ("query", "add"):
            raise ValueError(f"fault rule 'on' must be 'query' or 'add', got {self.on!r}")
        if (
            self.shard < 0
            or self.request < 0
            or self.count < 1
            or self.seconds < 0
            or self.ms < 0
        ):
            raise ValueError(f"malformed fault rule {self!r}")


class WorkerFaults:
    """The worker-side slice of a plan for one shard (picklable).

    The worker calls :meth:`before` as each request arrives and
    :meth:`after` once the reply is sent; both take the request's global
    ordinal (offset + local count, maintained by the worker loop).
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self._rules = tuple(rules)

    def __bool__(self) -> bool:
        return bool(self._rules)

    @property
    def wedge_stop(self) -> bool:
        """Whether this worker should ignore SIGTERM / "stop" requests."""
        return any(r.op == "wedge_stop" for r in self._rules)

    def _matching(self, kind: str, ordinal: int) -> Iterable[FaultRule]:
        for rule in self._rules:
            if rule.on == kind and rule.request in (0, ordinal):
                yield rule

    def install(self) -> None:
        """Process-level setup at worker start (signal disposition)."""
        if self.wedge_stop:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)

    def before(self, kind: str, ordinal: int) -> None:
        """Apply pre-processing faults for request ``ordinal``; may not
        return (injected kills exit the process)."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "kill_before":
                os._exit(FAULT_EXIT_CODE)

    def delay(self, kind: str, ordinal: int) -> None:
        """Sleep any injected reply delay for request ``ordinal``."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "delay_reply" and rule.seconds > 0:
                time.sleep(rule.seconds)

    def drop_pipe(self, kind: str, ordinal: int) -> bool:
        """Whether to vanish without replying to request ``ordinal``."""
        return any(
            rule.op == "drop_pipe" for rule in self._matching(kind, ordinal)
        )

    def after(self, kind: str, ordinal: int) -> None:
        """Apply post-reply faults for request ``ordinal``."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "kill_after":
                os._exit(FAULT_EXIT_CODE)


class NetworkFaults:
    """The client-side network-fault slice of a plan for one shard.

    Consulted by the remote backend's socket proxy around every request
    *send*; ordinals are the shard's per-kind send counts across
    reconnects (the proxy's own bookkeeping), so a schedule replays
    bit-identically no matter how often the link is re-established.
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self._rules = tuple(rules)

    def __bool__(self) -> bool:
        return bool(self._rules)

    def _matching(self, kind: str, ordinal: int) -> Iterable[FaultRule]:
        for rule in self._rules:
            if rule.on == kind and rule.request in (0, ordinal):
                yield rule

    def latency(self, kind: str, ordinal: int) -> float:
        """Injected link latency (seconds) before sending ``ordinal``."""
        return sum(
            rule.ms / 1000.0
            for rule in self._matching(kind, ordinal)
            if rule.op == "slow_link_ms"
        )

    def short_write(self, kind: str, ordinal: int) -> Optional[int]:
        """Chunk size to fragment the send into (None = whole frame)."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "short_write":
                return 1
        return None

    def hang(self, kind: str, ordinal: int) -> bool:
        """Whether the link goes half-open instead of sending ``ordinal``."""
        return any(
            rule.op == "conn_hang" for rule in self._matching(kind, ordinal)
        )

    def drop_after(self, kind: str, ordinal: int) -> bool:
        """Whether to tear the socket down right after sending ``ordinal``
        (the reply is lost in flight)."""
        return any(
            rule.op == "conn_drop" for rule in self._matching(kind, ordinal)
        )


@dataclass
class FaultPlan:
    """A reproducible fault schedule for one engine's worker pool.

    Immutable by convention once handed to an engine (the parent-side
    ``fail_respawn`` budget is tracked in the supervisor, not here), so
    one plan value can configure several runs identically.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        rules = [FaultRule(**dict(rule)) for rule in payload.get("rules", [])]
        return cls(rules=rules, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [asdict(rule) for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def kill_loop(
        cls,
        *,
        seed: int,
        num_shards: int,
        kills: int,
        every: int = 3,
        after: bool = False,
    ) -> "FaultPlan":
        """A seeded kill-loop schedule: ``kills`` worker deaths spread over
        random shards, one roughly every ``every`` queries per victim.

        The schedule is a pure function of the arguments — the
        availability benchmark and the chaos CI step replay it exactly.
        Consecutive kills on one shard are spaced at least two ordinals
        apart: the retry of a killed query consumes the next ordinal, so
        a one-ordinal gap would murder the retry as well and the query
        would be lost even with recovery working perfectly (a shard that
        *stays* down is the held-down-shard scenario, not a kill loop).
        """
        if num_shards < 1 or kills < 0 or every < 1:
            raise ValueError("kill_loop needs num_shards>=1, kills>=0, every>=1")
        rng = Random(seed)
        rules: List[FaultRule] = []
        # Per-shard request ordinals advance by one per fan-out query, so
        # scheduling on a shard's ordinal schedules on global query count.
        next_ordinal = [1] * num_shards
        for _ in range(kills):
            shard = rng.randrange(num_shards)
            step = rng.randrange(1, every + 1) + 1
            ordinal = next_ordinal[shard] + step
            rules.append(
                FaultRule(
                    shard=shard,
                    op="kill_after" if after else "kill_before",
                    request=ordinal,
                )
            )
            next_ordinal[shard] = ordinal
        return cls(rules=rules, seed=seed)

    @classmethod
    def network_chaos(
        cls,
        *,
        seed: int,
        num_shards: int,
        drops: int = 0,
        hangs: int = 0,
        slow: int = 0,
        slow_ms: float = 20.0,
        short_writes: int = 0,
        kills: int = 0,
        every: int = 3,
    ) -> "FaultPlan":
        """A seeded mixed network+node chaos schedule for the remote
        backend: ``drops`` connection drops, ``hangs`` half-open links,
        ``slow`` injected-latency requests, ``short_writes`` fragmented
        sends, and ``kills`` node deaths, spread over random shards one
        roughly every ``every`` queries per victim.

        Like :meth:`kill_loop`, the schedule is a pure function of the
        arguments.  Disruptive ops (drops, hangs, kills — anything whose
        retry consumes the next ordinal) are spaced at least two ordinals
        apart per shard so a retry is never disrupted by the same rule
        family it is recovering from; benign ops (latency, short writes)
        share ordinals freely.
        """
        if num_shards < 1 or every < 1 or min(
            drops, hangs, slow, short_writes, kills
        ) < 0:
            raise ValueError(
                "network_chaos needs num_shards>=1, every>=1, counts>=0"
            )
        rng = Random(seed)
        rules: List[FaultRule] = []
        next_ordinal = [1] * num_shards
        disruptive = (
            [("conn_drop", {})] * drops
            + [("conn_hang", {})] * hangs
            + [("kill_before", {})] * kills
        )
        rng.shuffle(disruptive)
        for op, extra in disruptive:
            shard = rng.randrange(num_shards)
            step = rng.randrange(1, every + 1) + 1
            ordinal = next_ordinal[shard] + step
            rules.append(FaultRule(shard=shard, op=op, request=ordinal, **extra))
            next_ordinal[shard] = ordinal
        for op, extra, count in (
            ("slow_link_ms", {"ms": slow_ms}, slow),
            ("short_write", {}, short_writes),
        ):
            for _ in range(count):
                shard = rng.randrange(num_shards)
                ordinal = rng.randrange(1, max(2, next_ordinal[shard] + every))
                rules.append(
                    FaultRule(shard=shard, op=op, request=ordinal, **extra)
                )
        return cls(rules=rules, seed=seed)

    # -- slicing ---------------------------------------------------------

    def worker_faults(self, shard: int) -> Optional[WorkerFaults]:
        """The picklable worker-side rule table for ``shard`` (or None)."""
        mine = [
            rule
            for rule in self.rules
            if rule.shard == shard and rule.op in _WORKER_OPS
        ]
        return WorkerFaults(mine) if mine else None

    def network_faults(self, shard: int) -> Optional["NetworkFaults"]:
        """The client-side network rule table for ``shard`` (or None)."""
        mine = [
            rule
            for rule in self.rules
            if rule.shard == shard and rule.op in _NETWORK_OPS
        ]
        return NetworkFaults(mine) if mine else None

    def respawn_failures(self, shard: int) -> int:
        """How many consecutive supervisor respawns of ``shard`` should be
        made to fail (parent side; the supervisor decrements its copy)."""
        return sum(
            rule.count
            for rule in self.rules
            if rule.shard == shard and rule.op == "fail_respawn"
        )

    def kill_ordinals(self, shard: int) -> Tuple[int, ...]:
        """The query ordinals at which ``shard``'s worker dies (benchmark
        bookkeeping: expected kills for recovery accounting)."""
        return tuple(
            rule.request
            for rule in self.rules
            if rule.shard == shard
            and rule.on == "query"
            and rule.op in ("kill_before", "kill_after", "drop_pipe")
        )

    def disruption_ordinals(self, shard: int) -> Tuple[int, ...]:
        """Query ordinals at which ``shard``'s in-flight query is lost
        and must be retried: worker kills plus the network ops that lose
        a request or its reply (dropped or half-open connections)."""
        return self.kill_ordinals(shard) + tuple(
            rule.request
            for rule in self.rules
            if rule.shard == shard
            and rule.on == "query"
            and rule.op in ("conn_drop", "conn_hang")
        )


def load_fault_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """Parse a CLI ``--fault-plan`` value: a path to a JSON file, or an
    inline JSON object (detected by a leading ``{``)."""
    if spec is None:
        return None
    text = spec.strip()
    if not text.startswith("{"):
        with open(spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text)
