"""Deterministic fault injection for the processes serving backend.

Chaos testing a multiprocess system with ``kill -9`` from the outside is
racy: whether the victim dies before, during, or after a request depends
on scheduler timing, so a failing run cannot be replayed.  This module
moves the faults *inside* the system, keyed to request ordinals, so a
fault schedule is a value — serializable, seedable, and bit-identically
replayable:

- a :class:`FaultPlan` is a list of :class:`FaultRule` directives
  ("kill shard 1's worker before it answers its 2nd query", "fail shard
  0's next 3 respawns", "delay shard 2's 5th reply by 50 ms");
- worker-side rules ship into each worker process as a picklable
  :class:`WorkerFaults` table; the worker consults it around every
  request it serves.  Request ordinals are **global per shard across
  respawns** — the pool tells each (re)spawned worker how many requests
  its shard has already been sent — so "kill before request 2" fires
  exactly once no matter how many times the worker is reborn;
- parent-side rules (``fail_respawn``) are consumed by the supervisor in
  :mod:`repro.core.workers` when it tries to bring a dead worker back;
- the plan's ``seed`` drives the optional randomized schedule builders
  (:meth:`FaultPlan.kill_loop`) so a "kill a random shard every K
  queries" chaos run is reproducible from one integer.

Entry points: ``PartitionedSubtrajectorySearch(..., backend="processes",
fault_plan=plan)``, ``repro serve --fault-plan plan.json``, and the
chaos suite / ``benchmarks/bench_fault_recovery.py``.

Fault operations (``FaultRule.op``):

=============== ========== =====================================================
op              side       effect
=============== ========== =====================================================
``kill_before`` worker     ``os._exit`` before processing the matched request
``kill_after``  worker     process + reply, then ``os._exit`` (next request
                           finds a dead worker)
``delay_reply`` worker     sleep ``seconds`` before sending the matched reply
``drop_pipe``   worker     close the parent pipe and exit without replying
``wedge_stop``  worker     ignore SIGTERM and "stop" requests (only SIGKILL
                           works — exercises the stop() escalation chain)
``fail_respawn``parent     make the supervisor's next ``count`` respawn
                           attempts of the shard fail
=============== ========== =====================================================
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import asdict, dataclass, field
from random import Random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FaultRule", "FaultPlan", "WorkerFaults", "load_fault_plan"]

#: exit status used by injected kills — distinguishable from a real crash
#: in worker exitcode assertions.
FAULT_EXIT_CODE = 70

_WORKER_OPS = ("kill_before", "kill_after", "delay_reply", "drop_pipe", "wedge_stop")
_PARENT_OPS = ("fail_respawn",)


@dataclass(frozen=True)
class FaultRule:
    """One fault directive.

    ``shard`` targets one shard's worker.  ``request`` is the 1-based
    ordinal of the matched request *of kind* ``on`` ("query" or "add"),
    counted per shard across respawns; ``request=0`` matches every
    request (a shard held permanently down).  ``count``/``seconds``
    parameterize ``fail_respawn``/``delay_reply``.
    """

    shard: int
    op: str
    request: int = 0
    on: str = "query"
    count: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _WORKER_OPS + _PARENT_OPS:
            raise ValueError(
                f"unknown fault op {self.op!r} "
                f"(expected one of {_WORKER_OPS + _PARENT_OPS})"
            )
        if self.on not in ("query", "add"):
            raise ValueError(f"fault rule 'on' must be 'query' or 'add', got {self.on!r}")
        if self.shard < 0 or self.request < 0 or self.count < 1 or self.seconds < 0:
            raise ValueError(f"malformed fault rule {self!r}")


class WorkerFaults:
    """The worker-side slice of a plan for one shard (picklable).

    The worker calls :meth:`before` as each request arrives and
    :meth:`after` once the reply is sent; both take the request's global
    ordinal (offset + local count, maintained by the worker loop).
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self._rules = tuple(rules)

    def __bool__(self) -> bool:
        return bool(self._rules)

    @property
    def wedge_stop(self) -> bool:
        """Whether this worker should ignore SIGTERM / "stop" requests."""
        return any(r.op == "wedge_stop" for r in self._rules)

    def _matching(self, kind: str, ordinal: int) -> Iterable[FaultRule]:
        for rule in self._rules:
            if rule.on == kind and rule.request in (0, ordinal):
                yield rule

    def install(self) -> None:
        """Process-level setup at worker start (signal disposition)."""
        if self.wedge_stop:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)

    def before(self, kind: str, ordinal: int) -> None:
        """Apply pre-processing faults for request ``ordinal``; may not
        return (injected kills exit the process)."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "kill_before":
                os._exit(FAULT_EXIT_CODE)

    def delay(self, kind: str, ordinal: int) -> None:
        """Sleep any injected reply delay for request ``ordinal``."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "delay_reply" and rule.seconds > 0:
                time.sleep(rule.seconds)

    def drop_pipe(self, kind: str, ordinal: int) -> bool:
        """Whether to vanish without replying to request ``ordinal``."""
        return any(
            rule.op == "drop_pipe" for rule in self._matching(kind, ordinal)
        )

    def after(self, kind: str, ordinal: int) -> None:
        """Apply post-reply faults for request ``ordinal``."""
        for rule in self._matching(kind, ordinal):
            if rule.op == "kill_after":
                os._exit(FAULT_EXIT_CODE)


@dataclass
class FaultPlan:
    """A reproducible fault schedule for one engine's worker pool.

    Immutable by convention once handed to an engine (the parent-side
    ``fail_respawn`` budget is tracked in the supervisor, not here), so
    one plan value can configure several runs identically.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        rules = [FaultRule(**dict(rule)) for rule in payload.get("rules", [])]
        return cls(rules=rules, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [asdict(rule) for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def kill_loop(
        cls,
        *,
        seed: int,
        num_shards: int,
        kills: int,
        every: int = 3,
        after: bool = False,
    ) -> "FaultPlan":
        """A seeded kill-loop schedule: ``kills`` worker deaths spread over
        random shards, one roughly every ``every`` queries per victim.

        The schedule is a pure function of the arguments — the
        availability benchmark and the chaos CI step replay it exactly.
        Consecutive kills on one shard are spaced at least two ordinals
        apart: the retry of a killed query consumes the next ordinal, so
        a one-ordinal gap would murder the retry as well and the query
        would be lost even with recovery working perfectly (a shard that
        *stays* down is the held-down-shard scenario, not a kill loop).
        """
        if num_shards < 1 or kills < 0 or every < 1:
            raise ValueError("kill_loop needs num_shards>=1, kills>=0, every>=1")
        rng = Random(seed)
        rules: List[FaultRule] = []
        # Per-shard request ordinals advance by one per fan-out query, so
        # scheduling on a shard's ordinal schedules on global query count.
        next_ordinal = [1] * num_shards
        for _ in range(kills):
            shard = rng.randrange(num_shards)
            step = rng.randrange(1, every + 1) + 1
            ordinal = next_ordinal[shard] + step
            rules.append(
                FaultRule(
                    shard=shard,
                    op="kill_after" if after else "kill_before",
                    request=ordinal,
                )
            )
            next_ordinal[shard] = ordinal
        return cls(rules=rules, seed=seed)

    # -- slicing ---------------------------------------------------------

    def worker_faults(self, shard: int) -> Optional[WorkerFaults]:
        """The picklable worker-side rule table for ``shard`` (or None)."""
        mine = [
            rule
            for rule in self.rules
            if rule.shard == shard and rule.op in _WORKER_OPS
        ]
        return WorkerFaults(mine) if mine else None

    def respawn_failures(self, shard: int) -> int:
        """How many consecutive supervisor respawns of ``shard`` should be
        made to fail (parent side; the supervisor decrements its copy)."""
        return sum(
            rule.count
            for rule in self.rules
            if rule.shard == shard and rule.op == "fail_respawn"
        )

    def kill_ordinals(self, shard: int) -> Tuple[int, ...]:
        """The query ordinals at which ``shard``'s worker dies (benchmark
        bookkeeping: expected kills for recovery accounting)."""
        return tuple(
            rule.request
            for rule in self.rules
            if rule.shard == shard
            and rule.on == "query"
            and rule.op in ("kill_before", "kill_after", "drop_pipe")
        )


def load_fault_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """Parse a CLI ``--fault-plan`` value: a path to a JSON file, or an
    inline JSON object (detected by a leading ``{``)."""
    if spec is None:
        return None
    text = spec.strip()
    if not text.startswith("{"):
        with open(spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text)
