"""Road-network substrate.

The paper models the road network as a directed graph ``G = (V, E)`` whose
vertices carry planar coordinates and whose edges carry travel costs
(§2.1).  This package provides the graph container, synthetic network
generators (substituting for the OSM networks used in the paper), shortest
path algorithms (Dijkstra variants), and a pruned-landmark hub-labeling
index for fast pairwise network distances (used by NetEDR / NetERP).
"""

from repro.network.graph import Edge, RoadNetwork
from repro.network.generators import (
    grid_city,
    radial_ring_city,
    random_city,
)
from repro.network.hub_labeling import HubLabeling
from repro.network.shortest_path import (
    bounded_dijkstra,
    dijkstra,
    shortest_path,
    shortest_path_distance,
)

__all__ = [
    "Edge",
    "HubLabeling",
    "RoadNetwork",
    "bounded_dijkstra",
    "dijkstra",
    "grid_city",
    "radial_ring_city",
    "random_city",
    "shortest_path",
    "shortest_path_distance",
]
