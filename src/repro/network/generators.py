"""Synthetic road-network generators.

The paper evaluates on the Beijing, Porto, Singapore, and San Francisco road
networks, which we cannot ship.  These generators build laptop-scale
networks with the structural properties the algorithms depend on:

- *sparsity*: small out-degree (typically 3–4, §5.2 notes "typically three"
  possible next edges), which drives the bidirectional-trie hit rate;
- *planarity-ish locality*: edges connect spatially nearby vertices, so
  spatial range queries correlate with graph neighborhoods;
- *directedness with mostly two-way streets* plus a fraction of one-way
  streets, matching urban grids.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.network.graph import RoadNetwork

__all__ = ["grid_city", "radial_ring_city", "random_city"]


def grid_city(
    rows: int,
    cols: int,
    *,
    spacing: float = 100.0,
    jitter: float = 0.25,
    diagonal_prob: float = 0.10,
    one_way_prob: float = 0.08,
    removal_prob: float = 0.04,
    seed: int = 0,
) -> RoadNetwork:
    """A jittered grid with occasional diagonals and one-way streets.

    ``spacing`` is the nominal block size (meters); ``jitter`` perturbs
    vertex positions by a fraction of the spacing so edge weights vary;
    ``diagonal_prob`` adds shortcut diagonals; ``one_way_prob`` drops the
    reverse direction of a street; ``removal_prob`` deletes whole streets to
    break the perfect lattice.  The result is guaranteed weakly connected
    (removals that would disconnect the grid border are skipped).
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_city needs at least a 2x2 grid")
    rng = random.Random(seed)
    g = RoadNetwork()
    ids: List[List[int]] = []
    for r in range(rows):
        row_ids = []
        for c in range(cols):
            x = c * spacing + rng.uniform(-jitter, jitter) * spacing
            y = r * spacing + rng.uniform(-jitter, jitter) * spacing
            row_ids.append(g.add_vertex((x, y)))
        ids.append(row_ids)

    def connect(a: int, b: int) -> None:
        if rng.random() < removal_prob and _is_interior(a, b):
            return
        g.add_edge(a, b)
        if rng.random() >= one_way_prob:
            g.add_edge(b, a)

    def _is_interior(a: int, b: int) -> bool:
        ra, ca = divmod(a, cols)
        rb, cb = divmod(b, cols)
        return 0 < ra < rows - 1 and 0 < rb < rows - 1 and 0 < ca < cols - 1 and 0 < cb < cols - 1

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connect(ids[r][c], ids[r][c + 1])
            if r + 1 < rows:
                connect(ids[r][c], ids[r + 1][c])
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                if rng.random() < 0.5:
                    connect(ids[r][c], ids[r + 1][c + 1])
                else:
                    connect(ids[r][c + 1], ids[r + 1][c])
    return g


def radial_ring_city(
    rings: int,
    spokes: int,
    *,
    ring_spacing: float = 150.0,
    seed: int = 0,
) -> RoadNetwork:
    """A radial/ring topology (Beijing-like ring roads around a center)."""
    if rings < 1 or spokes < 3:
        raise ValueError("need >=1 ring and >=3 spokes")
    rng = random.Random(seed)
    g = RoadNetwork()
    center = g.add_vertex((0.0, 0.0))
    ring_ids: List[List[int]] = []
    for r in range(1, rings + 1):
        radius = r * ring_spacing * (1.0 + rng.uniform(-0.05, 0.05))
        ring = []
        for s in range(spokes):
            theta = 2 * math.pi * s / spokes + rng.uniform(-0.02, 0.02)
            ring.append(g.add_vertex((radius * math.cos(theta), radius * math.sin(theta))))
        ring_ids.append(ring)
    for s in range(spokes):
        g.add_edge(center, ring_ids[0][s])
        g.add_edge(ring_ids[0][s], center)
        for r in range(rings - 1):
            a, b = ring_ids[r][s], ring_ids[r + 1][s]
            g.add_edge(a, b)
            g.add_edge(b, a)
    for r in range(rings):
        for s in range(spokes):
            a, b = ring_ids[r][s], ring_ids[r][(s + 1) % spokes]
            g.add_edge(a, b)
            g.add_edge(b, a)
    return g


def random_city(
    num_vertices: int,
    *,
    extent: float = 5000.0,
    k_neighbors: int = 3,
    one_way_prob: float = 0.05,
    seed: int = 0,
) -> RoadNetwork:
    """An irregular network: random points wired to their nearest neighbors.

    Produces organically-shaped street patterns (Porto-like old town).  Each
    vertex connects to its ``k_neighbors`` nearest neighbors; a spanning
    chain over the x-sorted points guarantees weak connectivity.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    rng = random.Random(seed)
    pts: List[Tuple[float, float]] = [
        (rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(num_vertices)
    ]
    g = RoadNetwork()
    for p in pts:
        g.add_vertex(p)

    def add_two_way(a: int, b: int) -> None:
        if a == b:
            return
        if not g.has_edge(a, b):
            g.add_edge(a, b)
        if rng.random() >= one_way_prob and not g.has_edge(b, a):
            g.add_edge(b, a)

    # kNN wiring via a simple grid hash (avoids O(n^2) for large n).
    cell = extent / max(1, int(math.sqrt(num_vertices)))
    buckets: dict = {}
    for i, (x, y) in enumerate(pts):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)
    for i, (x, y) in enumerate(pts):
        cx, cy = int(x / cell), int(y / cell)
        cand: List[int] = []
        radius = 1
        while len(cand) <= k_neighbors and radius < 10:
            cand = [
                j
                for dx in range(-radius, radius + 1)
                for dy in range(-radius, radius + 1)
                for j in buckets.get((cx + dx, cy + dy), [])
                if j != i
            ]
            radius += 1
        cand.sort(key=lambda j: (pts[j][0] - x) ** 2 + (pts[j][1] - y) ** 2)
        for j in cand[:k_neighbors]:
            add_two_way(i, j)

    # Connectivity backbone: chain along x-sorted order.
    order = sorted(range(num_vertices), key=lambda i: pts[i])
    for a, b in zip(order, order[1:]):
        add_two_way(a, b)
    return g
