"""Directed road-network graph with vertex coordinates and edge weights.

Vertices are dense integers ``0..n-1`` (the paper's alphabet for vertex
representation); edges are dense integers ``0..m-1`` (the alphabet for edge
representation).  Both alphabets are used by the search engine, so the graph
exposes fast translation in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.spatial.geometry import Point, euclidean

__all__ = ["Edge", "RoadNetwork"]


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed road segment ``source -> target`` with travel cost ``weight``."""

    eid: int
    source: int
    target: int
    weight: float


class RoadNetwork:
    """A directed graph ``G = (V, E)`` with coordinates and edge weights.

    Construction is incremental (``add_vertex`` / ``add_edge``); all query
    structures (adjacency, reverse adjacency, edge lookup) are maintained
    eagerly so the graph is always consistent.

    >>> g = RoadNetwork()
    >>> a = g.add_vertex((0.0, 0.0)); b = g.add_vertex((1.0, 0.0))
    >>> eid = g.add_edge(a, b)          # weight defaults to Euclidean length
    >>> g.edge(eid).weight
    1.0
    """

    def __init__(self) -> None:
        self._coords: List[Point] = []
        self._edges: List[Edge] = []
        self._out: List[List[int]] = []  # vertex -> outgoing edge ids
        self._in: List[List[int]] = []  # vertex -> incoming edge ids
        self._edge_by_pair: Dict[Tuple[int, int], int] = {}

    # -- construction ------------------------------------------------------

    def add_vertex(self, coord: Point) -> int:
        """Add a vertex at ``coord`` and return its id."""
        self._coords.append((float(coord[0]), float(coord[1])))
        self._out.append([])
        self._in.append([])
        return len(self._coords) - 1

    def add_edge(self, source: int, target: int, weight: Optional[float] = None) -> int:
        """Add a directed edge; weight defaults to the Euclidean length.

        Parallel edges are rejected: the edge alphabet must map one symbol
        per ``(source, target)`` pair, which also matches real road graphs.
        """
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            raise GraphError(f"self-loop edge at vertex {source}")
        if (source, target) in self._edge_by_pair:
            raise GraphError(f"duplicate edge {source}->{target}")
        if weight is None:
            weight = euclidean(self._coords[source], self._coords[target])
        if weight < 0:
            raise GraphError(f"negative edge weight {weight} on {source}->{target}")
        eid = len(self._edges)
        self._edges.append(Edge(eid, source, target, float(weight)))
        self._out[source].append(eid)
        self._in[target].append(eid)
        self._edge_by_pair[(source, target)] = eid
        return eid

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._coords):
            raise GraphError(f"unknown vertex {v}")

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """|V|."""
        return len(self._coords)

    @property
    def num_edges(self) -> int:
        """|E|."""
        return len(self._edges)

    def coord(self, v: int) -> Point:
        """Planar coordinate of vertex ``v``."""
        self._check_vertex(v)
        return self._coords[v]

    @property
    def coords(self) -> Sequence[Point]:
        """All vertex coordinates, indexed by vertex id."""
        return self._coords

    def edge(self, eid: int) -> Edge:
        """The :class:`Edge` with id ``eid``."""
        if not 0 <= eid < len(self._edges):
            raise GraphError(f"unknown edge {eid}")
        return self._edges[eid]

    @property
    def edges(self) -> Sequence[Edge]:
        """All edges, indexed by edge id."""
        return self._edges

    def edge_id(self, source: int, target: int) -> int:
        """The edge id for ``source -> target``; raises if absent."""
        try:
            return self._edge_by_pair[(source, target)]
        except KeyError:
            raise GraphError(f"no edge {source}->{target}") from None

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        return (source, target) in self._edge_by_pair

    def out_edges(self, v: int) -> Iterator[Edge]:
        """Outgoing edges of ``v``."""
        self._check_vertex(v)
        return (self._edges[eid] for eid in self._out[v])

    def in_edges(self, v: int) -> Iterator[Edge]:
        """Incoming edges of ``v``."""
        self._check_vertex(v)
        return (self._edges[eid] for eid in self._in[v])

    def successors(self, v: int) -> List[int]:
        """Vertices reachable from ``v`` by one edge."""
        self._check_vertex(v)
        return [self._edges[eid].target for eid in self._out[v]]

    def predecessors(self, v: int) -> List[int]:
        """Vertices with an edge into ``v``."""
        self._check_vertex(v)
        return [self._edges[eid].source for eid in self._in[v]]

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        self._check_vertex(v)
        return len(self._out[v])

    def degree(self, v: int) -> int:
        """Total (in + out) degree, used for hub-labeling vertex ordering."""
        self._check_vertex(v)
        return len(self._out[v]) + len(self._in[v])

    # -- path helpers --------------------------------------------------------

    def is_path(self, vertices: Sequence[int]) -> bool:
        """True iff consecutive vertices are connected by edges (a valid
        trajectory in vertex representation, §2.1)."""
        return all(
            self.has_edge(a, b) for a, b in zip(vertices, vertices[1:])
        ) and all(0 <= v < self.num_vertices for v in vertices)

    def path_to_edges(self, vertices: Sequence[int]) -> List[int]:
        """Convert a vertex path to its edge representation (§2.1)."""
        return [self.edge_id(a, b) for a, b in zip(vertices, vertices[1:])]

    def edges_to_path(self, edge_ids: Sequence[int]) -> List[int]:
        """Convert an edge path back to its vertex representation."""
        if not edge_ids:
            return []
        verts = [self.edge(edge_ids[0]).source]
        for eid in edge_ids:
            e = self.edge(eid)
            if e.source != verts[-1]:
                raise GraphError(
                    f"edge {eid} does not continue the path at vertex {verts[-1]}"
                )
            verts.append(e.target)
        return verts

    def path_length(self, vertices: Sequence[int]) -> float:
        """Total edge weight along a vertex path."""
        return sum(
            self._edges[self.edge_id(a, b)].weight
            for a, b in zip(vertices, vertices[1:])
        )

    # -- derived views -------------------------------------------------------

    def undirected(self) -> "RoadNetwork":
        """An undirected view: every edge gets a reverse twin if missing.

        §2.2.3: shortest-path distance on a directed graph is asymmetric,
        which violates the WED symmetry assumption; the paper's fix is to
        make the road network undirected.  Reverse edges reuse the forward
        weight.
        """
        g = RoadNetwork()
        for c in self._coords:
            g.add_vertex(c)
        for e in self._edges:
            if not g.has_edge(e.source, e.target):
                g.add_edge(e.source, e.target, e.weight)
            if not g.has_edge(e.target, e.source):
                w = e.weight
                if (e.target, e.source) in self._edge_by_pair:
                    w = self._edges[self._edge_by_pair[(e.target, e.source)]].weight
                g.add_edge(e.target, e.source, w)
        return g

    def median_edge_weight(self) -> float:
        """Median edge weight — the paper's default NetEDR epsilon and
        NetERP eta (§6.1)."""
        if not self._edges:
            raise GraphError("graph has no edges")
        ws = sorted(e.weight for e in self._edges)
        return ws[len(ws) // 2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoadNetwork(|V|={self.num_vertices}, |E|={self.num_edges})"
