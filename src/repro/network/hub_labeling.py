"""Pruned landmark labeling (hub labeling) for shortest-path distances.

The paper computes NetEDR/NetERP substitution costs ``sub(a, b)`` with a
hub-labeling index [1, 2] so that pairwise network distances are answered
in microseconds during verification (§4.2).  This module implements pruned
landmark labeling (Akiba et al., SIGMOD 2013) for weighted digraphs:

- vertices are processed in decreasing degree order;
- from each landmark a forward and a backward pruned Dijkstra is run;
- a visit to ``v`` is pruned when the current labels already certify a path
  ``landmark -> v`` at most as long as the tentative distance.

``query(u, v)`` then returns ``min over h of d(u, h) + d(h, v)`` by merging
the forward label of ``u`` with the backward label of ``v``.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple

from repro.network.graph import RoadNetwork

__all__ = ["HubLabeling"]


class HubLabeling:
    """Exact point-to-point distance oracle built from pruned Dijkstras.

    >>> hl = HubLabeling(graph)
    >>> hl.query(0, 5)  # == dijkstra distance
    """

    def __init__(self, graph: RoadNetwork) -> None:
        n = graph.num_vertices
        order = sorted(range(n), key=graph.degree, reverse=True)
        # label_out[v]: sorted list of (hub, dist) certifying v -> hub? No:
        # label_out[v] holds hubs reachable FROM v (forward distances v->h is
        # wrong; see below).  We store:
        #   label_fwd[v] = {h: d(h, v)} for forward searches from landmarks
        #   label_bwd[v] = {h: d(v, h)} for backward searches
        # so query(u, v) = min_h label_bwd[u][h] + label_fwd[v][h].
        self._fwd: List[Dict[int, float]] = [dict() for _ in range(n)]
        self._bwd: List[Dict[int, float]] = [dict() for _ in range(n)]
        for landmark in order:
            self._pruned_search(graph, landmark, forward=True)
            self._pruned_search(graph, landmark, forward=False)

    def _pruned_search(self, graph: RoadNetwork, landmark: int, forward: bool) -> None:
        dist: Dict[int, float] = {landmark: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, landmark)]
        labels = self._fwd if forward else self._bwd
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, math.inf):
                continue
            # Prune if existing labels already certify a landmark->u path
            # (or u->landmark for backward) no longer than d.
            if forward:
                cert = self._query_labels(self._bwd[landmark], self._fwd[u])
            else:
                cert = self._query_labels(self._bwd[u], self._fwd[landmark])
            if cert <= d:
                continue
            labels[u][landmark] = d
            edges = graph.out_edges(u) if forward else graph.in_edges(u)
            for e in edges:
                nxt = e.target if forward else e.source
                nd = d + e.weight
                if nd < dist.get(nxt, math.inf):
                    dist[nxt] = nd
                    heapq.heappush(heap, (nd, nxt))

    @staticmethod
    def _query_labels(bwd_u: Dict[int, float], fwd_v: Dict[int, float]) -> float:
        if len(bwd_u) > len(fwd_v):
            bwd_u, fwd_v = fwd_v, bwd_u
        best = math.inf
        for h, d1 in bwd_u.items():
            d2 = fwd_v.get(h)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def query(self, u: int, v: int) -> float:
        """Shortest-path distance ``u -> v`` (``inf`` if disconnected)."""
        if u == v:
            return 0.0
        return self._query_labels(self._bwd[u], self._fwd[v])

    @property
    def label_count(self) -> int:
        """Total number of label entries (an index size proxy)."""
        return sum(len(l) for l in self._fwd) + sum(len(l) for l in self._bwd)
