"""Serialization of road networks and trajectory datasets.

A minimal line-oriented text format keeps datasets inspectable and
diff-friendly; JSON is avoided for the bulk payload because vertex/edge
tables dominate and benefit from the compact representation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork

__all__ = ["load_network", "save_network"]

_MAGIC = "repro-network-v1"


def save_network(graph: RoadNetwork, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` in the repro text format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        header = {
            "magic": _MAGIC,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }
        f.write(json.dumps(header) + "\n")
        for v in range(graph.num_vertices):
            x, y = graph.coord(v)
            f.write(f"v {x!r} {y!r}\n")
        for e in graph.edges:
            f.write(f"e {e.source} {e.target} {e.weight!r}\n")


def load_network(path: Union[str, Path]) -> RoadNetwork:
    """Read a network previously written by :func:`save_network`."""
    path = Path(path)
    g = RoadNetwork()
    with path.open("r", encoding="utf-8") as f:
        header_line = f.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise GraphError(f"{path}: bad header: {exc}") from exc
        if header.get("magic") != _MAGIC:
            raise GraphError(f"{path}: not a repro network file")
        for line in f:
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "v":
                g.add_vertex((float(parts[1]), float(parts[2])))
            elif parts[0] == "e":
                g.add_edge(int(parts[1]), int(parts[2]), float(parts[3]))
            else:
                raise GraphError(f"{path}: unknown record {parts[0]!r}")
    if g.num_vertices != header["num_vertices"] or g.num_edges != header["num_edges"]:
        raise GraphError(f"{path}: truncated file")
    return g
