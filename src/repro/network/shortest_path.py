"""Shortest-path algorithms on :class:`~repro.network.graph.RoadNetwork`.

Three variants are provided, each matching a use in the paper:

- :func:`dijkstra` — full single-source distances, used by the synthetic
  trajectory generator (route planning) and as a test oracle.
- :func:`bounded_dijkstra` — distances within a radius, used to compute
  network-distance substitution neighborhoods ``B(q)`` for NetEDR/NetERP
  (Def. 4) and the filtering cost ``c(q)`` (Eq. 7).
- :func:`bidirectional_dijkstra` — point-to-point queries, the fallback when
  no hub-labeling index has been built.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork

__all__ = [
    "bidirectional_dijkstra",
    "bounded_dijkstra",
    "dijkstra",
    "shortest_path",
    "shortest_path_distance",
]


def dijkstra(graph: RoadNetwork, source: int) -> Tuple[List[float], List[int]]:
    """Single-source shortest paths.

    Returns ``(dist, parent)`` where ``dist[v]`` is ``inf`` for unreachable
    vertices and ``parent[v]`` is the predecessor on a shortest path (-1 for
    the source and unreachable vertices).
    """
    n = graph.num_vertices
    dist = [math.inf] * n
    parent = [-1] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd < dist[e.target]:
                dist[e.target] = nd
                parent[e.target] = u
                heapq.heappush(heap, (nd, e.target))
    return dist, parent


def bounded_dijkstra(graph: RoadNetwork, source: int, radius: float) -> Dict[int, float]:
    """All vertices within network distance ``radius`` of ``source``.

    The scan stops as soon as the frontier exceeds ``radius``, so the cost is
    proportional to the neighborhood size, not the graph size — this is what
    keeps ``B(q)`` computation cheap on sparse road networks.
    """
    if radius < 0:
        raise ValueError("radius must be nonnegative")
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        if d > radius:
            break
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd <= radius and nd < dist.get(e.target, math.inf):
                dist[e.target] = nd
                heapq.heappush(heap, (nd, e.target))
    return {v: d for v, d in dist.items() if d <= radius}


def bidirectional_dijkstra(graph: RoadNetwork, source: int, target: int) -> float:
    """Point-to-point shortest path distance (``inf`` if disconnected)."""
    if source == target:
        return 0.0
    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = math.inf
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # Expand the smaller frontier.
        if heap_f[0][0] <= heap_b[0][0]:
            d, u = heapq.heappop(heap_f)
            if d > dist_f.get(u, math.inf):
                continue
            if u in dist_b:
                best = min(best, d + dist_b[u])
            for e in graph.out_edges(u):
                nd = d + e.weight
                if nd < dist_f.get(e.target, math.inf):
                    dist_f[e.target] = nd
                    heapq.heappush(heap_f, (nd, e.target))
        else:
            d, u = heapq.heappop(heap_b)
            if d > dist_b.get(u, math.inf):
                continue
            if u in dist_f:
                best = min(best, d + dist_f[u])
            for e in graph.in_edges(u):
                nd = d + e.weight
                if nd < dist_b.get(e.source, math.inf):
                    dist_b[e.source] = nd
                    heapq.heappush(heap_b, (nd, e.source))
    return best


def shortest_path_distance(graph: RoadNetwork, source: int, target: int) -> float:
    """Convenience wrapper over :func:`bidirectional_dijkstra`."""
    return bidirectional_dijkstra(graph, source, target)


def shortest_path(graph: RoadNetwork, source: int, target: int) -> Optional[List[int]]:
    """A shortest vertex path from ``source`` to ``target`` (None if
    disconnected).  Used by the trip generator and HMM map matching."""
    n = graph.num_vertices
    dist = [math.inf] * n
    parent = [-1] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            break
        if d > dist[u]:
            continue
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd < dist[e.target]:
                dist[e.target] = nd
                parent[e.target] = u
                heapq.heappush(heap, (nd, e.target))
    if math.isinf(dist[target]):
        return None
    path = [target]
    while path[-1] != source:
        prev = parent[path[-1]]
        if prev < 0:
            raise GraphError("broken parent chain in shortest_path")
        path.append(prev)
    path.reverse()
    return path
