"""Observability primitives: trace spans, Prometheus-text metrics, and
the slow-query flight recorder.

Deliberately dependency-free and service-agnostic — the serving layer's
wiring lives in :mod:`repro.service.observability`; this package only
knows how to time spans (:mod:`~repro.obs.tracing`), render exposition
text (:mod:`~repro.obs.metrics`), and keep bounded trace history
(:mod:`~repro.obs.flight`).
"""

from repro.obs.flight import FlightRecorder, render_trace, slow_query_record
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_value,
)
from repro.obs.tracing import Span, SpanContext, Trace, Tracer, synthesize_trace

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Trace",
    "Tracer",
    "format_metric_value",
    "render_trace",
    "slow_query_record",
    "synthesize_trace",
]
