"""Flight recorder: bounded buffers of completed traces, plus rendering.

An operator debugging "why was *that* query slow" needs the trace of a
request that already finished — so completed traces land in two bounded
structures:

- a ring of the ``recent`` most recent traces (what just happened);
- a min-heap of the ``slowest`` slowest traces seen so far (the worst
  offenders over the recorder's lifetime), keyed on root duration.

Both hold plain trace dicts (:meth:`repro.obs.tracing.Trace.to_dict` or
:func:`~repro.obs.tracing.synthesize_trace` records), so the
``/debug/traces`` endpoint serializes them verbatim and the CLI renders
them without touching live Span objects.  Memory is bounded by
``recent + slowest`` trace dicts regardless of traffic.

:func:`render_trace` turns one record into the indented span tree the
``repro trace`` CLI prints; :func:`slow_query_record` is the one-line
JSON payload logged for every query over the slow threshold.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["FlightRecorder", "render_trace", "slow_query_record"]


class FlightRecorder:
    """Thread-safe bounded store of completed trace records."""

    def __init__(self, *, recent: int = 64, slowest: int = 16) -> None:
        if recent < 1 or slowest < 1:
            raise ValueError("flight recorder capacities must be >= 1")
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=recent)
        self._slowest_cap = slowest
        #: min-heap of (duration, tiebreak, trace) — the root is the
        #: *fastest* of the kept slowest, evicted first.
        self._slowest: List[tuple] = []
        self._tiebreak = itertools.count()
        self.recorded = 0

    def record(self, trace: Dict[str, Any]) -> None:
        """File one completed trace record."""
        duration = float(trace.get("duration", 0.0))
        with self._lock:
            self.recorded += 1
            self._recent.append(trace)
            entry = (duration, next(self._tiebreak), trace)
            if len(self._slowest) < self._slowest_cap:
                heapq.heappush(self._slowest, entry)
            elif duration > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, entry)

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most recent traces, newest first."""
        with self._lock:
            out = list(self._recent)
        out.reverse()
        return out if limit is None else out[:limit]

    def slowest(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slowest traces, slowest first."""
        with self._lock:
            ordered = sorted(self._slowest, key=lambda e: (-e[0], -e[1]))
        traces = [entry[2] for entry in ordered]
        return traces if limit is None else traces[:limit]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "recorded": self.recorded,
                "recent": len(self._recent),
                "slowest": len(self._slowest),
            }


def _format_attrs(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
    return f"  [{inner}]"


def render_trace(trace: Dict[str, Any]) -> str:
    """One trace record as an indented span tree with durations.

    Spans are flat records carrying ``parent_id``; the tree is rebuilt
    here, children ordered by start time.  Orphans (a parent span lost
    to sampling races or a worker crash mid-export) attach under the
    root rather than disappearing.
    """
    spans = list(trace.get("spans", []))
    if not spans:
        return f"trace {trace.get('trace_id', '?')}: <no spans>"
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id", "")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    root = roots[0]
    for orphan in roots[1:]:
        children.setdefault(root["span_id"], []).append(orphan)

    header = (
        f"trace {trace.get('trace_id', '?')}"
        f"{'  (synthesized)' if trace.get('synthesized') else ''}"
    )
    lines = [header]

    def walk(span: Dict[str, Any], depth: int) -> None:
        duration_ms = float(span.get("duration", 0.0)) * 1e3
        lines.append(
            f"{'  ' * depth}- {span['name']}  {duration_ms:.3f} ms"
            f"{_format_attrs(span.get('attributes', {}))}"
        )
        for child in sorted(
            children.get(span["span_id"], []), key=lambda s: s.get("start", 0.0)
        ):
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def slow_query_record(
    trace_or_none: Optional[Dict[str, Any]],
    *,
    seconds: float,
    threshold: float,
    **fields: Any,
) -> Dict[str, Any]:
    """The one-line JSON payload logged for a slow query.

    Flat scalars only (log pipelines index them); the full span tree
    stays in the flight recorder, referenced by ``trace_id`` when one
    was recorded.
    """
    record: Dict[str, Any] = {
        "event": "slow_query",
        "seconds": seconds,
        "threshold_seconds": threshold,
    }
    if trace_or_none is not None:
        record["trace_id"] = trace_or_none.get("trace_id", "")
    record.update(fields)
    return record
