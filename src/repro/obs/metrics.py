"""A hand-rolled Prometheus-text metrics registry (zero dependencies).

The serving layer already keeps counters (:class:`repro.service.metrics.
Metrics`) and the engine keeps cache stats; what a scraper needs is the
`text exposition format`__ — ``# HELP`` / ``# TYPE`` headers, labeled
samples, cumulative histogram buckets.  This module provides exactly
that and nothing more: three instrument kinds (:class:`Counter`,
:class:`Gauge`, :class:`Histogram`) for *push*-style observation on the
request path, plus *collector callbacks* that derive samples from
existing stats dicts at scrape time (so gauges like cache sizes cost
nothing between scrapes).

__ https://prometheus.io/docs/instrumenting/exposition_formats/

Instruments are thread-safe (one lock per instrument; the request path
takes it for a dict update, the scraper for a copy).  Label values are
escaped per the exposition spec (backslash, quote, newline).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metric_value",
]

#: a collector yields metric families: (name, type, help, samples) where
#: each sample is ``(label_dict, value)``.
Family = Tuple[str, str, str, List[Tuple[Dict[str, str], float]]]
Collector = Callable[[], Iterable[Family]]


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def format_metric_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``, floats
    via ``repr`` (shortest round-trip form), infinities as ``+Inf``."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 2**53:
        return str(int(as_float))
    return repr(as_float)


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared plumbing: name/help/labelnames plus a guarded value map."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key_of(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Instrument):
    """A monotonically increasing sum, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key_of(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key_of(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        with self._lock:
            items = list(self._values.items())
        return [(self._labels_of(key), value) for key, value in items]


class Gauge(_Instrument):
    """A value that goes up and down (set on observation)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def set(self, value: float, **labels: Any) -> None:
        key = self._key_of(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        key = self._key_of(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        with self._lock:
            items = list(self._values.items())
        return [(self._labels_of(key), value) for key, value in items]


class Histogram(_Instrument):
    """Cumulative-bucket histogram (the Prometheus shape).

    ``buckets`` are the finite upper bounds; the ``+Inf`` bucket is
    implicit.  Each label set keeps per-bucket counts, a sum, and a
    count, rendered as ``_bucket{le=...}`` / ``_sum`` / ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = sorted(float(b) for b in buckets)
        if ordered != [float(b) for b in buckets]:
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets: Tuple[float, ...] = tuple(ordered)
        #: key -> [bucket_counts..., +Inf count]; sums/counts separate.
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._counts[()] = [0] * (len(self.buckets) + 1)
            self._sums[()] = 0.0

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key_of(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            # Linear scan: bucket lists are short (<= ~15) and the scan
            # stays branch-predictable; bisect would allocate a tuple.
            placed = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    placed = i
                    break
            counts[placed] += 1
            self._sums[key] = self._sums[key] + value

    def snapshot(
        self,
    ) -> List[Tuple[Dict[str, str], List[int], float]]:
        """``(labels, per-bucket counts, sum)`` per label set."""
        with self._lock:
            return [
                (self._labels_of(key), list(counts), self._sums[key])
                for key, counts in self._counts.items()
            ]


class MetricsRegistry:
    """Instruments plus pull-collectors, rendered as one text page.

    Two feeding styles:

    - :meth:`counter` / :meth:`gauge` / :meth:`histogram` create *push*
      instruments the request path observes into;
    - :meth:`register_collector` adds a callback producing whole metric
      families at scrape time — for values that already live somewhere
      (cache stats dicts, queue depths) and would be wasteful to mirror
      on every request.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Collector] = []

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._add(Counter(name, help_text, labelnames))

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._add(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._add(Histogram(name, help_text, buckets, labelnames))

    def register_collector(self, collector: Collector) -> None:
        with self._lock:
            self._collectors.append(collector)

    def _add(self, instrument):
        with self._lock:
            if instrument.name in self._instruments:
                raise ValueError(f"duplicate metric name {instrument.name!r}")
            self._instruments[instrument.name] = instrument
        return instrument

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """The full ``/metrics`` page in text exposition format 0.0.4."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        lines: List[str] = []
        for instrument in instruments:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                self._render_histogram(instrument, lines)
            else:
                for labels, value in instrument.samples():  # type: ignore[union-attr]
                    lines.append(
                        f"{instrument.name}{_render_labels(labels)} "
                        f"{format_metric_value(value)}"
                    )
        for collector in collectors:
            for name, kind, help_text, samples in collector():
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                for labels, value in samples:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{format_metric_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(histogram: Histogram, lines: List[str]) -> None:
        for labels, counts, total in histogram.snapshot():
            cumulative = 0
            for bound, count in zip(histogram.buckets, counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = format_metric_value(bound)
                lines.append(
                    f"{histogram.name}_bucket{_render_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            cumulative += counts[-1]
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            lines.append(
                f"{histogram.name}_bucket{_render_labels(bucket_labels)} "
                f"{cumulative}"
            )
            lines.append(
                f"{histogram.name}_sum{_render_labels(labels)} "
                f"{format_metric_value(total)}"
            )
            lines.append(f"{histogram.name}_count{_render_labels(labels)} {cumulative}")
