"""Monotonic-clock trace spans with cross-process propagation.

A *trace* is the tree of timed spans one request produced: a root span
for the request, children for the serving stages (admission, cache
lookup, coalescing, shard fan-out) and grandchildren for the engine
stages the paper's evaluation is structured around (MinCand / lookup /
verification — Table 4).  The design goals, in order:

1. **Near-zero cost when off.**  Sampling is decided once per request in
   :meth:`Tracer.start`, which returns ``None`` for unsampled requests;
   every instrumentation site guards on ``span is not None`` and does no
   other work.  The overhead budget is CI-gated by
   ``benchmarks/bench_observability_overhead.py``.
2. **Spans survive the pickle boundary.**  Shard worker processes cannot
   share the parent's clock, so a worker exports its spans with starts
   *relative to its own root* (:meth:`Trace.export`), and the parent
   grafts them under the per-shard RPC span (:meth:`Span.graft`),
   re-anchoring them at the moment the RPC began.  The propagated
   context is just ``(trace_id, parent_span_id)`` — two strings, cheap
   to pickle into the worker query descriptor.
3. **Spans are flat records, not a linked tree.**  Each span knows its
   ``parent_id``; renderers build the tree at display time.  That keeps
   recording O(1) per span with no back-references to keep alive.

Timestamps come from :func:`time.perf_counter` — the same clock the
engine's stage timings already use, so engine-reported ``t0..t3``
boundaries can be replayed as spans (:meth:`Span.add`) without a second
timing call on the hot path.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Span", "SpanContext", "Trace", "Tracer", "synthesize_trace"]

#: the propagated context: ``(trace_id, parent_span_id)``.
SpanContext = Tuple[str, str]


def _new_id() -> str:
    """A 64-bit random hex id (trace and span ids)."""
    return os.urandom(8).hex()


class Span:
    """One timed operation inside a trace.

    Spans are created through :meth:`Trace.root <Tracer.start>` /
    :meth:`Span.child` and closed with :meth:`finish`; attributes are
    free-form scalars (counters, statuses, backend names).  A span whose
    ``end`` is still ``None`` at export time is reported with zero
    duration — a crash between start and finish must not lose the trace.
    """

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        parent_id: str,
        start: Optional[float] = None,
        **attributes: Any,
    ) -> None:
        self.trace = trace
        self.name = name
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start = time.perf_counter() if start is None else start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def child(self, name: str, **attributes: Any) -> "Span":
        """Open a child span starting now."""
        span = Span(self.trace, name, self.span_id, **attributes)
        self.trace._spans.append(span)
        return span

    def add(self, name: str, start: float, end: float, **attributes: Any) -> "Span":
        """Record an already-timed child span from existing
        ``perf_counter`` boundaries (the engine's t0..t3 stage clocks) —
        no extra timing call on the hot path."""
        span = Span(self.trace, name, self.span_id, start=start, **attributes)
        span.end = end
        self.trace._spans.append(span)
        return span

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute."""
        self.attributes[key] = value

    def finish(self) -> None:
        """Close the span (idempotent: the first finish wins)."""
        if self.end is None:
            self.end = time.perf_counter()

    def context(self) -> SpanContext:
        """The ``(trace_id, span_id)`` pair to propagate to a child
        process, making remote spans children of this one."""
        return (self.trace.trace_id, self.span_id)

    def graft(self, spans: Sequence[Dict[str, Any]]) -> None:
        """Adopt remotely exported spans (see :meth:`Trace.export`) as
        descendants of this span.

        Remote starts are relative to the remote root (which carries
        this span's id as its parent); re-anchoring them at this span's
        start places them on the local clock.  Clock skew note: the
        remote work really began one pipe hop after ``self.start``, so
        grafted spans can lead their parent by that hop — good enough
        for operator forensics, and the only honest option without a
        shared clock."""
        self.trace.adopt(spans, offset=self.start)

    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start


class Trace:
    """All spans of one request, rooted at :attr:`root`."""

    __slots__ = ("trace_id", "root", "_spans", "_foreign")

    def __init__(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: str = "",
        **attributes: Any,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self._spans: List[Span] = []
        #: spans adopted from worker processes — already-exported dicts
        #: whose starts have been re-anchored onto this trace's clock.
        self._foreign: List[Dict[str, Any]] = []
        self.root = Span(self, name, parent_id, **attributes)
        self._spans.append(self.root)

    def finish(self) -> None:
        """Close the root span (children left open export zero-length)."""
        self.root.finish()

    def adopt(self, spans: Sequence[Dict[str, Any]], *, offset: float) -> None:
        """Attach exported span dicts, shifting their (relative) starts
        by ``offset`` onto this trace's clock."""
        for span in spans:
            shifted = dict(span)
            shifted["start"] = float(span.get("start", 0.0)) + offset
            self._foreign.append(shifted)

    def export(self) -> List[Dict[str, Any]]:
        """Spans as plain dicts with starts relative to the root span —
        the wire format a worker ships back for :meth:`Span.graft`."""
        base = self.root.start
        out = [
            {
                "name": s.name,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "start": s.start - base,
                "duration": s.duration(),
                "attributes": dict(s.attributes),
            }
            for s in self._spans
        ]
        for foreign in self._foreign:
            shifted = dict(foreign)
            shifted["start"] = float(foreign.get("start", 0.0)) - base
            out.append(shifted)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """The completed trace as one JSON-ready record (root-relative
        span starts, wall-clock completion stamp for the recorder)."""
        return {
            "trace_id": self.trace_id,
            "root": self.root.name,
            "duration": self.root.duration(),
            "completed_unix": time.time(),
            "spans": self.export(),
        }


class Tracer:
    """Decides, per request, whether to record a trace.

    ``sample_rate`` in ``[0, 1]``: 0 never samples (the default — the
    tracing-off hot path), 1 samples everything.  The decision uses a
    cheap multiplicative-congruential counter rather than ``random`` so
    the unsampled path is one multiply and one compare; sampling is
    deterministic for a given request ordinal, which also makes tests
    reproducible.
    """

    __slots__ = ("sample_rate", "_state")

    def __init__(self, sample_rate: float = 0.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must lie in [0, 1]")
        self.sample_rate = sample_rate
        self._state = 0x9E3779B97F4A7C15

    def start(self, name: str, **attributes: Any) -> Optional[Trace]:
        """A new :class:`Trace` for a sampled request, else ``None``."""
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0:
            # Weyl-sequence stream: equidistributed in [0, 2^64).
            self._state = (self._state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            if self._state >= rate * 2**64:
                return None
        return Trace(name, **attributes)


def synthesize_trace(
    name: str,
    *,
    seconds: float,
    stages: Sequence[Tuple[str, float, Dict[str, Any]]],
    **attributes: Any,
) -> Dict[str, Any]:
    """A trace record rebuilt from stage timings after the fact.

    Slow queries must be visible even when unsampled, but by the time a
    query is known slow its spans were never recorded.  The engine's
    per-stage timings in :class:`~repro.core.engine.QueryResult` are
    enough to reconstruct the stage breakdown: ``stages`` is a list of
    ``(name, duration_seconds, attributes)`` laid out back to back under
    a synthetic root.  The record is shaped exactly like
    :meth:`Trace.to_dict` (plus ``"synthesized": True``) so the flight
    recorder and renderers treat both kinds uniformly.
    """
    trace_id = _new_id()
    root_id = _new_id()
    spans: List[Dict[str, Any]] = [
        {
            "name": name,
            "span_id": root_id,
            "parent_id": "",
            "start": 0.0,
            "duration": seconds,
            "attributes": dict(attributes),
        }
    ]
    cursor = 0.0
    for stage_name, duration, attrs in stages:
        spans.append(
            {
                "name": stage_name,
                "span_id": _new_id(),
                "parent_id": root_id,
                "start": cursor,
                "duration": duration,
                "attributes": dict(attrs),
            }
        )
        cursor += duration
    return {
        "trace_id": trace_id,
        "root": name,
        "duration": seconds,
        "completed_unix": time.time(),
        "synthesized": True,
        "spans": spans,
    }
