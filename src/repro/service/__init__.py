"""Concurrent query serving over the exact search core.

The first subsystem *above* the engine: where the core answers one query
at a time in-process, :mod:`repro.service` turns it into a multi-client
service —

- :class:`Executor` — thread-pool execution with per-shard fan-out for
  :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch`,
  per-query deadlines, and admission control;
- :class:`ResultCache` — LRU over normalized query signatures, with
  invalidation hooks wired to the online-update path;
- :class:`Batcher` — single-flight coalescing of concurrent duplicate
  requests;
- :class:`Metrics` — QPS, latency percentiles, hit rates, per-stage
  timing rollups;
- :class:`ServiceObservability` — request tracing, the Prometheus-text
  ``/metrics`` registry, and the slow-query flight recorder (built on
  :mod:`repro.obs`);
- :class:`QueryService` — the facade composing the above;
- :class:`ServiceServer` — a stdlib JSON-over-HTTP frontend
  (``python -m repro serve``).

Every layer preserves exactness: cached, coalesced, and fanned-out
answers are element-for-element identical to a direct
:meth:`~repro.core.engine.SubtrajectorySearch.query` call.
"""

from repro.service.batching import Batcher
from repro.service.cache import ResultCache
from repro.service.executor import Executor
from repro.service.http import ServiceServer, response_payload, topk_payload
from repro.service.metrics import Metrics, percentile
from repro.service.observability import ServiceObservability
from repro.service.service import QueryService, ServiceResponse

__all__ = [
    "Batcher",
    "Executor",
    "Metrics",
    "QueryService",
    "ResultCache",
    "ServiceObservability",
    "ServiceResponse",
    "ServiceServer",
    "percentile",
    "response_payload",
    "topk_payload",
]
