"""Request coalescing: one engine pass serves many identical waiters.

Under concurrent load, popular queries arrive faster than they can be
answered, so several clients are often waiting on the *same* signature at
once.  :class:`Batcher` keys in-flight work by query signature: the first
arrival (the *leader*) computes; every concurrent duplicate (a
*follower*) blocks on the leader's completion and shares its result —
the single-flight pattern.  Combined with the LRU cache this gives two
layers of dedup: the cache collapses repeats *across* time, the batcher
collapses repeats *within* one in-flight window (exactly the window where
the cache still misses).

Fairness: a follower joins a flight *later* than its leader started, so
when the leader fails on a budget it exhausted (a deadline miss), the
follower's own budget may still have time left — failing it with the
leader's error would be spurious.  ``follower_retry`` lets the caller
mark such errors as retryable: the follower re-enters the flight table
(typically becoming the next leader) instead of inheriting the failure,
for as long as its own ``wait_timeout`` budget lasts.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["Batcher"]


class _Flight:
    """One in-flight computation: completion event plus outcome slot."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class Batcher:
    """Coalesce concurrent duplicate computations by key.

    :meth:`run` returns ``(value, coalesced)`` where ``coalesced`` is True
    iff this caller rode along on another caller's computation.  A leader
    failure propagates the *same* exception to every follower — except
    followers whose caller opted into retrying it (``follower_retry``),
    which start over as potential new leaders.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Flight] = {}
        self.coalesced = 0
        #: distinct flights led over the batcher's lifetime — one engine
        #: pass each; ``flights + coalesced`` = requests that reached the
        #: batcher (exported to ``/metrics`` as a counter).
        self.flights = 0
        #: followers that outlived a retryable leader failure and went
        #: around again instead of failing spuriously (fairness metric).
        self.retried_followers = 0

    def in_flight(self) -> int:
        """Number of distinct computations currently running."""
        with self._lock:
            return len(self._inflight)

    def run(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        *,
        wait_timeout: Optional[float] = None,
        follower_retry: Optional[Callable[[BaseException], bool]] = None,
    ) -> Tuple[Any, bool]:
        """Run ``compute`` once per concurrent burst of ``key``.

        The leader executes ``compute`` on its own thread; followers block
        until the leader finishes and share its value (or exception).  A
        follower waits at most ``wait_timeout`` seconds total (``None`` =
        forever); on expiry it raises :class:`TimeoutError` — a follower's
        own deadline must hold even when it joined a leader's flight late.

        ``follower_retry``, when given, is consulted with the leader's
        exception before propagating it to a follower: if it returns True
        and the follower's own budget has time left, the follower loops
        back into the flight table — becoming the new leader if no other
        duplicate beat it there — instead of failing with an error it did
        not earn.  Leaders always observe their own exceptions.
        """
        expires = None if wait_timeout is None else monotonic() + wait_timeout
        while True:
            with self._lock:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    self.flights += 1
                    leader = True
                else:
                    flight.followers += 1
                    self.coalesced += 1
                    leader = False

            if leader:
                try:
                    flight.value = compute()
                except BaseException as exc:
                    flight.error = exc
                    raise
                finally:
                    # Deregister *before* waking followers so a request
                    # arriving after completion starts a fresh flight (the
                    # cache will catch it anyway).
                    with self._lock:
                        self._inflight.pop(key, None)
                    flight.done.set()
                return flight.value, False

            remaining = None if expires is None else expires - monotonic()
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    "coalesced computation did not finish within "
                    f"{wait_timeout} seconds"
                )
            if not flight.done.wait(remaining):
                raise TimeoutError(
                    "coalesced computation did not finish within "
                    f"{wait_timeout} seconds"
                )
            if flight.error is not None:
                if follower_retry is not None and follower_retry(flight.error):
                    if expires is not None and monotonic() >= expires:
                        # The error was retryable but this follower's OWN
                        # budget ran out mid-retry (e.g. the predicate or
                        # scheduling outlived it): its deadline verdict
                        # is TimeoutError, not an inherited leader error
                        # it explicitly opted out of.
                        raise TimeoutError(
                            "coalesced computation did not finish within "
                            f"{wait_timeout} seconds"
                        )
                    with self._lock:
                        # This request was NOT served by the leader's
                        # computation after all — take back its coalesced
                        # count (it is re-counted if it joins another
                        # flight on the next lap).
                        self.coalesced -= 1
                        self.retried_followers += 1
                    continue
                raise flight.error
            return flight.value, True
