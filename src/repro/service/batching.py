"""Request coalescing: one engine pass serves many identical waiters.

Under concurrent load, popular queries arrive faster than they can be
answered, so several clients are often waiting on the *same* signature at
once.  :class:`Batcher` keys in-flight work by query signature: the first
arrival (the *leader*) computes; every concurrent duplicate (a
*follower*) blocks on the leader's completion and shares its result —
the single-flight pattern.  Combined with the LRU cache this gives two
layers of dedup: the cache collapses repeats *across* time, the batcher
collapses repeats *within* one in-flight window (exactly the window where
the cache still misses).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["Batcher"]


class _Flight:
    """One in-flight computation: completion event plus outcome slot."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class Batcher:
    """Coalesce concurrent duplicate computations by key.

    :meth:`run` returns ``(value, coalesced)`` where ``coalesced`` is True
    iff this caller rode along on another caller's computation.  A leader
    failure propagates the *same* exception to every follower.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Flight] = {}
        self.coalesced = 0

    def in_flight(self) -> int:
        """Number of distinct computations currently running."""
        with self._lock:
            return len(self._inflight)

    def run(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        *,
        wait_timeout: Optional[float] = None,
    ) -> Tuple[Any, bool]:
        """Run ``compute`` once per concurrent burst of ``key``.

        The leader executes ``compute`` on its own thread; followers block
        until the leader finishes and share its value (or exception).  A
        follower waits at most ``wait_timeout`` seconds (``None`` =
        forever); on expiry it raises :class:`TimeoutError` — a follower's
        own deadline must hold even when it joined a leader's flight late.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                flight.followers += 1
                self.coalesced += 1
                leader = False

        if not leader:
            if not flight.done.wait(wait_timeout):
                raise TimeoutError(
                    "coalesced computation did not finish within "
                    f"{wait_timeout} seconds"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value, True

        try:
            flight.value = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Deregister *before* waking followers so a request arriving
            # after completion starts a fresh flight (the cache will catch
            # it anyway).
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
        return flight.value, False
