"""LRU result cache for the serving layer.

Keys are the normalized query signatures of
:func:`repro.core.engine.query_signature`: two requests with the same
signature are guaranteed the same answer *on an unchanged dataset*, so a
cached :class:`~repro.core.engine.QueryResult` can be returned verbatim.
The "unchanged dataset" part is the caller's contract — the serving
facade clears the cache on every online update (insert today, delete when
the engine grows one), and exposes :meth:`ResultCache.invalidate` for
finer-grained hooks.

Cached results are shared objects: callers must treat them as immutable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """A thread-safe LRU map from query signature to query result.

    ``capacity`` bounds the number of retained entries; inserting beyond it
    evicts the least-recently-*used* entry (a ``get`` refreshes recency).
    ``capacity=0`` disables retention entirely (every ``get`` misses) while
    keeping the counters, so hit-rate accounting stays uniform.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self._capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._generation = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained entries."""
        return self._capacity

    @property
    def generation(self) -> int:
        """Bumped by every :meth:`clear`.  Capture it before computing a
        value and pass it to :meth:`put` to avoid re-caching a result that
        an invalidation raced past (compute started pre-clear, put lands
        post-clear)."""
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshing its recency — or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(
        self, key: Hashable, value: Any, *, generation: Optional[int] = None
    ) -> None:
        """Insert (or refresh) one entry, evicting LRU entries beyond
        capacity.

        When ``generation`` is given and a :meth:`clear` happened since it
        was captured, the value is stale (computed against the
        pre-invalidation dataset) and the put is dropped."""
        if self._capacity == 0:
            return
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)

    # -- top-k reuse --------------------------------------------------------
    #
    # Top-k entries are keyed on repro.core.engine.topk_signature — which
    # deliberately excludes k — and hold a TopKResult.  The reuse rule: a
    # cached answer computed at k' covers a request for k when k <= k', or
    # when the stored answer already ranks the entire dataset (no deeper
    # answer exists); serving is then a truncation (TopKResult.at_k), so a
    # k'-deep computation pays for every shallower repeat.

    def get_topk(self, key: Hashable, k: int):
        """The cached top-k answer re-cut to ``k`` — or ``None`` when no
        entry exists or the stored one is too shallow to cover ``k``
        (counted as a miss either way: the caller must compute)."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None or not entry.covers(k):
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry.at_k(k)

    def put_topk(
        self, key: Hashable, value: Any, *, generation: Optional[int] = None
    ) -> None:
        """Insert one top-k answer unless an existing entry already covers
        it — a deeper (or full-ranking) answer must never be replaced by a
        shallower one computed concurrently.  Same generation guard as
        :meth:`put`."""
        if self._capacity == 0:
            return
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            existing = self._data.get(key)
            if existing is not None and existing.covers(value.k):
                self._data.move_to_end(key)
                return
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)

    # -- invalidation hooks -------------------------------------------------

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present.

        Also bumps the generation (even when nothing was cached yet): an
        in-flight compute for this key may still be running against the
        pre-invalidation state, and its eventual generation-guarded put
        must not land."""
        with self._lock:
            present = self._data.pop(key, None) is not None
            if present:
                self.invalidations += 1
            self._generation += 1
            return present

    def clear(self) -> int:
        """Drop every entry (the online-update hook) and bump the
        generation; returns the count dropped."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            self.invalidations += dropped
            self._generation += 1
            return dropped

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since construction (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
