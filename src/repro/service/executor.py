"""Query execution on a thread pool, with deadlines and admission control.

:class:`Executor` owns the worker pool for one service instance.  A
:class:`~repro.core.partitioned.PartitionedSubtrajectorySearch` engine on
the ``serial`` backend is fanned out *per shard* (via the per-shard
callables the engine exposes), so one query's shards run concurrently
and a slow shard only delays its own query.  Engines that parallelize
internally — the ``threads`` backend (its own shard thread pool) and the
``processes`` backend (one worker process per shard) — run as a single
pool task: the pool thread coordinates while the engine's own machinery
burns the CPU.  A plain :class:`~repro.core.engine.SubtrajectorySearch`
runs as a single pool task too.  Two protections keep the pool healthy
under overload:

- *admission control*: at most ``max_pending`` queries may be in flight;
  beyond that, new arrivals are shed immediately with
  :class:`~repro.exceptions.AdmissionError` (fail fast beats queueing
  into timeout);
- *deadlines*: a per-query budget (seconds) covers queueing *and*
  execution, carried by a :class:`~repro.core.cancellation.CancelToken`
  that is threaded into every shard's verification loop.  When the budget
  expires the caller gets
  :class:`~repro.exceptions.DeadlineExceededError`, not-yet-started shard
  tasks are cancelled, and — via the token — already-running tasks stop
  cooperatively within one verification-loop iteration instead of
  running to completion (this works across the process boundary as well:
  workers rebuild the deadline locally and poll a shared flag).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from time import monotonic
from typing import List, Optional, Sequence

from repro.core.cancellation import CancelToken
from repro.core.engine import QueryResult
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.temporal import TemporalMode, TimeInterval
from repro.exceptions import (
    AdmissionError,
    DeadlineExceededError,
    QueryCancelledError,
)

__all__ = ["Executor"]


class Executor:
    """Run engine queries on a bounded thread pool.

    Parameters
    ----------
    engine:
        A :class:`SubtrajectorySearch` or
        :class:`PartitionedSubtrajectorySearch` (anything exposing
        ``query``; shard fan-out additionally needs
        ``shard_query_callables`` / ``merge_shard_results``).
    max_workers:
        Pool size.  For a serial-backend partitioned engine, sizing this
        at or above the shard count lets a single query use every shard
        concurrently; threads/processes-backend engines need only one
        pool thread per in-flight query.
    max_pending:
        Admission limit on concurrently in-flight *queries* (not shard
        tasks).
    default_deadline:
        Per-query budget in seconds applied when the caller passes none
        (``None`` = unbounded).
    """

    def __init__(
        self,
        engine,
        *,
        max_workers: int = 4,
        max_pending: int = 64,
        default_deadline: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        self._engine = engine
        # Per-shard fan-out on THIS pool only for engines with no fan-out
        # machinery of their own (the serial backend).  The threads and
        # processes backends parallelize inside engine.query(), so the
        # whole query is one pool task there.
        self._fan_out = (
            isinstance(engine, PartitionedSubtrajectorySearch)
            and engine.backend == "serial"
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._max_pending = max_pending
        self._default_deadline = default_deadline
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False

    @property
    def engine(self):
        """The wrapped search engine."""
        return self._engine

    @property
    def default_deadline(self) -> Optional[float]:
        """The per-query budget applied when a caller passes none."""
        return self._default_deadline

    @property
    def pending(self) -> int:
        """Queries currently admitted and not yet finished."""
        with self._lock:
            return self._pending

    def close(self, *, close_engine: bool = False) -> None:
        """Stop admitting queries and drain the pool (idempotent).

        ``close_engine=True`` additionally closes the wrapped engine —
        for partitioned engines that terminates the shard worker
        processes / thread pool.  Off by default because the engine is
        caller-owned and may outlive this executor (e.g. one engine
        served by successive executors in benchmarks)."""
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            self._pool.shutdown(wait=True)
        if close_engine and hasattr(self._engine, "close"):
            self._engine.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query path ---------------------------------------------------------

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
        deadline: Optional[float] = None,
        trace=None,
        allow_partial: bool = False,
    ) -> QueryResult:
        """Execute one query on the pool and return its merged result.

        Raises :class:`AdmissionError` when shed and
        :class:`DeadlineExceededError` when the budget (``deadline``
        seconds from now, defaulting to ``default_deadline``) expires.
        ``trace`` (a :class:`repro.obs.tracing.Span`, or None) collects
        ``admission`` and ``execute`` child spans; the engine hangs its
        per-shard and per-stage spans under ``execute``.

        ``allow_partial`` opts the query into graceful degradation and is
        forwarded to partitioned engines (meaningful on the processes
        backend, where a shard worker can die independently; in-process
        engines never degrade, so elsewhere it is inert — including the
        serial-backend fan-out this executor runs itself).
        """
        if deadline is not None and deadline <= 0:
            # A malformed request, not a missed deadline: report it as
            # such instead of polluting the deadline-miss metric.
            raise ValueError("deadline must be positive")
        if trace is None:
            self._admit()
        else:
            span = trace.child("admission", pending=self.pending)
            try:
                self._admit()
            except BaseException as exc:
                span.set("error", type(exc).__name__)
                raise
            finally:
                span.finish()
        try:
            budget = deadline if deadline is not None else self._default_deadline
            token = CancelToken(budget)
            kwargs = dict(
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_filter=temporal_filter,
                temporal_mode=temporal_mode,
            )
            exec_span = (
                None if trace is None
                else trace.child("execute", fan_out=self._fan_out)
            )
            try:
                if self._fan_out:
                    calls = self._engine.shard_query_callables(
                        query, cancel=token, trace=exec_span, **kwargs
                    )
                    futures = [self._pool.submit(call) for call in calls]
                    results = self._gather(futures, token)
                    merged = self._engine.merge_shard_results(results)
                    if exec_span is not None:
                        exec_span.set("shards", len(calls))
                        exec_span.set("matches", len(merged.matches))
                        exec_span.set("candidates", merged.num_candidates)
                    return merged
                if exec_span is not None:
                    kwargs["trace"] = exec_span
                if allow_partial and isinstance(
                    self._engine, PartitionedSubtrajectorySearch
                ):
                    kwargs["allow_partial"] = True
                future = self._pool.submit(
                    self._engine.query, query, cancel=token, **kwargs
                )
                return self._gather([future], token)[0]
            except RuntimeError as exc:
                # Admitted concurrently with close(): the pool refuses new
                # futures.  Report it as the shed it is, not a 500.
                if "shutdown" in str(exc):
                    raise AdmissionError("service is shutting down") from None
                raise
            except BaseException as exc:
                if exec_span is not None:
                    exec_span.set("error", type(exc).__name__)
                raise
            finally:
                if exec_span is not None:
                    exec_span.finish()
        finally:
            with self._lock:
                self._pending -= 1

    def topk(
        self,
        query: Sequence[int],
        k: int,
        *,
        initial_tau_ratio: float = 0.05,
        growth: float = 2.0,
        deadline: Optional[float] = None,
        trace=None,
        allow_partial: bool = False,
    ):
        """Execute one top-k query on the pool; same admission control and
        deadline semantics as :meth:`query`.

        The whole tau-doubling loop runs as one pool task — the loop owns
        its probe fan-out (each round is one ``engine.query``, which the
        threads/processes/remote backends parallelize internally, and the
        serial backend runs inline: a probe is already a full-corpus pass,
        so there is nothing for this pool to split).  The deadline token
        is threaded through every probe round *and* the exhaustion sweep,
        so an expired budget stops within one verification iteration or
        one swept trajectory.
        """
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        if trace is None:
            self._admit()
        else:
            span = trace.child("admission", pending=self.pending)
            try:
                self._admit()
            except BaseException as exc:
                span.set("error", type(exc).__name__)
                raise
            finally:
                span.finish()
        try:
            budget = deadline if deadline is not None else self._default_deadline
            token = CancelToken(budget)
            exec_span = (
                None if trace is None else trace.child("execute", mode="topk")
            )
            try:
                from repro.core.topk import topk_search

                future = self._pool.submit(
                    topk_search,
                    self._engine,
                    query,
                    k,
                    initial_tau_ratio=initial_tau_ratio,
                    growth=growth,
                    cancel=token,
                    allow_partial=allow_partial,
                    trace=exec_span,
                )
                result = self._gather([future], token)[0]
                if exec_span is not None:
                    exec_span.set("matches", len(result.matches))
                    exec_span.set("tau_rounds", result.tau_rounds)
                return result
            except RuntimeError as exc:
                if "shutdown" in str(exc):
                    raise AdmissionError("service is shutting down") from None
                raise
            except BaseException as exc:
                if exec_span is not None:
                    exec_span.set("error", type(exc).__name__)
                raise
            finally:
                if exec_span is not None:
                    exec_span.finish()
        finally:
            with self._lock:
                self._pending -= 1

    # -- internals ----------------------------------------------------------

    def _admit(self) -> None:
        with self._lock:
            if self._closed:
                raise AdmissionError("service is shutting down")
            if self._pending >= self._max_pending:
                raise AdmissionError(
                    f"too many in-flight queries (limit {self._max_pending})"
                )
            self._pending += 1

    @staticmethod
    def _gather(futures: List[Future], token: CancelToken) -> List[QueryResult]:
        """Collect futures in submission order, honouring the deadline.

        On expiry the shared token is tripped first — running shard tasks
        observe it inside their verification loops and stop within one
        iteration — then unstarted futures are cancelled and the caller
        gets :class:`DeadlineExceededError`.  A shard that noticed its own
        deadline first (raising :class:`QueryCancelledError`) is folded
        into the same outcome."""
        expires = token.expires
        results: List[QueryResult] = []
        try:
            for future in futures:
                remaining = None if expires is None else expires - monotonic()
                if remaining is not None and remaining <= 0:
                    raise _FutureTimeout()
                results.append(future.result(timeout=remaining))
        except (_FutureTimeout, TimeoutError, QueryCancelledError):
            token.cancel()  # stop in-flight shard work cooperatively
            for future in futures:
                future.cancel()
            raise DeadlineExceededError(
                f"query missed its deadline ({len(results)}/{len(futures)} "
                "shard results arrived in time)"
            ) from None
        except BaseException:
            # Any other shard failure dooms the whole query: stop the
            # siblings too instead of letting them verify to completion on
            # pool threads whose admission slot is already released.
            token.cancel()
            for future in futures:
                future.cancel()
            raise
        return results
