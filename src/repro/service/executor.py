"""Query execution on a thread pool, with deadlines and admission control.

:class:`Executor` owns the worker pool for one service instance.  A
:class:`~repro.core.partitioned.PartitionedSubtrajectorySearch` engine is
fanned out *per shard* (via the per-shard callables the engine exposes),
so one query's shards run concurrently and a slow shard only delays its
own query; a plain :class:`~repro.core.engine.SubtrajectorySearch` runs
as a single pool task.  Two protections keep the pool healthy under
overload:

- *admission control*: at most ``max_pending`` queries may be in flight;
  beyond that, new arrivals are shed immediately with
  :class:`~repro.exceptions.AdmissionError` (fail fast beats queueing
  into timeout);
- *deadlines*: a per-query budget (seconds) covers queueing *and*
  execution; when it expires the caller gets
  :class:`~repro.exceptions.DeadlineExceededError` and not-yet-started
  shard tasks are cancelled.  Already-running tasks finish on the pool
  (cooperative cancellation is future work) but nobody waits for them.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from time import monotonic
from typing import List, Optional, Sequence

from repro.core.engine import QueryResult, SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.temporal import TemporalMode, TimeInterval
from repro.exceptions import AdmissionError, DeadlineExceededError

__all__ = ["Executor"]


class Executor:
    """Run engine queries on a bounded thread pool.

    Parameters
    ----------
    engine:
        A :class:`SubtrajectorySearch` or
        :class:`PartitionedSubtrajectorySearch` (anything exposing
        ``query``; shard fan-out additionally needs
        ``shard_query_callables`` / ``merge_shard_results``).
    max_workers:
        Pool size.  For a partitioned engine, sizing this at or above the
        shard count lets a single query use every shard concurrently.
    max_pending:
        Admission limit on concurrently in-flight *queries* (not shard
        tasks).
    default_deadline:
        Per-query budget in seconds applied when the caller passes none
        (``None`` = unbounded).
    """

    def __init__(
        self,
        engine,
        *,
        max_workers: int = 4,
        max_pending: int = 64,
        default_deadline: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        self._engine = engine
        self._fan_out = isinstance(engine, PartitionedSubtrajectorySearch)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._max_pending = max_pending
        self._default_deadline = default_deadline
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False

    @property
    def engine(self):
        """The wrapped search engine."""
        return self._engine

    @property
    def default_deadline(self) -> Optional[float]:
        """The per-query budget applied when a caller passes none."""
        return self._default_deadline

    @property
    def pending(self) -> int:
        """Queries currently admitted and not yet finished."""
        with self._lock:
            return self._pending

    def close(self) -> None:
        """Stop admitting queries and drain the pool."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query path ---------------------------------------------------------

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_filter: bool = True,
        temporal_mode: TemporalMode = "overlap",
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Execute one query on the pool and return its merged result.

        Raises :class:`AdmissionError` when shed and
        :class:`DeadlineExceededError` when the budget (``deadline``
        seconds from now, defaulting to ``default_deadline``) expires.
        """
        if deadline is not None and deadline <= 0:
            # A malformed request, not a missed deadline: report it as
            # such instead of polluting the deadline-miss metric.
            raise ValueError("deadline must be positive")
        self._admit()
        try:
            budget = deadline if deadline is not None else self._default_deadline
            expires = None if budget is None else monotonic() + budget
            kwargs = dict(
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_filter=temporal_filter,
                temporal_mode=temporal_mode,
            )
            if self._fan_out:
                calls = self._engine.shard_query_callables(query, **kwargs)
                futures = [self._pool.submit(call) for call in calls]
                results = self._gather(futures, expires)
                return self._engine.merge_shard_results(results)
            future = self._pool.submit(self._engine.query, query, **kwargs)
            return self._gather([future], expires)[0]
        finally:
            with self._lock:
                self._pending -= 1

    # -- internals ----------------------------------------------------------

    def _admit(self) -> None:
        with self._lock:
            if self._closed:
                raise AdmissionError("service is shutting down")
            if self._pending >= self._max_pending:
                raise AdmissionError(
                    f"too many in-flight queries (limit {self._max_pending})"
                )
            self._pending += 1

    @staticmethod
    def _gather(futures: List[Future], expires: Optional[float]) -> List[QueryResult]:
        """Collect futures in submission order, honouring the deadline."""
        results: List[QueryResult] = []
        try:
            for future in futures:
                remaining = None if expires is None else expires - monotonic()
                if remaining is not None and remaining <= 0:
                    raise _FutureTimeout()
                results.append(future.result(timeout=remaining))
        except (_FutureTimeout, TimeoutError):
            for future in futures:
                future.cancel()
            raise DeadlineExceededError(
                f"query missed its deadline ({len(results)}/{len(futures)} "
                "shard results arrived in time)"
            ) from None
        return results
