"""Stdlib JSON-over-HTTP frontend for :class:`~repro.service.QueryService`.

No web framework — ``http.server.ThreadingHTTPServer`` is enough for a
reproduction-scale serving layer and keeps the dependency budget at zero.
One handler thread per connection feeds the service, whose executor pool
does the actual work (so slow queries don't serialize behind each other).

API surface (all bodies JSON):

- ``GET /healthz`` — liveness: ``{"status": "ok", ...}``;
- ``GET /stats`` — the metrics snapshot of :meth:`QueryService.stats`;
- ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of the
  service's :class:`~repro.obs.MetricsRegistry`;
- ``GET /debug/traces?order=recent|slowest&limit=n`` — flight-recorder
  dump: completed trace records, JSON;
- ``POST /query`` — ``{"path": [symbols...], "tau": x | "tau_ratio": r,
  "time_from": t0?, "time_to": t1?, "temporal_mode": "overlap"|"within"?,
  "deadline": seconds?, "limit": n?, "allow_partial": bool?}`` → matches
  plus serving provenance (``cached`` / ``coalesced`` / timing).  With
  ``"allow_partial": true`` and shards down, the answer is still a 200
  but flagged ``"partial": true`` with the missing ``degraded_shards``;
- ``POST /query`` with ``{"path": [...], "k": n}`` instead of a
  threshold — top-k mode: the n best matches (one per trajectory),
  ranked; optional ``"initial_tau_ratio"`` / ``"growth"`` tune the
  threshold expansion.  The response carries ``results`` (with explicit
  ``rank``), ``ties_at_k``, and the expansion provenance (``tau_rounds``
  / ``tau_final`` / ``swept``); ``deadline`` / ``limit`` /
  ``allow_partial`` work as in range mode.  ``k`` is mutually exclusive
  with ``tau`` / ``tau_ratio`` and with temporal constraints;
- ``POST /trajectories`` — ``{"path": [symbols...], "timestamps":
  [...]?}`` → online insert; invalidates the result cache.  Paths are
  validated as graph walks by default (``"validate": false`` opts out).

Error mapping: malformed requests → 400, admission shed → 429, missed
deadline → 504, shard worker down/unavailable (and the client did not
opt into a partial answer) → 503.  503 bodies carry the currently
unhealthy ``degraded_shards`` plus a ``Retry-After`` header derived from
the soonest breaker cooldown, so clients back off for exactly as long as
the supervisor needs.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.temporal import TimeInterval
from repro.exceptions import (
    AdmissionError,
    DeadlineExceededError,
    QueryCancelledError,
    ReproError,
    WorkerError,
)
from repro.service.service import QueryService, ServiceResponse
from repro.trajectory.model import Trajectory

__all__ = ["ServiceServer", "response_payload", "topk_payload"]

logger = logging.getLogger(__name__)

_MAX_BODY = 16 * 1024 * 1024


def response_payload(response: ServiceResponse, *, limit: Optional[int] = None) -> Dict[str, Any]:
    """The JSON shape of one answered query (shared with the CLI)."""
    result = response.result
    matches = result.matches if limit is None else result.matches[:limit]
    payload = {
        "tau": result.tau,
        "matches": [
            {
                "trajectory": m.trajectory_id,
                "start": m.start,
                "end": m.end,
                "distance": m.distance,
            }
            for m in matches
        ],
        "total_matches": len(result.matches),
        "candidates": result.num_candidates,
        "cached": response.cached,
        "coalesced": response.coalesced,
        "seconds": response.seconds,
        "engine_seconds": result.total_seconds,
        "partial": not result.complete,
    }
    if not result.complete:
        payload["degraded_shards"] = list(result.degraded_shards)
    return payload


def topk_payload(
    response: ServiceResponse, *, limit: Optional[int] = None
) -> Dict[str, Any]:
    """The JSON shape of one answered top-k query (shared with the CLI).

    ``results`` carries an explicit 1-based ``rank`` — the ranking *is*
    the answer here, unlike range mode's order-irrelevant match set —
    and ``ties_at_k`` says how many equal-distance entries the k-th cut
    dropped (0 = the ranking boundary is strict)."""
    result = response.result
    matches = result.matches if limit is None else result.matches[:limit]
    payload = {
        "k": result.k,
        "results": [
            {
                "rank": rank,
                "trajectory": m.trajectory_id,
                "start": m.start,
                "end": m.end,
                "distance": m.distance,
            }
            for rank, m in enumerate(matches, start=1)
        ],
        "total_results": len(result.matches),
        "ties_at_k": result.ties_at_k,
        "tau_rounds": result.tau_rounds,
        "tau_final": result.tau_final,
        "swept": result.swept,
        "candidates": result.num_candidates,
        "cached": response.cached,
        "coalesced": response.coalesced,
        "seconds": response.seconds,
        "engine_seconds": result.total_seconds,
        "partial": not result.complete,
    }
    if not result.complete:
        payload["degraded_shards"] = list(result.degraded_shards)
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the service stored on the server object."""

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json", headers)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # The request body may not have been (fully) drained on error
            # paths; closing keeps the keep-alive stream from
            # desynchronizing on leftover bytes.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_unavailable(self, service: QueryService, exc: WorkerError) -> None:
        """One shard-unavailability 503: the body names the shards that
        are currently down or breaker-gated (``degraded_shards``) and the
        ``Retry-After`` header tells the client how long the soonest open
        breaker keeps rejecting — retrying sooner is guaranteed wasted."""
        payload: Dict[str, Any] = {"error": str(exc)}
        engine = service.engine
        retry_after = 0.0
        states_of = getattr(engine, "worker_states", None)
        if states_of is not None:
            try:
                payload["degraded_shards"] = sorted(
                    s.shard
                    for s in states_of()
                    if not s.alive or s.breaker != "closed"
                )
            except Exception:  # noqa: BLE001 — the 503 itself must go out
                pass
        retry_of = getattr(engine, "retry_after", None)
        if retry_of is not None:
            try:
                retry_after = float(retry_of())
            except Exception:  # noqa: BLE001 — the 503 itself must go out
                retry_after = 0.0
        # Retry-After is integral delta-seconds; a dead-but-unbroken shard
        # (cooldown 0) still wants a beat for the supervisor's respawn.
        seconds = max(1, math.ceil(retry_after)) if retry_after > 0 else 1
        payload["retry_after"] = seconds
        self._send_json(503, payload, headers={"Retry-After": str(seconds)})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("missing request body")
        if length > _MAX_BODY:
            raise ValueError("request body too large")
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        parsed = urlsplit(self.path)
        path = parsed.path
        try:
            if path == "/healthz":
                engine = service.engine
                count = (
                    len(engine.dataset) if hasattr(engine, "dataset") else len(engine)
                )
                payload = {
                    "status": "ok",
                    "trajectories": count,
                    "shards": getattr(engine, "num_shards", 1),
                    "backend": getattr(engine, "backend", "single"),
                    "dp_backend": getattr(engine, "dp_backend", "auto"),
                }
                # Cache-hit observability for repeated-query traffic
                # (substitution rows and warm verification tries), read
                # as ONE combined snapshot so the processes backend's
                # non-blocking worker poll runs once per probe; busy
                # workers are skipped (the probe must not queue behind a
                # long verification), and a failing poll (dead worker,
                # closing engine) degrades the fields rather than the
                # probe — /healthz answers liveness, not shard health.
                cache_stats = getattr(engine, "cache_stats", None)
                if cache_stats is not None:
                    try:
                        combined = cache_stats()
                        payload["substitution_cache"] = combined["substitution"]
                        payload["trie_cache"] = combined["trie"]
                        # Index backend, bytes, and (for a frozen mmap)
                        # page-cache residency — same single snapshot.
                        if "index" in combined:
                            payload["index"] = combined["index"]
                    except Exception as exc:  # noqa: BLE001
                        payload["substitution_cache"] = {"error": str(exc)}
                        payload["trie_cache"] = {"error": str(exc)}
                        payload["index"] = {"error": str(exc)}
                # Per-shard worker supervision state: a dead worker (or an
                # open breaker) is visible here *before* a query hits it,
                # and flips the top-level status to "degraded" (still 200
                # — the server itself is up and can serve partial/other
                # shards; monitoring alerts on the field, load balancers
                # on the process).
                worker_states = getattr(engine, "worker_states", None)
                if worker_states is not None:
                    try:
                        states = worker_states()
                        payload["workers"] = [s.to_dict() for s in states]
                        payload["restarts_total"] = sum(s.restarts for s in states)
                        if any(
                            not s.alive or s.breaker != "closed" for s in states
                        ):
                            payload["status"] = "degraded"
                    except Exception as exc:  # noqa: BLE001
                        payload["workers"] = [{"error": str(exc)}]
                self._send_json(200, payload)
            elif path == "/stats":
                self._send_json(200, service.stats())
            elif path == "/metrics":
                # Prometheus text exposition.  The registry renders push
                # instruments and pull collectors; the engine-cache
                # collector polls processes-backend workers WITHOUT
                # blocking, so a scrape never queues behind a
                # long-running query.
                self._send_text(
                    200,
                    service.observability.registry.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/debug/traces":
                self._handle_traces(service, parse_qs(parsed.query))
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except WorkerError as exc:
            # Stats polling crosses worker pipes on the processes backend;
            # a dead shard is a (usually transient — the supervisor is
            # respawning it) availability failure: 503 so clients retry.
            logger.error("shard worker failure serving %s: %s", self.path, exc)
            self._send_unavailable(service, exc)
        except (ValueError, ReproError) as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - keep-alive clients need a
            # response body, not a dropped connection, on unexpected bugs.
            logger.exception("unhandled error serving %s", self.path)
            try:
                self._send_json(500, {"error": f"internal error: {exc}"})
            except Exception:  # headers may already be on the wire
                self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        try:
            if self.path == "/query":
                self._handle_query(service)
            elif self.path == "/trajectories":
                self._handle_insert(service)
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc)})
        except (DeadlineExceededError, QueryCancelledError) as exc:
            # A cancellation that escapes the executor untranslated is
            # still "the server gave up on the budget" to a client.
            self._send_json(504, {"error": str(exc)})
        except WorkerError as exc:
            # A dead/diverged/breaker-open shard is an availability
            # failure, not a bad request: 503 Service Unavailable so
            # clients retry (the supervisor is likely respawning it) and
            # monitoring pages someone.  Clients that can live with less
            # can opt into a 200 instead via {"allow_partial": true}.
            logger.error("shard worker failure serving %s: %s", self.path, exc)
            self._send_unavailable(service, exc)
        except (ValueError, TypeError, KeyError, ReproError) as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - keep-alive clients need a
            # response body, not a dropped connection, on unexpected bugs.
            logger.exception("unhandled error serving %s", self.path)
            try:
                self._send_json(500, {"error": f"internal error: {exc}"})
            except Exception:  # headers may already be on the wire
                self.close_connection = True

    def _handle_traces(self, service: QueryService, params: Dict[str, list]) -> None:
        order = params.get("order", ["recent"])[0]
        if order not in ("recent", "slowest"):
            raise ValueError("'order' must be 'recent' or 'slowest'")
        raw_limit = params.get("limit", [None])[0]
        limit = None
        if raw_limit is not None:
            limit = int(raw_limit)
            if limit < 0:
                raise ValueError("'limit' must be a nonnegative integer")
        recorder = service.observability.recorder
        traces = (
            recorder.slowest(limit) if order == "slowest" else recorder.recent(limit)
        )
        self._send_json(
            200, {"order": order, "traces": traces, "stats": recorder.stats()}
        )

    def _handle_query(self, service: QueryService) -> None:
        body = self._read_body()
        path = body.get("path")
        if not isinstance(path, list) or not path:
            raise ValueError("'path' must be a non-empty list of symbols")
        tau = body.get("tau")
        tau_ratio = body.get("tau_ratio")
        interval, mode = self._interval_of(body)
        limit = body.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ValueError("'limit' must be a nonnegative integer")
        allow_partial = body.get("allow_partial", False)
        if not isinstance(allow_partial, bool):
            raise ValueError("'allow_partial' must be a boolean")
        k = body.get("k")
        if k is not None:
            # Top-k mode: the request names a depth instead of a radius.
            if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
                raise ValueError("'k' must be a positive integer")
            if tau is not None or tau_ratio is not None:
                raise ValueError(
                    "'k' is mutually exclusive with 'tau'/'tau_ratio' — "
                    "a request is either top-k or range"
                )
            if interval is not None:
                raise ValueError(
                    "top-k does not support temporal constraints"
                )
            kwargs: Dict[str, Any] = {}
            for knob in ("initial_tau_ratio", "growth"):
                if body.get(knob) is not None:
                    kwargs[knob] = float(body[knob])
            response = service.topk(
                [int(s) for s in path],
                k,
                deadline=(
                    None
                    if body.get("deadline") is None
                    else float(body["deadline"])
                ),
                allow_partial=allow_partial,
                **kwargs,
            )
            self._send_json(200, topk_payload(response, limit=limit))
            return
        response = service.query(
            [int(s) for s in path],
            tau=None if tau is None else float(tau),
            tau_ratio=None if tau_ratio is None else float(tau_ratio),
            time_interval=interval,
            temporal_mode=mode,
            deadline=(
                None if body.get("deadline") is None else float(body["deadline"])
            ),
            allow_partial=allow_partial,
        )
        self._send_json(200, response_payload(response, limit=limit))

    def _handle_insert(self, service: QueryService) -> None:
        body = self._read_body()
        path = body.get("path")
        if not isinstance(path, list) or not path:
            raise ValueError("'path' must be a non-empty list of vertex ids")
        timestamps = body.get("timestamps")
        trajectory = Trajectory(
            [int(s) for s in path],
            timestamps=None if timestamps is None else [float(t) for t in timestamps],
        )
        # Untrusted write endpoint: reject non-walks unless the client
        # explicitly opts out with {"validate": false}.
        validate = body.get("validate")
        tid = service.add_trajectory(
            trajectory, validate=True if validate is None else bool(validate)
        )
        self._send_json(200, {"trajectory": tid, "invalidated_cache": True})

    @staticmethod
    def _interval_of(body: Dict[str, Any]) -> Tuple[Optional[TimeInterval], str]:
        t0, t1 = body.get("time_from"), body.get("time_to")
        if (t0 is None) != (t1 is None):
            raise ValueError("'time_from' and 'time_to' must be given together")
        mode = body.get("temporal_mode", "overlap")
        if mode not in ("overlap", "within"):
            raise ValueError("'temporal_mode' must be 'overlap' or 'within'")
        if t0 is None:
            return None, mode
        return TimeInterval(float(t0), float(t1)), mode


class ServiceServer:
    """A threaded HTTP server bound to one :class:`QueryService`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    Use :meth:`start` for a background thread (tests, ``--self-test``) or
    :meth:`serve_forever` to occupy the caller's thread (the CLI).
    """

    def __init__(
        self, service: QueryService, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound endpoint."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve on a daemon background thread; returns self."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, close the socket, and drain the service pool.

        Safe to call on a server that was never started —
        ``BaseServer.shutdown`` would otherwise block forever waiting for
        a ``serve_forever`` loop that never ran."""
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._service.close()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
