"""Serving metrics: QPS, latency percentiles, cache/coalescing rates, and
per-stage timing rollups.

The engine already instruments every query (Table 4 timings, Fig. 11
candidate counts); :class:`Metrics` aggregates those per-query numbers
into the service-level view an operator watches: throughput, tail
latency, hit rates, error counts.  Latency percentiles are computed over
a bounded window of recent observations so snapshots stay O(window) and
memory stays flat under sustained load.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

from repro.core.engine import QueryResult

__all__ = ["Metrics", "percentile"]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``values`` (``fraction`` in [0, 1]).

    Matches ``statistics.quantiles(..., method="inclusive")`` at the
    corresponding cut points; returns 0.0 on empty input.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    ordered = sorted(values)
    rank = fraction * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


class Metrics:
    """Thread-safe aggregate counters for one service instance.

    ``window`` caps how many recent latencies feed the percentile
    estimates; counters (queries, errors, hits, ...) are exact over the
    service lifetime.
    """

    def __init__(self, *, window: int = 4096) -> None:
        if window < 1:
            raise ValueError("metrics window must be >= 1")
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latencies: deque = deque(maxlen=window)
        self.queries = 0
        self.errors = 0
        #: exact per-exception-type error counts (``errors`` stays the
        #: backward-compatible aggregate the ``/stats`` clients expect).
        self.errors_by_type: Dict[str, int] = {}
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0
        self.deadline_exceeded = 0
        self.invalidations = 0
        self.matches = 0
        self.candidates = 0
        # Per-stage rollups from QueryResult (engine-computed queries only).
        self.mincand_seconds = 0.0
        self.lookup_seconds = 0.0
        self.verify_seconds = 0.0

    def observe(
        self,
        seconds: float,
        *,
        cached: bool = False,
        coalesced: bool = False,
        result: Optional[QueryResult] = None,
    ) -> None:
        """Record one completed query and its end-to-end latency."""
        with self._lock:
            self.queries += 1
            self._latencies.append(seconds)
            if cached:
                self.cache_hits += 1
            if coalesced:
                self.coalesced += 1
            if result is not None:
                self.matches += len(result.matches)
                self.candidates += result.num_candidates
                if not (cached or coalesced):
                    self.mincand_seconds += result.mincand_seconds
                    self.lookup_seconds += result.lookup_seconds
                    self.verify_seconds += result.verify_seconds

    def observe_error(
        self, kind: str = "error", *, exc: Optional[BaseException] = None
    ) -> None:
        """Record one failed query (``kind``: ``"rejected"``,
        ``"deadline"``, or anything else for a generic error).

        ``exc`` additionally labels the failure by exception type in
        :attr:`errors_by_type` — ``"which error"`` is the first question
        when the aggregate counter moves; without it the label falls back
        to ``kind``."""
        with self._lock:
            self.errors += 1
            if kind == "rejected":
                self.rejected += 1
            elif kind == "deadline":
                self.deadline_exceeded += 1
            label = kind if exc is None else type(exc).__name__
            self.errors_by_type[label] = self.errors_by_type.get(label, 0) + 1

    def observe_invalidation(self, count: int = 1) -> None:
        """Record cache entries dropped by an online update."""
        with self._lock:
            self.invalidations += count

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dict of every aggregate (the ``/stats`` payload)."""
        with self._lock:
            elapsed = time.monotonic() - self._started
            window: List[float] = list(self._latencies)
            queries = self.queries
            computed = queries - self.cache_hits - self.coalesced
            return {
                "uptime_seconds": elapsed,
                "queries": queries,
                "errors": self.errors,
                "errors_by_type": dict(self.errors_by_type),
                "rejected": self.rejected,
                "deadline_exceeded": self.deadline_exceeded,
                "qps": queries / elapsed if elapsed > 0 else 0.0,
                "latency_p50": percentile(window, 0.50),
                "latency_p95": percentile(window, 0.95),
                "latency_p99": percentile(window, 0.99),
                "latency_mean": sum(window) / len(window) if window else 0.0,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": self.cache_hits / queries if queries else 0.0,
                "coalesced": self.coalesced,
                "coalesce_rate": self.coalesced / queries if queries else 0.0,
                "invalidations": self.invalidations,
                "matches": self.matches,
                "candidates": self.candidates,
                "stage_seconds": {
                    "mincand": self.mincand_seconds,
                    "lookup": self.lookup_seconds,
                    "verify": self.verify_seconds,
                },
                "computed_queries": computed,
            }
