"""Service-side observability wiring: tracer + flight recorder + registry.

:mod:`repro.obs` supplies the primitives (spans, Prometheus exposition,
bounded trace history); this module binds them to one
:class:`~repro.service.QueryService`:

- :class:`ServiceObservability` owns the :class:`~repro.obs.Tracer`
  (sampling), the :class:`~repro.obs.FlightRecorder` (``/debug/traces``
  and ``repro trace``), and a :class:`~repro.obs.MetricsRegistry` of
  push instruments (query/error counters, latency / candidate /
  DP-column histograms) plus pull collectors (engine cache counters per
  shard, executor/cache/batcher gauges, flight-recorder depth) that the
  ``/metrics`` endpoint renders;
- every query over ``slow_query_seconds`` emits a one-line JSON record
  on the ``repro.slowlog`` logger and is *always* preserved in the
  flight recorder — sampled queries keep their real span tree, unsampled
  ones get a stage breakdown synthesized from the engine's own timings
  (:func:`~repro.obs.synthesize_trace`), so the slowest requests are
  debuggable even at ``trace_sample_rate=0``.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import QueryResult
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Trace,
    Tracer,
    slow_query_record,
    synthesize_trace,
)

__all__ = ["ServiceObservability"]

#: one-line JSON records for queries over the slow threshold land here.
slow_query_logger = logging.getLogger("repro.slowlog")

_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
_CANDIDATE_BUCKETS = (1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000)
_DP_COLUMN_BUCKETS = (
    10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000, 300000,
)
_K_BUCKETS = (1, 3, 10, 30, 100, 300, 1000)


class ServiceObservability:
    """Tracing, metrics export, and the flight recorder for one service.

    Parameters
    ----------
    trace_sample_rate:
        Fraction of requests to trace in ``[0, 1]``; 0 (the default)
        keeps the request path on the near-zero-cost unsampled branch.
        Slow queries are preserved regardless (see module docstring).
    slow_query_seconds:
        End-to-end latency threshold over which a query is logged and
        force-recorded; ``None`` disables slow-query handling.
    recent_traces / slowest_traces:
        Flight recorder capacities.
    """

    def __init__(
        self,
        *,
        trace_sample_rate: float = 0.0,
        slow_query_seconds: Optional[float] = None,
        recent_traces: int = 64,
        slowest_traces: int = 16,
    ) -> None:
        if slow_query_seconds is not None and slow_query_seconds < 0:
            raise ValueError("slow_query_seconds must be >= 0")
        self.tracer = Tracer(trace_sample_rate)
        self.recorder = FlightRecorder(
            recent=recent_traces, slowest=slowest_traces
        )
        self.slow_query_seconds = slow_query_seconds
        self.registry = MetricsRegistry()
        reg = self.registry
        self._queries = reg.counter(
            "repro_queries_total",
            "Completed queries by serving outcome.",
            labelnames=("outcome",),
        )
        self._errors = reg.counter(
            "repro_errors_total",
            "Failed queries by error type.",
            labelnames=("type",),
        )
        self._latency = reg.histogram(
            "repro_query_latency_seconds",
            "End-to-end request latency by serving outcome.",
            buckets=_LATENCY_BUCKETS,
            labelnames=("outcome",),
        )
        self._candidates = reg.histogram(
            "repro_query_candidates",
            "Candidates verified per engine-computed query.",
            buckets=_CANDIDATE_BUCKETS,
        )
        self._dp_columns = reg.histogram(
            "repro_query_dp_columns",
            "DP columns computed per engine-computed query.",
            buckets=_DP_COLUMN_BUCKETS,
        )
        self._by_backend = reg.counter(
            "repro_queries_by_dp_backend_total",
            "Engine-computed queries by resolved DP backend.",
            labelnames=("dp_backend",),
        )
        self._stage_seconds = reg.counter(
            "repro_stage_seconds_total",
            "Engine time by stage (MinCand / lookup / verification).",
            labelnames=("stage",),
        )
        self._dp_rounds = reg.counter(
            "repro_dp_rounds_total",
            "Verification DP kernel launches (batched rounds and "
            "single-column steps).",
        )
        self._sampled = reg.counter(
            "repro_traces_sampled_total", "Requests that recorded a trace."
        )
        self._slow = reg.counter(
            "repro_slow_queries_total",
            "Queries over the slow-query threshold.",
        )
        self._degraded = reg.counter(
            "repro_degraded_queries_total",
            "Queries answered partially (allow_partial with shards down).",
        )
        self._topk_queries = reg.counter(
            "repro_topk_queries_total",
            "Completed top-k queries by serving outcome.",
            labelnames=("outcome",),
        )
        self._topk_reuse = reg.counter(
            "repro_topk_cache_reuse_total",
            "Top-k requests answered by truncating a cached answer "
            "computed at k' >= k.",
        )
        self._topk_rounds = reg.counter(
            "repro_topk_tau_rounds_total",
            "Threshold probe rounds run by engine-computed top-k queries.",
        )
        self._topk_sweeps = reg.counter(
            "repro_topk_exhaustion_sweeps_total",
            "Top-k queries whose threshold expansion exhausted and fell "
            "through to the Smith-Waterman sweep.",
        )
        self._topk_ties = reg.counter(
            "repro_topk_ties_at_k_total",
            "Ties cut at the k-th distance across answered top-k queries.",
        )
        self._topk_k = reg.histogram(
            "repro_topk_k",
            "Requested k per top-k query.",
            buckets=_K_BUCKETS,
        )
        reg.register_collector(self._collect_recorder)
        self._service = None

    # -- wiring ---------------------------------------------------------------

    def bind(self, service) -> None:
        """Register the pull collectors that read ``service`` state
        (executor depth, result cache, coalescer, engine caches)."""
        if self._service is not None:
            raise ValueError("observability is already bound to a service")
        self._service = service
        self.registry.register_collector(self._collect_service)
        self.registry.register_collector(self._collect_engine_caches)
        self.registry.register_collector(self._collect_worker_states)

    # -- request-path hooks ---------------------------------------------------

    def start_trace(self, **attributes: Any) -> Optional[Trace]:
        """Begin a trace for one request iff sampled."""
        trace = self.tracer.start("query", **attributes)
        if trace is not None:
            self._sampled.inc()
        return trace

    def observe_response(
        self,
        seconds: float,
        *,
        cached: bool = False,
        coalesced: bool = False,
        result: Optional[QueryResult] = None,
    ) -> None:
        """Record one successful response in the export registry."""
        outcome = "cached" if cached else ("coalesced" if coalesced else "computed")
        self._queries.inc(outcome=outcome)
        self._latency.observe(seconds, outcome=outcome)
        if result is not None and not result.complete:
            self._degraded.inc()
        if result is None or cached or coalesced:
            return
        self._candidates.observe(result.num_candidates)
        self._dp_columns.observe(result.verification.computed_columns)
        self._by_backend.inc(dp_backend=result.dp_backend_used or "unknown")
        self._stage_seconds.inc(result.mincand_seconds, stage="mincand")
        self._stage_seconds.inc(result.lookup_seconds, stage="lookup")
        self._stage_seconds.inc(result.verify_seconds, stage="verify")
        self._dp_rounds.inc(result.dp_rounds)

    def observe_topk(
        self,
        seconds: float,
        *,
        k: int,
        cached: bool = False,
        coalesced: bool = False,
        result=None,
    ) -> None:
        """Record one successful top-k response (``result`` is a
        :class:`~repro.core.topk.TopKResult` or ``None``).

        Top-k traffic gets its own query counter but shares the latency
        histogram's outcome labels with range queries — one latency SLO
        covers both modalities."""
        outcome = "cached" if cached else ("coalesced" if coalesced else "computed")
        self._topk_queries.inc(outcome=outcome)
        self._latency.observe(seconds, outcome=outcome)
        self._topk_k.observe(k)
        if result is None:
            return
        if not result.complete:
            self._degraded.inc()
        self._topk_ties.inc(result.ties_at_k)
        if cached:
            self._topk_reuse.inc()
        if cached or coalesced:
            return
        self._topk_rounds.inc(result.tau_rounds)
        if result.swept:
            self._topk_sweeps.inc()
        self._candidates.observe(result.num_candidates)
        self._stage_seconds.inc(result.mincand_seconds, stage="mincand")
        self._stage_seconds.inc(result.lookup_seconds, stage="lookup")
        self._stage_seconds.inc(result.verify_seconds, stage="verify")

    def observe_error(self, exc: BaseException) -> None:
        """Record one failed request, labelled by exception type."""
        self._errors.inc(type=type(exc).__name__)

    def finish_trace(
        self,
        trace: Optional[Trace],
        *,
        seconds: float,
        result: Optional[QueryResult] = None,
        cached: bool = False,
        coalesced: bool = False,
        error: Optional[BaseException] = None,
    ) -> None:
        """Close out one request's trace and apply slow-query handling.

        Sampled traces are finished and filed in the flight recorder
        (errors annotated, never dropped).  Queries over the slow
        threshold additionally log a one-line JSON record; when unsampled
        they get a synthesized stage-breakdown trace so the recorder's
        ``slowest`` view never misses a slow query merely because
        sampling skipped it.
        """
        slow = (
            self.slow_query_seconds is not None
            and seconds >= self.slow_query_seconds
        )
        record: Optional[Dict[str, Any]] = None
        if trace is not None:
            root = trace.root
            root.set("seconds", round(seconds, 6))
            if cached:
                root.set("outcome", "cached")
            elif coalesced:
                root.set("outcome", "coalesced")
            if error is not None:
                root.set("error", type(error).__name__)
            trace.finish()
            record = trace.to_dict()
        elif slow:
            record = self._synthesize(
                seconds, result=result, cached=cached,
                coalesced=coalesced, error=error,
            )
        if record is None:
            return
        if slow:
            record["slow"] = True
            self._slow.inc()
            payload = slow_query_record(
                record,
                seconds=seconds,
                threshold=self.slow_query_seconds,
                cached=cached,
                coalesced=coalesced,
                error="" if error is None else type(error).__name__,
                matches=0 if result is None else len(result.matches),
                candidates=0 if result is None else result.num_candidates,
                dp_backend="" if result is None else result.dp_backend_used,
            )
            slow_query_logger.warning(json.dumps(payload, sort_keys=True))
        self.recorder.record(record)

    def finish_topk_trace(
        self,
        trace: Optional[Trace],
        *,
        seconds: float,
        result=None,
        cached: bool = False,
        coalesced: bool = False,
        error: Optional[BaseException] = None,
    ) -> None:
        """:meth:`finish_trace` for top-k requests: same slow-query and
        flight-recorder handling, but the synthesized stage breakdown
        speaks :class:`~repro.core.topk.TopKResult` (summed probe-round
        stage clocks, tau rounds, sweep size) instead of the range
        result's DP provenance."""
        slow = (
            self.slow_query_seconds is not None
            and seconds >= self.slow_query_seconds
        )
        record: Optional[Dict[str, Any]] = None
        if trace is not None:
            root = trace.root
            root.set("seconds", round(seconds, 6))
            if cached:
                root.set("outcome", "cached")
            elif coalesced:
                root.set("outcome", "coalesced")
            if error is not None:
                root.set("error", type(error).__name__)
            trace.finish()
            record = trace.to_dict()
        elif slow:
            stages: List[Tuple[str, float, Dict[str, Any]]] = []
            attrs: Dict[str, Any] = {"mode": "topk"}
            if cached:
                attrs["outcome"] = "cached"
            elif coalesced:
                attrs["outcome"] = "coalesced"
            if error is not None:
                attrs["error"] = type(error).__name__
            if result is not None and not (cached or coalesced):
                stages = [
                    ("mincand", result.mincand_seconds, {}),
                    ("lookup", result.lookup_seconds,
                     {"candidates": result.num_candidates}),
                    ("verify", result.verify_seconds,
                     {"tau_rounds": result.tau_rounds,
                      "swept": result.swept}),
                ]
                attrs["k"] = result.k
                attrs["matches"] = len(result.matches)
            record = synthesize_trace(
                "topk", seconds=seconds, stages=stages, **attrs
            )
        if record is None:
            return
        if slow:
            record["slow"] = True
            self._slow.inc()
            payload = slow_query_record(
                record,
                seconds=seconds,
                threshold=self.slow_query_seconds,
                cached=cached,
                coalesced=coalesced,
                error="" if error is None else type(error).__name__,
                matches=0 if result is None else len(result.matches),
                candidates=0 if result is None else result.num_candidates,
                dp_backend="topk",
            )
            slow_query_logger.warning(json.dumps(payload, sort_keys=True))
        self.recorder.record(record)

    @staticmethod
    def _synthesize(
        seconds: float,
        *,
        result: Optional[QueryResult],
        cached: bool,
        coalesced: bool,
        error: Optional[BaseException],
    ) -> Dict[str, Any]:
        stages: List[Tuple[str, float, Dict[str, Any]]] = []
        attrs: Dict[str, Any] = {}
        if cached:
            attrs["outcome"] = "cached"
        elif coalesced:
            attrs["outcome"] = "coalesced"
        if error is not None:
            attrs["error"] = type(error).__name__
        if result is not None and not (cached or coalesced):
            stages = [
                ("mincand", result.mincand_seconds, {}),
                ("lookup", result.lookup_seconds,
                 {"candidates": result.num_candidates}),
                ("verify", result.verify_seconds,
                 {"dp_backend": result.dp_backend_used,
                  "dp_rounds": result.dp_rounds,
                  "trie_cache": result.trie_cache_status or "n/a",
                  "computed_columns": result.verification.computed_columns}),
            ]
            attrs["matches"] = len(result.matches)
        return synthesize_trace("query", seconds=seconds, stages=stages, **attrs)

    # -- pull collectors ------------------------------------------------------

    def _collect_recorder(self):
        stats = self.recorder.stats()
        return [
            (
                "repro_traces_recorded_total",
                "counter",
                "Traces filed in the flight recorder.",
                [({}, stats["recorded"])],
            ),
            (
                "repro_flight_recorder_traces",
                "gauge",
                "Traces currently held, by buffer.",
                [
                    ({"buffer": "recent"}, stats["recent"]),
                    ({"buffer": "slowest"}, stats["slowest"]),
                ],
            ),
        ]

    def _collect_service(self):
        service = self._service
        families = [
            (
                "repro_inflight_queries",
                "gauge",
                "Queries admitted and not yet finished.",
                [({}, service.executor.pending)],
            ),
            (
                "repro_result_cache_entries",
                "gauge",
                "Cached query results.",
                [({}, len(service.cache))],
            ),
            (
                "repro_result_cache_capacity",
                "gauge",
                "Result cache capacity.",
                [({}, service.cache.capacity)],
            ),
        ]
        if service.batcher is not None:
            families.append(
                (
                    "repro_coalesce_flights",
                    "gauge",
                    "Distinct computations currently in flight.",
                    [({}, service.batcher.in_flight())],
                )
            )
            families.append(
                (
                    "repro_coalesce_flights_led_total",
                    "counter",
                    "Flights led (one engine pass each).",
                    [({}, service.batcher.flights)],
                )
            )
        return families

    def _collect_worker_states(self):
        """Shard-worker supervision state (processes backend; in-process
        backends export synthetic always-up states so dashboards keep one
        shape).  A failing snapshot yields no samples rather than failing
        the scrape."""
        from repro.core.supervision import BREAKER_STATES

        engine = self._service.engine
        states_of = getattr(engine, "worker_states", None)
        if states_of is None:
            return []
        try:
            states = states_of()
        except Exception:  # noqa: BLE001 - scrape must survive a closing
            # engine; /healthz reports the failure.
            return []
        up = []
        restarts = []
        breaker = []
        failures = []
        node_up = []
        node_reconnects = []
        for s in states:
            label = {"shard": str(s.shard)}
            up.append((label, 1.0 if s.alive else 0.0))
            restarts.append((label, float(s.restarts)))
            breaker.append(
                (
                    label,
                    float(
                        BREAKER_STATES.index(s.breaker)
                        if s.breaker in BREAKER_STATES
                        else len(BREAKER_STATES)
                    ),
                )
            )
            failures.append((label, float(s.consecutive_failures)))
            if s.node is not None:
                # Remote backend: node-addressed views of the same state,
                # so dashboards can join on the shard-map address (a
                # "reconnect" is the remote spelling of a respawn).
                node_label = {"shard": str(s.shard), "node": s.node}
                node_up.append((node_label, 1.0 if s.alive else 0.0))
                node_reconnects.append((node_label, float(s.restarts)))
        families = [
            (
                "repro_worker_up",
                "gauge",
                "Shard worker process liveness (1 = alive).",
                up,
            ),
            (
                "repro_worker_restarts_total",
                "counter",
                "Completed shard-worker respawns.",
                restarts,
            ),
            (
                "repro_shard_breaker_state",
                "gauge",
                "Circuit breaker state per shard "
                "(0 = closed, 1 = half_open, 2 = open).",
                breaker,
            ),
            (
                "repro_shard_consecutive_failures",
                "gauge",
                "Consecutive shard failures counted by the breaker.",
                failures,
            ),
        ]
        if node_up:
            families.append(
                (
                    "repro_node_up",
                    "gauge",
                    "Remote worker-node connectivity (1 = connected).",
                    node_up,
                )
            )
            families.append(
                (
                    "repro_node_reconnects_total",
                    "counter",
                    "Completed reconnects to remote worker nodes.",
                    node_reconnects,
                )
            )
        return families

    def _collect_engine_caches(self):
        """Per-shard engine cache counters from one (non-blocking on the
        processes backend) poll; a failing poll yields no samples rather
        than failing the whole scrape."""
        engine = self._service.engine
        stats_of = getattr(engine, "observability_cache_stats", None)
        if stats_of is None:
            return []
        try:
            combined = stats_of()
        except Exception:  # noqa: BLE001 - scrape must not 500 on a
            # closing engine or dead worker; /healthz reports the failure.
            return []
        families = [
            (
                "repro_cache_shards_reporting",
                "gauge",
                "Shards that answered the cache poll (busy workers on "
                "the processes backend are skipped).",
                [({}, combined.get("reporting", 0))],
            )
        ]
        sub_fields = (
            ("entries", "size", "gauge", "Cached substitution matrices."),
            ("hits_total", "hits", "counter", "Substitution cache hits."),
            ("misses_total", "misses", "counter", "Substitution cache misses."),
        )
        trie_fields = (
            ("entries", "size", "gauge", "Cached verification tries."),
            ("bytes", "bytes", "gauge",
             "Measured bytes held by cached tries (arrays + edge maps)."),
            ("hits_total", "hits", "counter", "Trie cache hits."),
            ("misses_total", "misses", "counter", "Trie cache misses."),
            ("evictions_total", "evictions", "counter", "Trie cache evictions."),
        )
        index_fields = (
            ("bytes", "bytes", "gauge",
             "Bytes held by the inverted index postings (packed arrays "
             "for the frozen backend, getsizeof estimate for dict)."),
            ("file_bytes", "file_bytes", "gauge",
             "On-disk bytes of the frozen index file (0 for in-memory "
             "backends)."),
            ("resident_bytes", "resident_bytes", "gauge",
             "Page-cache-resident bytes of the frozen index mapping via "
             "mincore (0 when unavailable)."),
            ("postings", "num_postings", "gauge", "Total postings indexed."),
            ("delta_postings", "delta_postings", "gauge",
             "Postings added by online inserts since the freeze."),
            ("mmap", "mmap", "gauge",
             "Whether the shard serves its index from a shared file "
             "mapping (1) or private process memory (0)."),
        )
        for prefix, parts, fields in (
            ("repro_substitution_cache", combined.get("substitution", []), sub_fields),
            ("repro_trie_cache", combined.get("trie", []), trie_fields),
            ("repro_index", combined.get("index", []), index_fields),
        ):
            for suffix, key, kind, help_text in fields:
                samples = [
                    ({"shard": label}, float(part.get(key, 0)))
                    for label, part in parts
                ]
                if samples:
                    families.append(
                        (f"{prefix}_{suffix}", kind, help_text, samples)
                    )
        return families
